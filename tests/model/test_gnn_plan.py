"""Correctness tests for the GNN's levelised propagation plan."""

import numpy as np
import pytest

from repro.features import GateVocabulary, encode_netlist
from repro.model.gnn import TimingGNN, _LevelPlan, _plan_for
from repro.netlist import make_design, map_design
from repro.place import place_design
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def graph():
    asap = make_asap7_library()
    vocab = GateVocabulary([make_sky130_library(), asap])
    nl = map_design(make_design("usbf_device"), asap)
    place_design(nl, seed=2)
    return encode_netlist(nl, vocab)


class TestLevelPlan:
    def test_every_edge_appears_exactly_once(self, graph):
        plan = _LevelPlan(graph)
        total = sum(step["net_src"].size + step["cell_src"].size
                    for step in plan.steps)
        assert total == graph.net_edges.shape[1] \
            + graph.cell_edges.shape[1]

    def test_dst_local_indices_valid(self, graph):
        plan = _LevelPlan(graph)
        for step in plan.steps:
            for kind in ("net", "cell"):
                local = step[f"{kind}_dst_local"]
                if local.size:
                    assert local.max() < len(step["dst"])

    def test_inv_counts_match_indegree(self, graph):
        plan = _LevelPlan(graph)
        for step in plan.steps:
            for kind in ("net", "cell"):
                local = step[f"{kind}_dst_local"]
                inv = step[f"{kind}_inv_count"].reshape(-1)
                counts = np.bincount(local, minlength=len(step["dst"]))
                for i, c in enumerate(counts):
                    if c > 0:
                        assert inv[i] == pytest.approx(1.0 / c)

    def test_plan_memoised_on_graph(self, graph):
        a = _plan_for(graph)
        b = _plan_for(graph)
        assert a is b

    def test_manual_propagation_matches_gnn(self, graph):
        """Recompute h with a naive per-node numpy loop; must match."""
        gnn = TimingGNN(graph.features.shape[1], 8, 4,
                        np.random.default_rng(0))
        h_fast = gnn.node_embeddings(graph).data

        w_self = gnn.lin_self.weight.data
        b_self = gnn.lin_self.bias.data
        w_net = gnn.lin_net.weight.data
        w_cell = gnn.lin_cell.weight.data
        n = graph.num_nodes
        s = graph.features @ w_self + b_self
        h = np.zeros((n, 8))
        level_of = np.zeros(n, dtype=int)
        for k, rows in enumerate(graph.levels):
            level_of[rows] = k
        fanin_net = {i: [] for i in range(n)}
        fanin_cell = {i: [] for i in range(n)}
        for src, dst in graph.net_edges.T:
            fanin_net[dst].append(src)
        for src, dst in graph.cell_edges.T:
            fanin_cell[dst].append(src)
        for k, rows in enumerate(graph.levels):
            for v in rows:
                total = s[v].copy()
                if k > 0:
                    if fanin_net[v]:
                        msgs = np.mean([h[u] @ w_net
                                        for u in fanin_net[v]], axis=0)
                        total += msgs
                    if fanin_cell[v]:
                        msgs = np.mean([h[u] @ w_cell
                                        for u in fanin_cell[v]], axis=0)
                        total += msgs
                h[v] = np.maximum(total, 0.0)
        np.testing.assert_allclose(h_fast, h, atol=1e-10)
