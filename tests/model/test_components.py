"""Tests for the GNN, CNN, disentangler, and Bayesian readout."""

import numpy as np
import pytest

from repro.features import GateVocabulary, encode_netlist
from repro.flow import run_flow
from repro.model import (
    BayesianReadout,
    DAC23Model,
    Disentangler,
    LayoutCNN,
    TimingGNN,
    TimingPredictor,
    build_prior_feature,
    masked_path_images,
)
from repro.netlist import make_design, map_design
from repro.nn import Tensor
from repro.place import place_design
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def libraries():
    return {"130nm": make_sky130_library(), "7nm": make_asap7_library()}


@pytest.fixture(scope="module")
def vocab(libraries):
    return GateVocabulary(list(libraries.values()))


@pytest.fixture(scope="module")
def design_data(libraries, vocab):
    return run_flow("linkruncca", "7nm", libraries, vocab=vocab,
                    resolution=16)


@pytest.fixture(scope="module")
def graph(vocab):
    nl = map_design(make_design("linkruncca"), make_asap7_library())
    place_design(nl, seed=1)
    return encode_netlist(nl, vocab)


class TestTimingGNN:
    def test_output_shape(self, graph):
        gnn = TimingGNN(graph.features.shape[1], 16, 12,
                        np.random.default_rng(0))
        out = gnn(graph)
        assert out.shape == (len(graph.endpoint_rows), 12)

    def test_subset_readout(self, graph):
        gnn = TimingGNN(graph.features.shape[1], 16, 12,
                        np.random.default_rng(0))
        rows = graph.endpoint_rows[:3]
        out = gnn(graph, rows)
        assert out.shape == (3, 12)

    def test_deterministic(self, graph):
        a = TimingGNN(graph.features.shape[1], 16, 12,
                      np.random.default_rng(5))
        b = TimingGNN(graph.features.shape[1], 16, 12,
                      np.random.default_rng(5))
        np.testing.assert_allclose(a(graph).data, b(graph).data)

    def test_gradients_reach_input_transform(self, graph):
        gnn = TimingGNN(graph.features.shape[1], 16, 12,
                        np.random.default_rng(0))
        gnn(graph).sum().backward()
        assert gnn.lin_self.weight.grad is not None
        assert np.abs(gnn.lin_self.weight.grad).sum() > 0
        assert gnn.lin_net.weight.grad is not None

    def test_deep_paths_accumulate_information(self, graph):
        """Endpoint embeddings differ across endpoints (no collapse)."""
        gnn = TimingGNN(graph.features.shape[1], 16, 12,
                        np.random.default_rng(0))
        out = gnn(graph).data
        assert out.std(axis=0).mean() > 1e-4


class TestLayoutCNN:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        cnn = LayoutCNN(3, 4, 8, rng)
        out = cnn(Tensor(rng.standard_normal((5, 3, 16, 16))))
        assert out.shape == (5, 8)

    def test_masking(self, design_data):
        masked = masked_path_images(design_data.images,
                                    design_data.cone_masks)
        k = design_data.num_endpoints
        assert masked.shape == (k, 3, 16, 16)
        # Outside the mask everything is zero.
        outside = (design_data.cone_masks[0] == 0)
        assert np.all(masked[0][:, outside] == 0)


class TestDisentangler:
    def test_split_shapes_and_tanh_bound(self):
        rng = np.random.default_rng(0)
        dis = Disentangler(16, rng=rng)
        u = Tensor(10 * rng.standard_normal((7, 16)))
        u_n, u_d = dis(u)
        assert u_n.shape == (7, 8)
        assert u_d.shape == (7, 8)
        assert np.all(np.abs(u_d.data) < 1.0)

    def test_odd_size_rejected(self):
        with pytest.raises(ValueError):
            Disentangler(15, rng=np.random.default_rng(0))

    def test_recombine(self):
        rng = np.random.default_rng(0)
        dis = Disentangler(8, rng=rng)
        u_n = Tensor(np.ones((3, 4)))
        u_d = Tensor(np.zeros((3, 4)))
        z = dis.recombine(u_n, u_d)
        assert z.shape == (3, 8)
        np.testing.assert_allclose(z.data[:, :4], 1.0)


class TestBayesianReadout:
    def test_posterior_mean_equals_many_sample_average(self):
        rng = np.random.default_rng(0)
        readout = BayesianReadout(8, mc_samples=4, rng=rng)
        u = Tensor(rng.standard_normal((5, 8)))
        z = Tensor(rng.standard_normal((5, 8)))
        mean_pred = readout.predict_mean(u, z).data
        samples = readout.sample_predictions(u, z, n_samples=4000).data
        np.testing.assert_allclose(samples.mean(axis=0), mean_pred,
                                   atol=0.05)

    def test_kl_zero_for_identical_gaussians(self):
        mu = Tensor(np.random.default_rng(0).standard_normal((4, 9)))
        lv = Tensor(np.zeros((4, 9)))
        kl = BayesianReadout.kl_divergence(mu, lv, mu, lv)
        assert kl.item() == pytest.approx(0.0, abs=1e-12)

    def test_kl_positive_for_different_gaussians(self):
        rng = np.random.default_rng(0)
        q_mu = Tensor(rng.standard_normal((4, 9)))
        p_mu = Tensor(rng.standard_normal((1, 9)))
        lv = Tensor(np.zeros((4, 9)))
        plv = Tensor(np.zeros((1, 9)))
        kl = BayesianReadout.kl_divergence(q_mu, lv, p_mu, plv)
        assert kl.item() > 0

    def test_kl_closed_form_1d(self):
        """KL(N(1, e^0) || N(0, e^0)) = 0.5."""
        q_mu = Tensor(np.array([[1.0]]))
        p_mu = Tensor(np.array([[0.0]]))
        lv = Tensor(np.zeros((1, 1)))
        kl = BayesianReadout.kl_divergence(q_mu, lv, p_mu, lv)
        assert kl.item() == pytest.approx(0.5)

    def test_elbo_loss_differentiable(self):
        rng = np.random.default_rng(0)
        readout = BayesianReadout(6, rng=rng)
        u = Tensor(rng.standard_normal((10, 6)))
        z = Tensor(rng.standard_normal((10, 6)))
        labels = rng.standard_normal(10)
        p_mu, p_lv = readout.weight_distribution(
            Tensor(rng.standard_normal((1, 6))))
        loss = readout.elbo_loss(u, z, labels, p_mu, p_lv, obs_var=0.5)
        loss.backward()
        assert readout.w_base.grad is not None

    def test_prior_feature_shape(self):
        u_n = Tensor(np.random.default_rng(0).standard_normal((11, 4)))
        u_d = Tensor(np.random.default_rng(1).standard_normal((23, 4)))
        u_tilde = build_prior_feature(u_n, u_d)
        assert u_tilde.shape == (1, 8)


class TestFullModels:
    def test_predict_requires_finalized_priors(self, design_data):
        model = TimingPredictor(design_data.graph.features.shape[1], seed=0)
        with pytest.raises(RuntimeError):
            model.predict(design_data)

    def test_predictor_end_to_end(self, design_data):
        model = TimingPredictor(design_data.graph.features.shape[1], seed=0)
        model.finalize_node_priors([design_data])
        pred = model.predict(design_data)
        assert pred.shape == (design_data.num_endpoints,)
        mean, std = model.predict_with_uncertainty(design_data,
                                                   mc_samples=8)
        assert std.shape == pred.shape
        assert (std >= 0).all()

    def test_predictor_subset(self, design_data):
        # transductive=False keeps the prior identical between the subset
        # and full calls, so the per-endpoint values must match exactly.
        model = TimingPredictor(design_data.graph.features.shape[1], seed=0)
        model.finalize_node_priors([design_data])
        subset = np.array([0, 2, 4])
        pred = model.predict(design_data, subset, transductive=False)
        assert pred.shape == (3,)
        full = model.predict(design_data, transductive=False)
        np.testing.assert_allclose(pred, full[subset], atol=1e-9)

    def test_transductive_prior_adapts(self, design_data):
        """Folding the design's own paths into N shifts the prior."""
        model = TimingPredictor(design_data.graph.features.shape[1], seed=0)
        model.finalize_node_priors([design_data])
        a = model.predict(design_data, transductive=True)
        b = model.predict(design_data, transductive=False)
        assert a.shape == b.shape

    def test_mc_prediction_close_to_mean(self, design_data):
        model = TimingPredictor(design_data.graph.features.shape[1], seed=0)
        model.finalize_node_priors([design_data])
        det = model.predict(design_data)
        mc = model.predict(design_data, mc_samples=800)
        np.testing.assert_allclose(mc, det, atol=0.2)

    def test_dac23_heads(self, design_data):
        model = DAC23Model(design_data.graph.features.shape[1],
                           n_heads=2, seed=0)
        p0 = model.predict(design_data, head=0)
        p1 = model.predict(design_data, head=1)
        assert p0.shape == p1.shape
        assert not np.allclose(p0, p1)

    def test_all_parameters_receive_gradients(self, design_data):
        from repro.nn import functional as F
        model = DAC23Model(design_data.graph.features.shape[1], seed=0)
        pred = model(design_data)
        loss = F.mse_loss(pred, Tensor(design_data.labels.reshape(-1, 1)))
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []
