"""Tests for the alignment losses (contrastive + CMD)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    cmd_loss,
    cmd_loss_multi,
    node_contrastive_loss,
    node_contrastive_loss_multi,
)
from repro.nn import Tensor


def _clusters(rng, n, dim, center, spread=0.1):
    return Tensor(center + spread * rng.standard_normal((n, dim)),
                  requires_grad=True)


class TestContrastive:
    def test_separated_clusters_score_lower_than_mixed(self):
        rng = np.random.default_rng(0)
        dim = 8
        c1 = np.zeros(dim)
        c1[0] = 3.0
        c2 = np.zeros(dim)
        c2[0] = -3.0
        separated = node_contrastive_loss(
            _clusters(rng, 16, dim, c1), _clusters(rng, 16, dim, c2)
        )
        mixed = node_contrastive_loss(
            _clusters(rng, 16, dim, np.zeros(dim), spread=2.0),
            _clusters(rng, 16, dim, np.zeros(dim), spread=2.0),
        )
        assert separated.item() < mixed.item()

    def test_gradient_flows(self):
        rng = np.random.default_rng(1)
        a = _clusters(rng, 8, 4, np.zeros(4), spread=1.0)
        b = _clusters(rng, 8, 4, np.ones(4), spread=1.0)
        loss = node_contrastive_loss(a, b)
        loss.backward()
        assert a.grad is not None and np.abs(a.grad).sum() > 0

    def test_minimum_set_size_enforced(self):
        a = Tensor(np.zeros((1, 4)))
        b = Tensor(np.zeros((5, 4)))
        with pytest.raises(ValueError):
            node_contrastive_loss(a, b)

    def test_temperature_changes_loss(self):
        rng = np.random.default_rng(2)
        a = _clusters(rng, 8, 4, np.zeros(4), spread=1.0)
        b = _clusters(rng, 8, 4, np.ones(4), spread=1.0)
        hot = node_contrastive_loss(a, b, temperature=5.0).item()
        cold = node_contrastive_loss(a, b, temperature=0.1).item()
        assert hot != cold


class TestCMD:
    def test_identical_distributions_near_zero(self):
        rng = np.random.default_rng(0)
        x = np.tanh(rng.standard_normal((400, 6)))
        loss = cmd_loss(Tensor(x[:200]), Tensor(x[200:]))
        # Finite-sample noise keeps this above 0 but it must stay small
        # compared to genuinely shifted distributions (next test).
        assert loss.item() < 0.3

    def test_shifted_distributions_larger(self):
        rng = np.random.default_rng(0)
        a = np.tanh(rng.standard_normal((200, 6)))
        b = np.tanh(rng.standard_normal((200, 6)) + 1.5)
        near = cmd_loss(Tensor(a[:100]), Tensor(a[100:])).item()
        far = cmd_loss(Tensor(a), Tensor(b)).item()
        assert far > 3 * near

    def test_first_order_only_matches_mean_gap(self):
        a = Tensor(np.full((50, 3), 0.5))
        b = Tensor(np.full((50, 3), -0.5))
        loss = cmd_loss(a, b, max_order=1)
        # ||mean gap|| = sqrt(3 * 1.0) / (b - a = 2)
        assert loss.item() == pytest.approx(np.sqrt(3.0) / 2.0, rel=1e-3)

    def test_higher_order_captures_variance_gap(self):
        rng = np.random.default_rng(0)
        narrow = Tensor(0.1 * rng.standard_normal((300, 4)))
        wide = Tensor(np.tanh(2.0 * rng.standard_normal((300, 4))))
        with_moments = cmd_loss(narrow, wide, max_order=5).item()
        mean_only = cmd_loss(narrow, wide, max_order=1).item()
        assert with_moments > mean_only

    def test_invalid_order_rejected(self):
        x = Tensor(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            cmd_loss(x, x, max_order=0)

    def test_gradient_flows(self):
        rng = np.random.default_rng(3)
        a = Tensor(np.tanh(rng.standard_normal((20, 4))),
                   requires_grad=True)
        b = Tensor(np.tanh(rng.standard_normal((20, 4)) + 1.0))
        cmd_loss(a, b).backward()
        assert a.grad is not None
        assert np.abs(a.grad).sum() > 0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(np.tanh(rng.standard_normal((30, 3))))
        b = Tensor(np.tanh(rng.standard_normal((30, 3)) - 0.5))
        assert cmd_loss(a, b).item() == pytest.approx(
            cmd_loss(b, a).item(), rel=1e-9
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(np.tanh(rng.standard_normal((25, 3))))
        b = Tensor(np.tanh(rng.standard_normal((25, 3))))
        assert cmd_loss(a, b).item() >= 0.0


def _pair(seed, n_a=8, n_b=10, dim=4):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.standard_normal((n_a, dim)), requires_grad=True)
    b = Tensor(rng.standard_normal((n_b, dim)) + 0.5,
               requires_grad=True)
    return a, b


class TestContrastiveMulti:
    def test_two_groups_bitwise_equal_to_pair_form(self):
        """The K-way loss must *be* the pair loss at K=2 — forward and
        gradients bit-for-bit, so the trainer's bit-equivalence gate
        holds."""
        a1, b1 = _pair(0)
        a2, b2 = _pair(0)
        pair = node_contrastive_loss(a1, b1, temperature=0.4)
        multi = node_contrastive_loss_multi((a2, b2), temperature=0.4)
        assert np.array_equal(pair.data, multi.data)
        pair.backward()
        multi.backward()
        assert np.array_equal(a1.grad, a2.grad)
        assert np.array_equal(b1.grad, b2.grad)

    def test_three_groups_finite_with_gradients(self):
        rng = np.random.default_rng(1)
        groups = [Tensor(rng.standard_normal((n, 5)) + shift,
                         requires_grad=True)
                  for n, shift in ((6, 0.0), (8, 1.0), (5, -1.0))]
        loss = node_contrastive_loss_multi(groups)
        assert np.isfinite(loss.item())
        loss.backward()
        for g in groups:
            assert g.grad is not None and np.abs(g.grad).sum() > 0

    def test_needs_two_groups(self):
        a = Tensor(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            node_contrastive_loss_multi((a,))


class TestCMDMulti:
    def test_two_groups_bitwise_equal_to_pair_form(self):
        a1, b1 = _pair(2)
        a2, b2 = _pair(2)
        pair = cmd_loss(a1, b1, max_order=4)
        multi = cmd_loss_multi((a2, b2), max_order=4)
        assert np.array_equal(pair.data, multi.data)
        pair.backward()
        multi.backward()
        assert np.array_equal(a1.grad, a2.grad)
        assert np.array_equal(b1.grad, b2.grad)

    def test_vs_target_sums_pairwise_to_last_group(self):
        rng = np.random.default_rng(3)
        groups = [Tensor(np.tanh(rng.standard_normal((20, 3)) + s))
                  for s in (0.0, 0.8, -0.8)]
        multi = cmd_loss_multi(groups, max_order=3).item()
        by_hand = sum(
            cmd_loss(g, groups[-1], max_order=3).item()
            for g in groups[:-1]
        )
        assert multi == pytest.approx(by_hand, rel=1e-9)

    def test_pairwise_mode_differs_and_is_larger_family(self):
        rng = np.random.default_rng(4)
        groups = [Tensor(np.tanh(rng.standard_normal((20, 3)) + s))
                  for s in (0.0, 0.8, -0.8)]
        vs_target = cmd_loss_multi(groups, mode="vs-target").item()
        pairwise = cmd_loss_multi(groups, mode="pairwise").item()
        assert vs_target != pairwise
        # Pairwise covers a superset of pairs, so it cannot be smaller.
        assert pairwise >= vs_target

    def test_gradients_flow_in_both_modes(self):
        for mode in ("vs-target", "pairwise"):
            rng = np.random.default_rng(5)
            groups = [Tensor(np.tanh(rng.standard_normal((15, 3)) + s),
                             requires_grad=True)
                      for s in (0.0, 0.5, 1.0)]
            cmd_loss_multi(groups, mode=mode).backward()
            for g in groups:
                assert g.grad is not None, mode
                assert np.abs(g.grad).sum() > 0, mode

    def test_invalid_mode_rejected(self):
        a = Tensor(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            cmd_loss_multi((a, a), mode="nonsense")
