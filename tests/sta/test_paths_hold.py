"""Tests for critical-path tracing and hold analysis."""

import numpy as np
import pytest

from repro.netlist import make_design, map_design
from repro.place import place_design
from repro.route import PreRouteEstimator
from repro.sta import (
    PathTracer,
    STAEngine,
    report_worst_paths,
    run_hold_sta,
    run_sta,
)
from repro.techlib import make_asap7_library


@pytest.fixture(scope="module")
def setup():
    lib = make_asap7_library()
    nl = map_design(make_design("arm9"), lib)
    place_design(nl, seed=0)
    est = PreRouteEstimator(nl)
    report = run_sta(nl, est)
    return nl, est, report


class TestPathTracing:
    def test_stage_increments_sum_to_arrival(self, setup):
        nl, est, report = setup
        tracer = PathTracer(nl, est, report)
        for path in tracer.worst_paths(5):
            total = sum(s.incr for s in path.stages)
            assert total == pytest.approx(path.arrival, rel=1e-6)

    def test_arrivals_monotonically_increase(self, setup):
        nl, est, report = setup
        tracer = PathTracer(nl, est, report)
        path = tracer.worst_paths(1)[0]
        arrivals = [s.arrival for s in path.stages]
        assert arrivals == sorted(arrivals)

    def test_path_starts_at_startpoint(self, setup):
        nl, est, report = setup
        tracer = PathTracer(nl, est, report)
        start_names = {p.full_name for p in nl.timing_startpoints()}
        for path in tracer.worst_paths(3):
            assert path.stages[0].kind == "start"
            assert path.startpoint in start_names

    def test_worst_paths_sorted_by_slack(self, setup):
        nl, est, report = setup
        tracer = PathTracer(nl, est, report)
        slacks = [p.slack for p in tracer.worst_paths(6)]
        assert slacks == sorted(slacks)

    def test_worst_path_matches_report_wns(self, setup):
        nl, est, report = setup
        tracer = PathTracer(nl, est, report)
        worst = tracer.worst_paths(1)[0]
        assert worst.slack == pytest.approx(report.wns)

    def test_depth_counts_cells(self, setup):
        nl, est, report = setup
        tracer = PathTracer(nl, est, report)
        path = tracer.worst_paths(1)[0]
        assert path.depth == sum(1 for s in path.stages
                                 if s.kind == "cell")
        assert path.depth >= 1

    def test_report_rendering(self, setup):
        nl, est, report = setup
        text = report_worst_paths(nl, est, n=2, report=report)
        assert "Startpoint:" in text
        assert "Slack:" in text
        assert text.count("Endpoint:") == 2


class TestHoldAnalysis:
    def test_min_never_exceeds_max(self, setup):
        """Fundamental invariant: min-arrival <= max-arrival per pin."""
        nl, est, report = setup
        hold = run_hold_sta(nl, est)
        for idx, at_min in hold.min_arrival.items():
            at_max = report.arrival.get(idx)
            if at_max is not None:
                assert at_min <= at_max + 1e-9

    def test_hold_slacks_cover_endpoints(self, setup):
        nl, est, _ = setup
        hold = run_hold_sta(nl, est)
        reachable = [p for p in nl.timing_endpoints()
                     if p.index in hold.min_arrival]
        assert len(hold.hold_slack) == len(reachable)

    def test_worst_hold_slack(self, setup):
        nl, est, _ = setup
        hold = run_hold_sta(nl, est)
        assert hold.worst_hold_slack == min(hold.hold_slack.values())
