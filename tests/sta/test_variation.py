"""Tests for OCV derating and Monte-Carlo statistical STA."""

import numpy as np
import pytest

from repro.netlist import make_design, map_design
from repro.place import place_design
from repro.route import PreRouteEstimator
from repro.sta import (
    DeratedParasitics,
    MonteCarloSTA,
    format_statistical_report,
    run_ocv_sta,
    run_sta,
)
from repro.techlib import make_asap7_library


@pytest.fixture(scope="module")
def setup():
    lib = make_asap7_library()
    nl = map_design(make_design("usbf_device"), lib)
    place_design(nl, seed=0)
    return nl, PreRouteEstimator(nl)


class TestDerating:
    def test_invalid_derate_rejected(self, setup):
        _, est = setup
        with pytest.raises(ValueError):
            DeratedParasitics(est, 0.0)

    def test_late_derate_never_speeds_up(self, setup):
        nl, est = setup
        base = run_sta(nl, est)
        late = run_ocv_sta(nl, est, late_derate=1.3)
        for name, at in base.endpoint_arrivals.items():
            assert late.endpoint_arrivals[name] >= at - 1e-12

    def test_unity_derate_identical(self, setup):
        nl, est = setup
        base = run_sta(nl, est)
        same = run_ocv_sta(nl, est, late_derate=1.0)
        for name, at in base.endpoint_arrivals.items():
            assert same.endpoint_arrivals[name] == pytest.approx(at)


class TestMonteCarloSTA:
    def test_sample_shapes(self, setup):
        nl, est = setup
        mc = MonteCarloSTA(nl, est, sigma_global=0.05, sigma_wire=0.0,
                           seed=1)
        report = mc.run_samples(16)
        k = len(report.endpoint_names)
        assert report.samples.shape == (16, k)
        assert report.mean().shape == (k,)

    def test_spread_grows_with_sigma(self, setup):
        nl, est = setup
        tight = MonteCarloSTA(nl, est, sigma_global=0.01,
                              sigma_wire=0.0, seed=2).run_samples(32)
        wide = MonteCarloSTA(nl, est, sigma_global=0.2,
                             sigma_wire=0.0, seed=2).run_samples(32)
        assert wide.std().mean() > tight.std().mean()

    def test_quantiles_ordered(self, setup):
        nl, est = setup
        mc = MonteCarloSTA(nl, est, seed=3)
        report = mc.run_samples(24)
        q50 = report.quantile(0.5)
        q997 = report.quantile(0.997)
        assert (q997 >= q50 - 1e-12).all()

    def test_yield_monotone_in_period(self, setup):
        nl, est = setup
        report = MonteCarloSTA(nl, est, seed=4).run_samples(24)
        slow = report.yield_at(report.samples.max() * 1.01)
        fast = report.yield_at(report.samples.max() * 0.5)
        assert slow == 1.0
        assert fast <= slow

    def test_report_rendering(self, setup):
        nl, est = setup
        report = MonteCarloSTA(nl, est, seed=5).run_samples(8)
        text = format_statistical_report(report, period=1.0)
        assert "yield" in text and "q99.7" in text
