"""Tests for RC trees and Elmore delay."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sta import RCTree


class TestRCTree:
    def test_single_segment_elmore(self):
        """Classic RC: delay = R * C for one segment with a lumped cap."""
        tree = RCTree()
        node = tree.add_node(0, res=2.0, cap=0.0)
        tree.attach_sink(42, node, pin_cap=0.5)
        delays = tree.sink_delays()
        assert delays[42] == pytest.approx(2.0 * 0.5)

    def test_pi_segment_elmore(self):
        """Pi model: downstream cap includes the far half, not the near."""
        tree = RCTree()
        tree.add_root_cap(0.1)  # near half, not seen through R
        node = tree.add_node(0, res=1.0, cap=0.1)  # far half
        tree.attach_sink(1, node, pin_cap=0.3)
        assert tree.sink_delays()[1] == pytest.approx(1.0 * (0.1 + 0.3))
        assert tree.total_cap() == pytest.approx(0.5)

    def test_chain_elmore(self):
        """Two-stage chain: second sink sees both resistances."""
        tree = RCTree()
        n1 = tree.add_node(0, res=1.0, cap=0.2)
        n2 = tree.add_node(n1, res=2.0, cap=0.1)
        tree.attach_sink(1, n1, 0.0)
        tree.attach_sink(2, n2, 0.0)
        delays = tree.sink_delays()
        # d(n1) = R1 * (C1 + C2); d(n2) = d(n1) + R2 * C2
        assert delays[1] == pytest.approx(1.0 * 0.3)
        assert delays[2] == pytest.approx(1.0 * 0.3 + 2.0 * 0.1)

    def test_branch_isolation(self):
        """A sibling branch's R does not add to this sink's delay."""
        tree = RCTree()
        a = tree.add_node(0, res=1.0, cap=0.1)
        b = tree.add_node(0, res=5.0, cap=0.1)
        tree.attach_sink(1, a, 0.0)
        tree.attach_sink(2, b, 0.0)
        delays = tree.sink_delays()
        assert delays[1] == pytest.approx(1.0 * 0.1)
        assert delays[2] == pytest.approx(5.0 * 0.1)

    def test_invalid_parent_rejected(self):
        tree = RCTree()
        with pytest.raises(ValueError):
            tree.add_node(5, 1.0, 1.0)

    def test_negative_values_rejected(self):
        tree = RCTree()
        with pytest.raises(ValueError):
            tree.add_node(0, -1.0, 0.0)

    def test_slew_degradation_proportional_to_elmore(self):
        tree = RCTree()
        node = tree.add_node(0, res=2.0, cap=0.0)
        tree.attach_sink(7, node, 0.25)
        deg = tree.slew_degradations()[7]
        assert deg == pytest.approx(np.log(9.0) * 0.5)

    @settings(max_examples=30, deadline=None)
    @given(
        res=st.lists(st.floats(0.01, 10.0), min_size=1, max_size=8),
        caps=st.lists(st.floats(0.001, 1.0), min_size=8, max_size=8),
    )
    def test_chain_matches_closed_form(self, res, caps):
        """Property: chain Elmore equals the double-sum formula."""
        caps = caps[: len(res)]
        tree = RCTree()
        parent = 0
        for r, c in zip(res, caps):
            parent = tree.add_node(parent, r, c)
        tree.attach_sink(0, parent, 0.0)
        expected = 0.0
        for i, r in enumerate(res):
            expected += r * sum(caps[i:])
        assert tree.sink_delays()[0] == pytest.approx(expected, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(extra_cap=st.floats(0.0, 5.0))
    def test_monotone_in_downstream_cap(self, extra_cap):
        """Adding downstream capacitance never reduces any Elmore delay."""
        def build(extra):
            tree = RCTree()
            n1 = tree.add_node(0, 1.0, 0.1)
            n2 = tree.add_node(n1, 1.0, 0.1 + extra)
            tree.attach_sink(1, n1, 0.0)
            return tree.sink_delays()[1]

        assert build(extra_cap) >= build(0.0) - 1e-12
