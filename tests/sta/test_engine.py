"""Tests for the PERT STA engine on hand-built and benchmark netlists."""

import numpy as np
import pytest

from repro.netlist import LogicGraph, Netlist, make_design, map_design
from repro.place import place_design
from repro.route import PreRouteEstimator, route_design
from repro.sta import ClockConstraint, derive_constraints, run_sta
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def sky():
    return make_sky130_library()


@pytest.fixture(scope="module")
def asap():
    return make_asap7_library()


class ZeroWire:
    """Ideal interconnect: lets tests check pure cell-arc arithmetic."""

    def net_load(self, net):
        return net.total_sink_cap()

    def wire_delay(self, net, sink):
        return 0.0

    def slew_degradation(self, net, sink):
        return 0.0


def chain_netlist(sky, n_inv=3):
    """in -> INV x n -> out, all unit drives, no placement needed."""
    nl = Netlist("chain", sky)
    src = nl.add_port("in0", "input")
    net = nl.add_net("n0")
    nl.connect(net, src)
    for _ in range(n_inv):
        inv = nl.add_cell(sky.pick("INV", 1.0))
        nl.connect(net, inv.pins["A"])
        net = nl.add_net()
        nl.connect(net, inv.pins["Y"])
    out = nl.add_port("out0", "output")
    nl.connect(net, out)
    return nl


class TestEngineBasics:
    def test_inverter_chain_arrival_matches_tables(self, sky):
        nl = chain_netlist(sky, n_inv=3)
        report = run_sta(nl, ZeroWire(), ClockConstraint(10.0))
        # Recompute by hand with the same tables.
        inv = sky.pick("INV", 1.0)
        arc = inv.arcs[0]
        slew = sky.primary_input_slew
        at = 0.0
        loads = [inv.input_cap("A"), inv.input_cap("A"), 0.0]
        for load in loads:
            at += arc.delay.lookup(slew, load)
            slew = arc.output_slew.lookup(slew, load)
        out_pin = nl.ports["out0"]
        assert report.arrival[out_pin.index] == pytest.approx(at)

    def test_longer_chain_is_slower(self, sky):
        short = run_sta(chain_netlist(sky, 2), ZeroWire(),
                        ClockConstraint(10.0))
        long = run_sta(chain_netlist(sky, 6), ZeroWire(),
                       ClockConstraint(10.0))
        at = lambda r: max(r.endpoint_arrivals.values())
        assert at(long) > at(short)

    def test_max_over_inputs(self, sky):
        """A NAND's output arrival follows its latest input."""
        nl = Netlist("t", sky)
        fast = nl.add_port("fast", "input")
        slow = nl.add_port("slow", "input")
        n_fast, n_slow = nl.add_net(), nl.add_net()
        nl.connect(n_fast, fast)
        nl.connect(n_slow, slow)
        # Delay the slow input through two inverters.
        prev = n_slow
        for _ in range(2):
            inv = nl.add_cell(sky.pick("INV", 1.0))
            nl.connect(prev, inv.pins["A"])
            prev = nl.add_net()
            nl.connect(prev, inv.pins["Y"])
        nand = nl.add_cell(sky.pick("NAND2", 1.0))
        nl.connect(n_fast, nand.pins["A"])
        nl.connect(prev, nand.pins["B"])
        out_net = nl.add_net()
        nl.connect(out_net, nand.pins["Y"])
        po = nl.add_port("out", "output")
        nl.connect(out_net, po)

        report = run_sta(nl, ZeroWire(), ClockConstraint(10.0))
        at_out = report.arrival[po.index]
        at_slow_path = report.arrival[nand.pins["B"].index]
        arc = nand.ref.arc_for("B")
        slew_b = report.slew[nand.pins["B"].index]
        assert at_out == pytest.approx(
            at_slow_path + arc.delay.lookup(slew_b, 0.0)
        )

    def test_slack_and_wns(self, sky):
        nl = chain_netlist(sky, 4)
        tight = run_sta(nl, ZeroWire(), ClockConstraint(0.05))
        loose = run_sta(nl, ZeroWire(), ClockConstraint(50.0))
        assert tight.wns < 0 < loose.wns
        assert tight.tns <= tight.wns

    def test_flop_boundaries(self, asap):
        """Q startpoint gets clk->q; D endpoint gets setup subtracted."""
        g = LogicGraph("t")
        a = g.add_input("a")
        x = g.add_gate("INV", (a,))
        r = g.add_register(x)
        y = g.add_gate("INV", (r,))
        r2 = g.add_register(y)
        g.mark_output(r2, "q")
        nl = map_design(g, asap)
        report = run_sta(nl, ZeroWire(), ClockConstraint(1.0))
        dffs = nl.sequential_cells
        q_pins = [c.output_pin for c in dffs if c.output_pin.net
                  and c.output_pin.net.sinks]
        for q in q_pins:
            assert report.arrival[q.index] > 0  # clk->q delay
        for c in dffs:
            d = c.pins["D"]
            expected = 1.0 - report.clock.uncertainty \
                - c.ref.setup_time - report.arrival[d.index]
            assert report.slack[d.index] == pytest.approx(expected)

    def test_per_pin_slack_consistent_with_endpoints(self, asap):
        nl = map_design(make_design("arm9"), asap)
        place_design(nl, seed=0)
        report = run_sta(nl, PreRouteEstimator(nl))
        for pin in nl.timing_endpoints():
            if pin.index in report.slack:
                assert report.pin_slack[pin.index] == pytest.approx(
                    report.slack[pin.index], abs=1e-9
                )

    def test_upstream_slack_not_worse_than_downstream_worst(self, asap):
        """Property: a pin's slack >= the worst endpoint slack it feeds."""
        nl = map_design(make_design("linkruncca"), asap)
        place_design(nl, seed=0)
        report = run_sta(nl, PreRouteEstimator(nl))
        wns = report.wns
        for slack in report.pin_slack.values():
            assert slack >= wns - 1e-9

    def test_critical_endpoints_sorted(self, asap):
        nl = map_design(make_design("arm9"), asap)
        place_design(nl, seed=0)
        report = run_sta(nl, PreRouteEstimator(nl))
        crit = report.critical_endpoints(5)
        ats = [at for _, at in crit]
        assert ats == sorted(ats, reverse=True)
        assert len(crit) == 5


class TestConstraints:
    def test_invalid_constraints_rejected(self):
        with pytest.raises(ValueError):
            ClockConstraint(0.0)
        with pytest.raises(ValueError):
            ClockConstraint(1.0, uncertainty=2.0)

    def test_derived_period_scales_with_node(self, sky, asap):
        nl_sky = map_design(make_design("arm9"), sky)
        nl_asap = map_design(make_design("arm9"), asap)
        c_sky = derive_constraints(nl_sky)
        c_asap = derive_constraints(nl_asap)
        assert c_sky.period > 3.0 * c_asap.period

    def test_derived_period_scales_with_depth(self, asap):
        shallow = map_design(make_design("sha3"), asap)
        deep = map_design(make_design("chacha"), asap)
        assert derive_constraints(deep).period > \
            derive_constraints(shallow).period


class TestSignoffVsPreRoute:
    def test_routed_ats_generally_exceed_preroute(self, asap):
        """Routed interconnect is pessimistic vs the star estimate."""
        nl = map_design(make_design("chacha"), asap)
        fp = place_design(nl, seed=2)
        pre = run_sta(nl, PreRouteEstimator(nl))
        post = run_sta(nl, route_design(nl, fp, seed=2))
        pre_mean = np.mean(list(pre.endpoint_arrivals.values()))
        post_mean = np.mean(list(post.endpoint_arrivals.values()))
        assert post_mean > 0.9 * pre_mean  # routed should not be faster

    def test_endpoint_names_stable_across_providers(self, asap):
        nl = map_design(make_design("arm9"), asap)
        fp = place_design(nl, seed=2)
        pre = run_sta(nl, PreRouteEstimator(nl))
        post = run_sta(nl, route_design(nl, fp, seed=2))
        assert set(pre.endpoint_arrivals) == set(post.endpoint_arrivals)
