"""Inference determinism regressions.

Historically ``predict(mc_samples>0)`` drew from the *training* noise
generator (``readout._noise_rng``): two identical calls returned
different values, and predicting advanced training RNG state.  These
tests pin the fix — inference uses an explicit seedable generator and
never mutates model state — plus the seed-pinned equivalence of the
vectorised MC sampler against the historical per-sample loop."""

import copy

import numpy as np

ATOL = 1e-10


class TestPredictDeterminism:
    def test_identical_calls_identical_results(self, model, designs):
        design = designs[0]
        a = model.predict(design, mc_samples=8)
        b = model.predict(design, mc_samples=8)
        np.testing.assert_array_equal(a, b)

    def test_uncertainty_calls_identical(self, model, designs):
        design = designs[1]
        a = model.predict_with_uncertainty(design, mc_samples=16)
        b = model.predict_with_uncertainty(design, mc_samples=16)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_training_rng_state_untouched(self, model, designs):
        before = copy.deepcopy(
            model.readout._noise_rng.bit_generator.state)
        model.predict(designs[0], mc_samples=8)
        model.predict_with_uncertainty(designs[0], mc_samples=16)
        after = model.readout._noise_rng.bit_generator.state
        assert after == before

    def test_seed_selects_the_draws(self, model, designs):
        design = designs[0]
        a = model.predict(design, mc_samples=8, seed=1)
        b = model.predict(design, mc_samples=8, seed=2)
        assert not np.array_equal(a, b)
        np.testing.assert_array_equal(
            a, model.predict(design, mc_samples=8, seed=1))

    def test_explicit_rng_wins_over_seed(self, model, designs):
        design = designs[0]
        a = model.predict(design, mc_samples=4,
                          rng=np.random.default_rng(9), seed=0)
        b = model.predict(design, mc_samples=4,
                          rng=np.random.default_rng(9), seed=1)
        np.testing.assert_array_equal(a, b)


class TestVectorizedSampling:
    def _looped_reference(self, model, u, mu, log_var, n, rng):
        """The historical per-sample loop, verbatim semantics."""
        std = np.exp(0.5 * log_var)
        bias = float(model.readout.bias.data[0])
        preds = []
        for _ in range(n):
            eps = rng.standard_normal(mu.shape)
            w = (mu + std * eps)[0]
            preds.append(u @ w + bias)
        return np.stack(preds)

    def test_matches_looped_version_under_pinned_seed(self, model,
                                                      designs):
        design = designs[0]
        u, u_n, u_d = model.path_features(design)
        mu, log_var = model._design_prior(design, u_n.data, u_d.data,
                                          transductive=True)
        ref = self._looped_reference(model, u.data, mu, log_var, 12,
                                     np.random.default_rng(42))
        out = model._sample_prior_predictions(
            u.data, mu, log_var, 12, np.random.default_rng(42))
        assert out.shape == ref.shape == (12, design.num_endpoints)
        np.testing.assert_allclose(out, ref, atol=ATOL)

    def test_mean_converges_to_deterministic_prediction(self, model,
                                                        designs):
        design = designs[0]
        det = model.predict(design)
        mc = model.predict(design, mc_samples=4096, seed=0)
        # MC average over W ~ N(mu, sigma) concentrates on u @ mu + b.
        assert np.max(np.abs(mc - det)) < 0.25
