"""Engine behaviour a resident server depends on: bounded caches,
thread-safe feature cache, no-grad entry points from fresh threads,
bit-identical concurrent predictions, and atomic model swaps."""

import threading
from collections import namedtuple

import numpy as np
import pytest

from repro.infer import InferenceEngine
from repro.infer.cache import BoundedLRU, FeatureCache
from repro.model import TimingPredictor
from repro.nn import Tensor


# ----------------------------------------------------------------------
# BoundedLRU
# ----------------------------------------------------------------------
class TestBoundedLRU:
    def test_evicts_least_recently_used(self):
        lru = BoundedLRU(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("c", 3)
        assert "a" not in lru
        assert "b" in lru and "c" in lru
        assert lru.evictions == 1

    def test_get_refreshes_recency(self):
        lru = BoundedLRU(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1     # "a" is now the hottest entry
        lru.put("c", 3)
        assert "a" in lru
        assert "b" not in lru

    def test_put_refreshes_recency(self):
        lru = BoundedLRU(max_entries=2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.put("a", 10)             # overwrite also refreshes
        lru.put("c", 3)
        assert lru.get("a") == 10
        assert "b" not in lru

    def test_unbounded_never_evicts(self):
        lru = BoundedLRU(max_entries=None)
        for i in range(100):
            lru.put(i, i)
        assert len(lru) == 100
        assert lru.evictions == 0

    def test_stats_and_clear(self):
        lru = BoundedLRU(max_entries=1)
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.stats() == {"entries": 1, "evictions": 1,
                               "max_entries": 1}
        lru.clear()
        assert len(lru) == 0

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            BoundedLRU(max_entries=0)


# ----------------------------------------------------------------------
# Bounded weight-independent engine caches
# ----------------------------------------------------------------------
class TestBoundedEngineCaches:
    def test_struct_cache_respects_bound(self, model, designs,
                                         reference):
        """Distinct design-set mixes must not grow ``_structs`` past the
        bound — the resident-server leak this PR fixes — and eviction
        must never change results."""
        engine = InferenceEngine(model, use_cache=False,
                                 max_struct_entries=2)
        a, b = designs
        for batch in ([a], [b], [a, b], [b], [a]):
            out = engine.predict_many(batch)
            for d in batch:
                np.testing.assert_allclose(out[d.name].mean,
                                           reference[d.name],
                                           atol=1e-10)
        stats = engine.stats()["structs"]
        assert stats["entries"] <= 2
        assert stats["evictions"] >= 1
        assert stats["max_entries"] == 2

    def test_image_columns_respect_bound(self, model, designs):
        engine = InferenceEngine(model, use_cache=False,
                                 max_column_entries=1)
        for d in designs:
            engine.predict(d)
        stats = engine.stats()["image_columns"]
        assert stats["entries"] <= 1
        assert stats["evictions"] >= 1


# ----------------------------------------------------------------------
# FeatureCache under concurrency
# ----------------------------------------------------------------------
class _FakeDesign(namedtuple("_FakeDesign", "name node")):
    def content_digest(self):
        return f"{self.name}@{self.node}"


class TestFeatureCacheConcurrency:
    def test_concurrent_lookup_store_counters_consistent(self):
        """Hammer one cache from many threads: no lost counter updates,
        no half-written entries."""
        cache = FeatureCache()
        designs = [_FakeDesign(f"d{i}", "7nm") for i in range(4)]
        triples = {d.name: (np.full((2, 2), i), np.full((2, 1), i),
                            np.full((2, 1), -i))
                   for i, d in enumerate(designs)}
        per_thread = 200
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        bad = []

        def worker(tid):
            barrier.wait()
            for k in range(per_thread):
                d = designs[(tid + k) % len(designs)]
                hit = cache.lookup(d, "digest")
                if hit is None:
                    cache.store(d, "digest", triples[d.name])
                elif not np.array_equal(hit[0], triples[d.name][0]):
                    bad.append(d.name)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert bad == []
        assert cache.hits + cache.misses == n_threads * per_thread
        assert cache.hits > 0
        assert len(cache) == len(designs)


# ----------------------------------------------------------------------
# no_grad on every public entry point, from fresh threads
# ----------------------------------------------------------------------
class TestNoGradLeak:
    def test_fresh_thread_predictions_build_no_graph(self, model,
                                                     designs):
        """Grad mode is thread-local and defaults to *enabled*, so a
        server handler thread that calls the engine outside ``no_grad``
        would silently build autograd graphs for every request.  Every
        tensor produced while a fresh thread runs the public entry
        points must be graph-free."""
        engine = InferenceEngine(model)
        leaks = []
        made = []
        original = Tensor._make

        def spy(data, parents, backward):
            out = original(data, parents, backward)
            made.append(1)
            if (out.requires_grad or out._parents != ()
                    or out._backward is not None):
                leaks.append(repr(out))
            return out

        failures = []

        def run_all_entry_points():
            try:
                engine.predict(designs[0])
                engine.predict(designs[0], mc_samples=4, seed=3)
                engine.predict_with_uncertainty(designs[1],
                                                mc_samples=4, seed=1)
                engine.predict_many(designs, mc_samples=2, seed=2)
            except BaseException as exc:   # surface in the main thread
                failures.append(exc)

        Tensor._make = staticmethod(spy)
        try:
            t = threading.Thread(target=run_all_entry_points)
            t.start()
            t.join()
        finally:
            Tensor._make = staticmethod(original)
        assert failures == []
        assert made, "spy never saw a tensor op — instrumentation broke"
        assert leaks == []


# ----------------------------------------------------------------------
# Concurrent prediction correctness
# ----------------------------------------------------------------------
class TestConcurrentPredictions:
    def test_threads_times_designs_bit_identical(self, model, designs,
                                                 reference):
        """N threads hammering M designs on one warm engine must return
        exactly the serial answer — bit-identical, every call."""
        engine = InferenceEngine(model)
        for d in designs:
            engine.predict(d)   # warm: concurrent calls hit the cache
        n_threads, per_thread = 6, 10
        barrier = threading.Barrier(n_threads)
        mismatches = []
        failures = []

        def worker(tid):
            barrier.wait()
            try:
                for k in range(per_thread):
                    d = designs[(tid + k) % len(designs)]
                    out = engine.predict(d)
                    if not np.array_equal(out, reference[d.name]):
                        mismatches.append((tid, d.name))
            except BaseException as exc:
                failures.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        assert mismatches == []


# ----------------------------------------------------------------------
# Hot model swap
# ----------------------------------------------------------------------
class TestSwapModel:
    def _trained(self, designs, **kwargs):
        m = TimingPredictor(designs[0].graph.features.shape[1], **kwargs)
        m.finalize_node_priors(designs)
        return m

    def test_swap_switches_predictions(self, model, designs):
        other = self._trained(designs, seed=11)
        engine = InferenceEngine(model)
        before = engine.predict(designs[0])
        engine.swap_model(other)
        after = engine.predict(designs[0])
        np.testing.assert_allclose(after, other.predict(designs[0]),
                                   atol=1e-10)
        assert not np.allclose(before, after)

    def test_compatible_swap_keeps_weight_independent_caches(
            self, model, designs):
        other = self._trained(designs, seed=11)
        engine = InferenceEngine(model)
        engine.predict_many(designs)
        structs_before = engine.stats()["structs"]["entries"]
        assert structs_before >= 1
        engine.swap_model(other)
        assert engine.stats()["structs"]["entries"] == structs_before

    def test_incompatible_conv_geometry_clears_structure_caches(
            self, model, designs):
        narrow = self._trained(designs, seed=5, cnn_channels=4)
        engine = InferenceEngine(model)
        engine.predict(designs[0])   # cold: populates per-design columns
        engine.predict_many(designs)
        assert engine.stats()["structs"]["entries"] >= 1
        assert engine.stats()["image_columns"]["entries"] >= 1
        engine.swap_model(narrow)
        assert engine.stats()["structs"]["entries"] == 0
        assert engine.stats()["image_columns"]["entries"] == 0
        # And the swapped-in model actually serves.
        np.testing.assert_allclose(engine.predict(designs[0]),
                                   narrow.predict(designs[0]),
                                   atol=1e-10)
