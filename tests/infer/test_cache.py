"""Weight digest + feature cache invalidation contract.

The cache key must change after *any* parameter update — an optimizer
step, ``load_state_dict``, or a raw ``.data`` write to a frozen
(ablation-pinned) tensor — so stale features can never be served."""

import numpy as np

from repro.infer import FeatureCache, named_tensors, weight_digest
from repro.nn import Adam, Linear, MLP, Module, Tensor


class _Shell(Module):
    """Module with nested submodules, a list, and a frozen tensor."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.head = Linear(4, 3, rng=rng)
        self.blocks = [Linear(3, 3, rng=rng), MLP([3, 8, 2], rng=rng)]
        self.frozen = Tensor(np.ones(5), requires_grad=False)


class _FakeDesign:
    def __init__(self, name, node="7nm", content=None):
        self.name = name
        self.node = node
        self._content = content if content is not None \
            else f"{name}@{node}"

    def content_digest(self):
        return self._content


class TestNamedTensors:
    def test_walks_nested_modules_lists_and_frozen(self):
        names = dict(named_tensors(_Shell()))
        assert "head.weight" in names
        assert "blocks.0.weight" in names
        assert any(n.startswith("blocks.1.") for n in names)
        assert "frozen" in names  # requires_grad=False still included

    def test_superset_of_named_parameters(self):
        shell = _Shell()
        tensors = dict(named_tensors(shell))
        for name, param in shell.named_parameters():
            assert name in tensors
            assert tensors[name] is param


class TestWeightDigest:
    def test_deterministic(self):
        shell = _Shell()
        assert weight_digest(shell) == weight_digest(shell)

    def test_identical_models_share_digest(self):
        assert weight_digest(_Shell()) == weight_digest(_Shell())

    def test_changes_after_optimizer_step(self):
        shell = _Shell()
        before = weight_digest(shell)
        opt = Adam(shell.parameters(), lr=1e-2)
        for p in shell.parameters():
            p.grad = np.ones_like(p.data)
        opt.step()
        assert weight_digest(shell) != before

    def test_changes_after_load_state_dict(self):
        shell = _Shell()
        before = weight_digest(shell)
        state = {k: v * 1.5 for k, v in shell.state_dict().items()}
        shell.load_state_dict(state)
        assert weight_digest(shell) != before

    def test_changes_after_frozen_data_write(self):
        # The ablation-preset pattern: flip requires_grad off, then pin
        # values with a raw .data write. Must still invalidate.
        shell = _Shell()
        before = weight_digest(shell)
        # repro-check: disable=tensor-data-mutation -- test simulates an ablation preset pinning a frozen tensor
        shell.frozen.data[...] = 0.0
        assert weight_digest(shell) != before

    def test_sensitive_to_single_element(self):
        shell = _Shell()
        before = weight_digest(shell)
        # repro-check: disable=tensor-data-mutation -- test flips one weight element
        shell.head.weight.data[0, 0] += 1e-12
        assert weight_digest(shell) != before


class TestFeatureCache:
    def _triple(self, k=3):
        rng = np.random.default_rng(0)
        return tuple(rng.standard_normal((k, 4)) for _ in range(3))

    def test_miss_then_hit(self):
        cache = FeatureCache()
        design = _FakeDesign("a")
        assert cache.lookup(design, "d1") is None
        cache.store(design, "d1", self._triple())
        hit = cache.lookup(design, "d1")
        assert hit is not None
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1,
                                 "evictions": 0}

    def test_stale_digest_misses_and_is_replaced(self):
        cache = FeatureCache()
        design = _FakeDesign("a")
        cache.store(design, "d1", self._triple())
        assert cache.lookup(design, "d2") is None  # digest changed
        cache.store(design, "d2", self._triple())
        assert len(cache) == 1  # replaced, not accumulated
        assert cache.lookup(design, "d2") is not None

    def test_same_name_different_node_distinct(self):
        cache = FeatureCache()
        cache.store(_FakeDesign("a", "7nm"), "d", self._triple())
        cache.store(_FakeDesign("a", "130nm"), "d", self._triple(5))
        assert len(cache) == 2
        hit = cache.lookup(_FakeDesign("a", "130nm"), "d")
        assert hit[0].shape[0] == 5

    def test_same_name_different_content_distinct(self):
        """Regression: the key used to be (name, node) only, so the
        same benchmark built against differently-scaled libraries
        served the *other* build's features."""
        cache = FeatureCache()
        cache.store(_FakeDesign("a", "7nm", content="real"), "d",
                    self._triple())
        cache.store(_FakeDesign("a", "7nm", content="rescaled"), "d",
                    self._triple(5))
        assert len(cache) == 2
        hit = cache.lookup(_FakeDesign("a", "7nm", content="rescaled"),
                           "d")
        assert hit[0].shape[0] == 5
        hit = cache.lookup(_FakeDesign("a", "7nm", content="real"), "d")
        assert hit[0].shape[0] == 3

    def test_clear(self):
        cache = FeatureCache()
        cache.store(_FakeDesign("a"), "d", self._triple())
        cache.clear()
        assert len(cache) == 0
