"""Shared fixtures for the inference-engine tests.

Two small designs on different nodes (the cross-node serving case) and
a predictor with finalised node priors — the module scope keeps the
flow runs to one per test session."""

import numpy as np
import pytest

from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.model import TimingPredictor
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def designs():
    libraries = {"130nm": make_sky130_library(),
                 "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    out = [
        run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("spiMaster", "130nm", libraries, vocab=vocab,
                 resolution=16),
    ]
    normalize_features([d.graph for d in out])
    return out


@pytest.fixture(scope="module")
def model(designs):
    m = TimingPredictor(designs[0].graph.features.shape[1], seed=0)
    m.finalize_node_priors(designs)
    return m


@pytest.fixture()
def fresh_model(designs):
    """Function-scoped predictor for tests that mutate weights."""
    m = TimingPredictor(designs[0].graph.features.shape[1], seed=0)
    m.finalize_node_priors(designs)
    return m


@pytest.fixture()
def reference(model, designs):
    """Seed-path predictions for every design (autograd ``predict``)."""
    return {d.name: model.predict(d) for d in designs}
