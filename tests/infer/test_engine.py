"""InferenceEngine vs the seed ``TimingPredictor.predict`` path.

The acceptance bar from the issue: engine predictions must match the
autograd path numerically (atol 1e-10) — cold, warm, batched, subset,
MC, and after a serialization round-trip."""

import numpy as np
import pytest

from repro.infer import (
    InferenceEngine,
    Prediction,
    load_predictor,
    save_predictor,
    weight_digest,
)

ATOL = 1e-10


class TestPredictEquivalence:
    def test_cold_and_warm_match_seed_path(self, model, designs,
                                           reference):
        engine = InferenceEngine(model)
        for design in designs:
            cold = engine.predict(design)
            warm = engine.predict(design)
            np.testing.assert_allclose(cold, reference[design.name],
                                       atol=ATOL)
            np.testing.assert_array_equal(cold, warm)

    def test_endpoint_subset_matches(self, model, designs):
        engine = InferenceEngine(model)
        design = designs[0]
        subset = np.array([0, 3, 1])
        ref = model.predict(design, endpoint_subset=subset)
        out = engine.predict(design, endpoint_subset=subset)
        np.testing.assert_allclose(out, ref, atol=ATOL)

    def test_mc_sampling_matches_seed_path(self, model, designs):
        engine = InferenceEngine(model)
        design = designs[0]
        ref = model.predict(design, mc_samples=8, seed=7)
        out = engine.predict(design, mc_samples=8, seed=7)
        np.testing.assert_allclose(out, ref, atol=ATOL)

    def test_non_transductive_matches(self, model, designs):
        engine = InferenceEngine(model, transductive=False)
        design = designs[0]
        ref = model.predict(design, transductive=False)
        out = engine.predict(design)
        np.testing.assert_allclose(out, ref, atol=ATOL)

    def test_uncertainty_matches_seed_path(self, model, designs):
        engine = InferenceEngine(model)
        design = designs[1]
        ref_mean, ref_std = model.predict_with_uncertainty(
            design, mc_samples=16, seed=3)
        mean, std = engine.predict_with_uncertainty(
            design, mc_samples=16, seed=3)
        np.testing.assert_allclose(mean, ref_mean, atol=ATOL)
        np.testing.assert_allclose(std, ref_std, atol=ATOL)

    def test_cache_disabled_still_matches(self, model, designs,
                                          reference):
        engine = InferenceEngine(model, use_cache=False)
        for design in designs:
            np.testing.assert_allclose(engine.predict(design),
                                       reference[design.name],
                                       atol=ATOL)
        assert engine.cache_stats() == {"hits": 0, "misses": 0,
                                        "entries": 0, "evictions": 0}


class TestPredictMany:
    def test_fused_matches_per_design(self, model, designs, reference):
        engine = InferenceEngine(model)
        out = engine.predict_many(designs)
        assert set(out) == {d.name for d in designs}
        for design in designs:
            pred = out[design.name]
            assert isinstance(pred, Prediction)
            assert pred.node == design.node
            assert pred.num_endpoints == design.num_endpoints
            np.testing.assert_allclose(pred.mean,
                                       reference[design.name],
                                       atol=ATOL)
            assert pred.std is None

    def test_mc_matches_per_design_seeded_predict(self, model, designs):
        engine = InferenceEngine(model, use_cache=False)
        out = engine.predict_many(designs, mc_samples=8, seed=5)
        for design in designs:
            ref = model.predict(design, mc_samples=8, seed=5)
            np.testing.assert_allclose(out[design.name].mean, ref,
                                       atol=ATOL)

    def test_with_uncertainty(self, model, designs):
        engine = InferenceEngine(model)
        out = engine.predict_many(designs, mc_samples=16,
                                  with_uncertainty=True, seed=2)
        for design in designs:
            ref_mean, ref_std = model.predict_with_uncertainty(
                design, mc_samples=16, seed=2)
            np.testing.assert_allclose(out[design.name].mean, ref_mean,
                                       atol=ATOL)
            np.testing.assert_allclose(out[design.name].std, ref_std,
                                       atol=ATOL)

    def test_uncertainty_without_samples_raises(self, model, designs):
        engine = InferenceEngine(model)
        with pytest.raises(ValueError):
            engine.predict_many(designs, with_uncertainty=True)

    def test_partial_cache_mixes_hit_and_fused_miss(self, model,
                                                    designs, reference):
        engine = InferenceEngine(model)
        engine.predict(designs[0])  # warm one design only
        before = engine.cache_stats()
        out = engine.predict_many(designs)
        after = engine.cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["entries"] == len(designs)
        for design in designs:
            np.testing.assert_allclose(out[design.name].mean,
                                       reference[design.name],
                                       atol=ATOL)


class TestCacheBehaviour:
    def test_warm_call_skips_extraction(self, model, designs,
                                        monkeypatch):
        engine = InferenceEngine(model)
        design = designs[0]
        engine.predict(design)

        # NOTE: patching an attribute of the model would change the
        # weight digest (the walk covers the module tree) and thus
        # legitimately invalidate the cache — patch the engine-level
        # kernel entry point instead.
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("extractor ran on a warm call")

        import repro.infer.engine as engine_mod

        monkeypatch.setattr(engine_mod, "cnn_forward", boom)
        engine.predict(design)  # served from cache
        assert engine.cache_stats()["hits"] >= 1

    def test_weight_change_invalidates(self, fresh_model, designs):
        engine = InferenceEngine(fresh_model)
        design = designs[0]
        before = engine.predict(design)
        tensor = next(p for p in fresh_model.parameters())
        # repro-check: disable=tensor-data-mutation -- test simulates an external weight edit
        tensor.data += 0.05
        fresh_model.finalize_node_priors(designs)
        after = engine.predict(design)
        assert engine.cache_stats()["misses"] == 2
        assert not np.allclose(before, after)
        ref = fresh_model.predict(design)
        np.testing.assert_allclose(after, ref, atol=ATOL)


class TestSerialization:
    def test_round_trip_predictions_identical(self, model, designs,
                                              reference, tmp_path):
        path = tmp_path / "model.npz"
        save_predictor(model, path)
        loaded = load_predictor(path)
        assert weight_digest(loaded) == weight_digest(model)
        engine = InferenceEngine(loaded)
        for design in designs:
            np.testing.assert_array_equal(engine.predict(design),
                                          reference[design.name])

    def test_round_trip_preserves_priors_and_population(self, model,
                                                        designs,
                                                        tmp_path):
        path = tmp_path / "model.npz"
        save_predictor(model, path)
        loaded = load_predictor(path)
        assert set(loaded._node_priors) == set(model._node_priors)
        for node, (mu, lv) in model._node_priors.items():
            np.testing.assert_array_equal(loaded._node_priors[node][0],
                                          mu)
            np.testing.assert_array_equal(loaded._node_priors[node][1],
                                          lv)
        np.testing.assert_array_equal(loaded._population["ud_sum"],
                                      model._population["ud_sum"])
        assert loaded._population["un_count"] == \
            model._population["un_count"]

    def test_untrained_model_refuses_to_save(self, designs, tmp_path):
        from repro.model import TimingPredictor

        raw = TimingPredictor(designs[0].graph.features.shape[1],
                              seed=0)
        with pytest.raises(RuntimeError, match="finalise|finalize"):
            save_predictor(raw, tmp_path / "raw.npz")

    def test_version_check(self, model, tmp_path):
        import json

        import numpy as np_

        from repro.nn import CheckpointError

        path = tmp_path / "model.npz"
        save_predictor(model, path)
        with np_.load(path, allow_pickle=False) as archive:
            arrays = {k: archive[k] for k in archive.files}
        meta = json.loads(str(arrays["meta"]))
        meta["format_version"] = 99
        arrays["meta"] = np_.array(json.dumps(meta))
        np_.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointError, match="version"):
            load_predictor(path)

    def test_save_is_suffix_exact(self, model, tmp_path):
        """No silent ``.npz`` append: the file lands at the requested
        path verbatim, whatever its suffix."""
        path = tmp_path / "model.ckpt"
        written = save_predictor(model, path)
        assert written == path
        assert path.is_file()
        assert not (tmp_path / "model.ckpt.npz").exists()
        loaded = load_predictor(path)
        assert weight_digest(loaded) == weight_digest(model)

    def test_legacy_suffixed_checkpoint_still_loads(self, model,
                                                    tmp_path):
        """Checkpoints written before the atomic writer landed at
        ``<path>.npz``; loading by the original name must still work."""
        save_predictor(model, tmp_path / "model.npz")
        loaded = load_predictor(tmp_path / "model")  # old call style
        assert weight_digest(loaded) == weight_digest(model)

    def test_crash_mid_save_leaves_previous_file(self, model, tmp_path,
                                                 monkeypatch):
        import os

        path = tmp_path / "model.npz"
        save_predictor(model, path)
        before = path.read_bytes()

        def dying_replace(src, dst):
            raise OSError("simulated kill during rename")

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(OSError, match="simulated kill"):
            save_predictor(model, path)
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert [p for p in tmp_path.iterdir() if p != path] == []

    def test_missing_key_is_named(self, model, tmp_path):
        import numpy as np_

        from repro.nn import CheckpointError

        path = tmp_path / "model.npz"
        save_predictor(model, path)
        with np_.load(path, allow_pickle=False) as archive:
            arrays = {k: archive[k] for k in archive.files}
        victim = next(k for k in arrays if k.startswith("prior::log_var"))
        del arrays[victim]
        np_.savez_compressed(path, **arrays)
        with pytest.raises(CheckpointError) as excinfo:
            load_predictor(path)
        assert victim in str(excinfo.value)

    def test_corrupt_archive_raises_typed_error(self, tmp_path):
        from repro.nn import CheckpointError

        path = tmp_path / "model.npz"
        path.write_bytes(b"garbage, not a zip archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_predictor(path)
