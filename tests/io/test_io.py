"""Round-trip tests for the Verilog / DEF / Liberty / SPEF writers."""

import numpy as np
import pytest

from repro.io import (
    DefParseError,
    VerilogParseError,
    parse_def,
    parse_liberty,
    parse_spef,
    parse_verilog,
    verilog_roundtrip_equal,
    write_def,
    write_liberty,
    write_spef,
    write_verilog,
)
from repro.netlist import make_design, map_design
from repro.place import place_design
from repro.route import GlobalRouter, RoutedParasitics
from repro.sta import run_sta
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def asap():
    return make_asap7_library()


@pytest.fixture(scope="module")
def placed(asap):
    nl = map_design(make_design("linkruncca"), asap)
    fp = place_design(nl, seed=7)
    return nl, fp


class TestVerilog:
    def test_roundtrip_structure(self, placed, asap):
        nl, _ = placed
        text = write_verilog(nl)
        parsed = parse_verilog(text, asap)
        assert verilog_roundtrip_equal(nl, parsed)
        parsed.validate()

    def test_roundtrip_preserves_counts(self, placed, asap):
        nl, _ = placed
        parsed = parse_verilog(write_verilog(nl), asap)
        assert len(parsed.cells) == len(nl.cells)
        assert len(parsed.ports) == len(nl.ports)
        assert len(parsed.timing_endpoints()) == \
            len(nl.timing_endpoints())

    def test_clock_net_detected(self, placed, asap):
        nl, _ = placed
        parsed = parse_verilog(write_verilog(nl), asap)
        clock_nets = [n for n in parsed.nets.values() if n.is_clock]
        assert len(clock_nets) == 1

    def test_bus_bit_names_escaped(self, placed, asap):
        nl, _ = placed
        text = write_verilog(nl)
        assert "\\" in text  # label[0]-style ports need escaping
        parsed = parse_verilog(text, asap)
        assert any("[" in name for name in parsed.ports)

    def test_sta_equivalence_after_roundtrip(self, placed, asap):
        """Same netlist timing before and after the text round trip."""
        from repro.route import PreRouteEstimator

        nl, fp = placed
        parsed = parse_verilog(write_verilog(nl), asap)
        # Copy placement onto the parsed netlist via DEF.
        parse_def(write_def(nl, fp), parsed)
        a = run_sta(nl, PreRouteEstimator(nl))
        b = run_sta(parsed, PreRouteEstimator(parsed))
        assert a.endpoint_arrivals.keys() == b.endpoint_arrivals.keys()
        # DEF database units round coordinates to 1/1000 um, so allow a
        # correspondingly small timing tolerance.
        for name, at in a.endpoint_arrivals.items():
            assert b.endpoint_arrivals[name] == pytest.approx(at,
                                                              rel=1e-3)

    def test_unknown_cell_rejected(self, asap):
        bad = ("module t (a);\n  input a;\n"
               "  not_a_cell u1 (.A(a));\nendmodule")
        with pytest.raises(VerilogParseError):
            parse_verilog(bad, asap)

    def test_no_module_rejected(self, asap):
        with pytest.raises(VerilogParseError):
            parse_verilog("wire x;", asap)


class TestDef:
    def test_roundtrip_placement(self, placed, asap):
        nl, fp = placed
        text = write_def(nl, fp)
        clone = parse_verilog(write_verilog(nl), asap)
        fp2 = parse_def(text, clone)
        assert fp2.width == pytest.approx(fp.width, abs=1e-3)
        assert fp2.num_rows == fp.num_rows
        for name, inst in nl.cells.items():
            other = clone.cells[name]
            assert other.x == pytest.approx(inst.x, abs=1e-3)
            assert other.y == pytest.approx(inst.y, abs=1e-3)

    def test_macros_roundtrip(self, placed, asap):
        nl, fp = placed
        clone = parse_verilog(write_verilog(nl), asap)
        fp2 = parse_def(write_def(nl, fp), clone)
        assert len(fp2.macros) == len(fp.macros)

    def test_unknown_component_rejected(self, placed, asap):
        nl, fp = placed
        text = write_def(nl, fp)
        clone = parse_verilog(write_verilog(nl), asap)
        removed = next(iter(clone.cells.values()))
        clone.remove_cell(removed)
        with pytest.raises(DefParseError):
            parse_def(text, clone)


class TestLiberty:
    @pytest.mark.parametrize("factory", [make_asap7_library,
                                         make_sky130_library])
    def test_roundtrip_library(self, factory):
        lib = factory()
        parsed = parse_liberty(write_liberty(lib))
        assert parsed.name == lib.name
        assert parsed.node_nm == lib.node_nm
        assert set(parsed.cells) == set(lib.cells)
        assert parsed.wire.res_per_um == pytest.approx(
            lib.wire.res_per_um
        )

    def test_roundtrip_preserves_tables(self, asap):
        parsed = parse_liberty(write_liberty(asap))
        for name, cell in asap.cells.items():
            other = parsed.cells[name]
            assert other.function == cell.function
            assert len(other.arcs) == len(cell.arcs)
            arc_a = cell.arcs[0]
            arc_b = other.arc_for(arc_a.input_pin)
            np.testing.assert_allclose(arc_b.delay.values,
                                       arc_a.delay.values, rtol=1e-5)
            for pin in cell.input_pins:
                assert other.input_cap(pin) == pytest.approx(
                    cell.input_cap(pin), rel=1e-5
                )

    def test_roundtrip_sequential_data(self, asap):
        parsed = parse_liberty(write_liberty(asap))
        dff = parsed.pick("DFF", 1.0)
        ref = asap.pick("DFF", 1.0)
        assert dff.is_sequential
        assert dff.setup_time == pytest.approx(ref.setup_time)
        assert dff.clk_to_q == pytest.approx(ref.clk_to_q)

    def test_parsed_library_usable_for_mapping(self, asap):
        """A parsed library is a drop-in replacement for the original."""
        parsed = parse_liberty(write_liberty(asap))
        nl = map_design(make_design("usbf_device"), parsed)
        nl.validate()


class TestSpef:
    def test_roundtrip_elmore(self, placed):
        nl, fp = placed
        router = GlobalRouter(nl, fp, seed=0)
        router.run()
        text = write_spef(nl, router)
        trees = parse_spef(text, nl)
        assert set(trees) == set(router.trees)
        for idx, tree in router.trees.items():
            other = trees[idx]
            assert other.total_cap() == pytest.approx(tree.total_cap(),
                                                      rel=1e-4)
            a = tree.sink_delays()
            b = other.sink_delays()
            assert set(a) == set(b)
            for pin, delay in a.items():
                assert b[pin] == pytest.approx(delay, rel=1e-4)

    def test_signoff_sta_from_parsed_spef(self, placed):
        """STA on parsed parasitics matches STA on the originals."""
        nl, fp = placed
        router = GlobalRouter(nl, fp, seed=0)
        router.run()
        baseline = run_sta(nl, RoutedParasitics(router))
        trees = parse_spef(write_spef(nl, router), nl)
        router.trees = trees
        again = run_sta(nl, RoutedParasitics(router))
        for name, at in baseline.endpoint_arrivals.items():
            assert again.endpoint_arrivals[name] == pytest.approx(
                at, rel=1e-4
            )
