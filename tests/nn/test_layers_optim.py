"""Tests for Module/layers, optimisers, and serialization round-trips."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv2d,
    Flatten,
    LayerNorm,
    Linear,
    MaxPool2d,
    MLP,
    Module,
    ReLU,
    SGD,
    Sequential,
    Tensor,
    load_module,
    save_module,
)
from repro.nn import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(5, 3, rng)
        out = layer(Tensor(rng.standard_normal((4, 5))))
        assert out.shape == (4, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_deterministic_init(self):
        a = Linear(4, 4, np.random.default_rng(0))
        b = Linear(4, 4, np.random.default_rng(0))
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestMLP:
    def test_structure_and_forward(self, rng):
        mlp = MLP([8, 16, 4], rng, activation="relu")
        out = mlp(Tensor(rng.standard_normal((2, 8))))
        assert out.shape == (2, 4)

    def test_final_tanh_bounds_output(self, rng):
        mlp = MLP([8, 16, 4], rng, final_activation="tanh")
        out = mlp(Tensor(100.0 * rng.standard_normal((5, 8))))
        assert np.all(np.abs(out.data) <= 1.0)

    def test_rejects_single_size(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)


class TestModuleTree:
    def test_named_parameters_nested(self, rng):
        model = Sequential(Linear(3, 4, rng), ReLU(), Linear(4, 2, rng))
        names = [n for n, _ in model.named_parameters()]
        assert "modules.0.weight" in names
        assert "modules.2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self, rng):
        model = Linear(3, 4, rng)
        assert model.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self, rng):
        model = Linear(3, 1, rng)
        out = model(Tensor(rng.standard_normal((2, 3)))).sum()
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng), ReLU())
        model.eval()
        assert not model.modules[0].training
        model.train()
        assert model.modules[0].training

    def test_state_dict_roundtrip(self, rng, tmp_path):
        model = MLP([4, 8, 2], rng)
        clone = MLP([4, 8, 2], np.random.default_rng(99))
        path = tmp_path / "model.npz"
        save_module(model, path)
        load_module(clone, path)
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_load_state_dict_rejects_mismatch(self, rng):
        model = Linear(3, 2, rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((3, 2))})
        with pytest.raises(ValueError):
            model.load_state_dict({"weight": np.zeros((2, 3)),
                                   "bias": np.zeros(2)})


class TestConvNet:
    def test_small_cnn_forward(self, rng):
        net = Sequential(
            Conv2d(3, 4, 3, rng, padding=1),
            ReLU(),
            MaxPool2d(2),
            Conv2d(4, 8, 3, rng, padding=1),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(8 * 4 * 4, 6, rng),
        )
        out = net(Tensor(rng.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 6)

    def test_cnn_gradients_flow_to_first_layer(self, rng):
        net = Sequential(Conv2d(1, 2, 3, rng, padding=1), ReLU(), Flatten(),
                         Linear(2 * 4 * 4, 1, rng))
        out = net(Tensor(rng.standard_normal((1, 1, 4, 4)))).sum()
        out.backward()
        first = net.modules[0]
        assert first.weight.grad is not None
        assert np.abs(first.weight.grad).sum() > 0


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        ln = LayerNorm(6)
        x = Tensor(rng.standard_normal((4, 6)) * 10 + 5)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)


class TestOptimisers:
    def _loss(self, model, x, y):
        return F.mse_loss(model(x), y)

    def test_sgd_reduces_loss(self, rng):
        model = Linear(3, 1, rng)
        opt = SGD(model.parameters(), lr=0.05)
        x = Tensor(rng.standard_normal((32, 3)))
        true_w = rng.standard_normal((3, 1))
        y = Tensor(x.data @ true_w)
        first = None
        for _ in range(100):
            opt.zero_grad()
            loss = self._loss(model, x, y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert self._loss(model, x, y).item() < 0.01 * first

    def test_adam_fits_linear_regression(self, rng):
        model = Linear(4, 1, rng)
        opt = Adam(model.parameters(), lr=0.05)
        x = Tensor(rng.standard_normal((64, 4)))
        true_w = np.array([[1.0], [-2.0], [0.5], [3.0]])
        y = Tensor(x.data @ true_w + 0.7)
        for _ in range(300):
            opt.zero_grad()
            loss = self._loss(model, x, y)
            loss.backward()
            opt.step()
        np.testing.assert_allclose(model.weight.data, true_w, atol=0.05)
        np.testing.assert_allclose(model.bias.data, [0.7], atol=0.05)

    def test_sgd_momentum_changes_trajectory(self, rng):
        x = Tensor(rng.standard_normal((16, 2)))
        y = Tensor(rng.standard_normal((16, 1)))
        plain = Linear(2, 1, np.random.default_rng(5))
        momentum = Linear(2, 1, np.random.default_rng(5))
        opt_a = SGD(plain.parameters(), lr=0.01)
        opt_b = SGD(momentum.parameters(), lr=0.01, momentum=0.9)
        for _ in range(5):
            for opt, model in ((opt_a, plain), (opt_b, momentum)):
                opt.zero_grad()
                self._loss(model, x, y).backward()
                opt.step()
        assert not np.allclose(plain.weight.data, momentum.weight.data)

    def test_weight_decay_shrinks_weights(self, rng):
        model = Linear(3, 1, rng, bias=False)
        opt = SGD(model.parameters(), lr=0.1, weight_decay=1.0)
        x = Tensor(np.zeros((4, 3)))
        y = Tensor(np.zeros((4, 1)))
        before = np.abs(model.weight.data).sum()
        for _ in range(10):
            opt.zero_grad()
            self._loss(model, x, y).backward()
            opt.step()
        assert np.abs(model.weight.data).sum() < before

    def test_clip_grad_norm(self, rng):
        model = Linear(3, 1, rng)
        out = (model(Tensor(100.0 * np.ones((8, 3)))) ** 2.0).sum()
        out.backward()
        opt = SGD(model.parameters(), lr=0.1)
        norm_before = opt.clip_grad_norm(1.0)
        assert norm_before > 1.0
        total = sum(float((p.grad ** 2).sum()) for p in model.parameters())
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-6)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([])
