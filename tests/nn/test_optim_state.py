"""Optimizer state_dict round-trips and resumed-trajectory equivalence."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def make_problem(seed=0):
    """A tiny least-squares problem: model, data, loss closure."""
    rng = np.random.default_rng(seed)
    layer = Linear(6, 3, rng)
    x = Tensor(rng.standard_normal((16, 6)))
    y = rng.standard_normal((16, 3))

    def loss_step(optimizer):
        optimizer.zero_grad()
        out = layer(x)
        loss = ((out - Tensor(y)) ** 2).sum() * (1.0 / y.size)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    return layer, loss_step


def weights(layer):
    return [p.data.copy() for p in layer.parameters()]


class TestStateDictRoundTrip:
    def test_sgd_round_trip(self, rng):
        layer, loss_step = make_problem()
        opt = SGD(layer.parameters(), lr=0.05, momentum=0.9,
                  weight_decay=1e-4)
        for _ in range(3):
            loss_step(opt)
        state = opt.state_dict()
        assert state["kind"] == "SGD"
        assert state["momentum"] == 0.9
        fresh = SGD(layer.parameters(), lr=0.001)
        fresh.load_state_dict(state)
        assert fresh.lr == 0.05
        assert fresh.momentum == 0.9
        assert fresh.weight_decay == 1e-4
        for mine, theirs in zip(opt._velocity, fresh._velocity):
            if mine is None:
                assert theirs is None
            else:
                np.testing.assert_array_equal(mine, theirs)

    def test_adam_round_trip(self, rng):
        layer, loss_step = make_problem()
        opt = Adam(layer.parameters(), lr=3e-3, betas=(0.8, 0.95),
                   eps=1e-9, weight_decay=1e-5)
        for _ in range(4):
            loss_step(opt)
        state = opt.state_dict()
        assert state["kind"] == "Adam"
        assert state["t"] == 4
        fresh = Adam(layer.parameters(), lr=1.0)
        fresh.load_state_dict(state)
        assert fresh._t == 4
        assert (fresh.lr, fresh.beta1, fresh.beta2, fresh.eps,
                fresh.weight_decay) == (3e-3, 0.8, 0.95, 1e-9, 1e-5)
        for mine, theirs in zip(opt._m + opt._v, fresh._m + fresh._v):
            np.testing.assert_array_equal(mine, theirs)

    def test_state_is_a_copy(self, rng):
        layer, loss_step = make_problem()
        opt = Adam(layer.parameters(), lr=3e-3)
        loss_step(opt)
        state = opt.state_dict()
        state["m"][0][...] = 1e9
        assert not np.any(opt._m[0] == 1e9)

    def test_kind_mismatch_rejected(self, rng):
        layer, _ = make_problem()
        sgd = SGD(layer.parameters(), lr=0.1)
        adam = Adam(layer.parameters(), lr=0.1)
        with pytest.raises(ValueError, match="SGD"):
            adam.load_state_dict(sgd.state_dict())

    def test_shape_mismatch_rejected_before_mutation(self, rng):
        layer, loss_step = make_problem()
        opt = Adam(layer.parameters(), lr=3e-3)
        loss_step(opt)
        state = opt.state_dict()
        state["m"][0] = np.zeros((2, 2))
        other = Adam(layer.parameters(), lr=0.5)
        before_t, before_lr = other._t, other.lr
        with pytest.raises(ValueError, match="shape"):
            other.load_state_dict(state)
        assert (other._t, other.lr) == (before_t, before_lr)

    def test_length_mismatch_rejected(self, rng):
        layer, _ = make_problem()
        opt = Adam(layer.parameters(), lr=3e-3)
        state = opt.state_dict()
        state["m"] = state["m"][:-1]
        with pytest.raises(ValueError, match="entries"):
            opt.load_state_dict(state)

    def test_adam_none_moments_rejected(self, rng):
        layer, _ = make_problem()
        opt = Adam(layer.parameters(), lr=3e-3)
        state = opt.state_dict()
        state["m"][0] = None
        with pytest.raises(ValueError, match="None"):
            opt.load_state_dict(state)


class TestResumedTrajectory:
    @pytest.mark.parametrize("make_opt", [
        lambda params: SGD(params, lr=0.05, momentum=0.9),
        lambda params: Adam(params, lr=3e-3),
    ], ids=["sgd-momentum", "adam"])
    def test_resume_matches_uninterrupted(self, make_opt):
        """Snapshot after k steps + fresh optimizer + restore must land
        on exactly the uninterrupted weights (the checkpoint contract)."""
        layer_a, step_a = make_problem(seed=5)
        opt_a = make_opt(layer_a.parameters())
        losses_a = [step_a(opt_a) for _ in range(8)]

        layer_b, step_b = make_problem(seed=5)
        opt_b = make_opt(layer_b.parameters())
        losses_b = [step_b(opt_b) for _ in range(4)]
        snapshot = opt_b.state_dict()
        # "Crash": a brand-new optimizer over the same (live) params.
        opt_b2 = make_opt(layer_b.parameters())
        opt_b2.load_state_dict(snapshot)
        losses_b += [step_b(opt_b2) for _ in range(4)]

        assert losses_b == losses_a
        for wa, wb in zip(weights(layer_a), weights(layer_b)):
            np.testing.assert_array_equal(wa, wb)
