"""Gradcheck coverage for the PR-1 fused kernels, via repro.check.

Three kernels replaced seed implementations behind ``is_legacy()``:
the union-graph levelised sweep, the BLAS-backed ``conv2d``, and the
non-overlapping ``max_pool2d`` backward.  Each is audited here with the
:mod:`repro.check.gradcheck` harness — finite differences against the
analytic gradients — and the sweep additionally against the reference
per-level autograd composition it replaced.
"""

import numpy as np
import pytest

from repro.check.gradcheck import OpCase, check_case, make_sweep_fixture
from repro.model.gnn import levelized_sweep
from repro.nn import Tensor
from repro.nn import functional as F
from repro.util import legacy_mode


def assert_case_clean(op, label, build, atol=1e-5):
    problems = check_case(OpCase(op, label, build, atol=atol))
    assert problems == [], "\n".join(problems)


class TestFusedConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_blas_conv2d_gradcheck(self, stride, padding):
        rng = np.random.default_rng(31)
        inputs = {"x": rng.standard_normal((2, 3, 6, 6)),
                  "weight": rng.standard_normal((4, 3, 3, 3)) * 0.3,
                  "bias": rng.standard_normal(4)}
        assert_case_clean(
            "conv2d", f"blas-s{stride}-p{padding}",
            lambda: (lambda x, weight, bias: F.conv2d(
                x, weight, bias, stride=stride, padding=padding), inputs))

    def test_blas_matches_legacy_einsum_gradients(self):
        rng = np.random.default_rng(32)
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)
        grads = {}
        for mode in ("fused", "legacy"):
            tx = Tensor(x.copy(), requires_grad=True)
            tw = Tensor(w.copy(), requires_grad=True)
            tb = Tensor(b.copy(), requires_grad=True)
            if mode == "legacy":
                with legacy_mode():
                    out = F.conv2d(tx, tw, tb, stride=1, padding=1)
            else:
                out = F.conv2d(tx, tw, tb, stride=1, padding=1)
            (out * out).sum().backward()
            grads[mode] = (tx.grad, tw.grad, tb.grad)
        for fused_grad, legacy_grad in zip(grads["fused"], grads["legacy"]):
            np.testing.assert_allclose(fused_grad, legacy_grad, atol=1e-10)


class TestFusedMaxPool:
    @staticmethod
    def tie_free_input(shape, seed):
        rng = np.random.default_rng(seed)
        flat = np.arange(int(np.prod(shape)), dtype=np.float64)
        rng.shuffle(flat)
        return (flat * 1e-2).reshape(shape)

    def test_non_overlapping_backward_gradcheck(self):
        x = self.tie_free_input((2, 3, 6, 6), seed=33)
        assert_case_clean(
            "max_pool2d", "fused-non-overlapping",
            lambda: (lambda x: F.max_pool2d(x, kernel=2, stride=2),
                     {"x": x}))

    def test_non_overlapping_matches_legacy_scatter(self):
        x = self.tie_free_input((2, 2, 8, 8), seed=34)
        grads = {}
        for mode in ("fused", "legacy"):
            t = Tensor(x.copy(), requires_grad=True)
            if mode == "legacy":
                with legacy_mode():
                    out = F.max_pool2d(t, kernel=2, stride=2)
            else:
                out = F.max_pool2d(t, kernel=2, stride=2)
            (out * out).sum().backward()
            grads[mode] = t.grad
        np.testing.assert_allclose(grads["fused"], grads["legacy"],
                                   atol=1e-12)


class TestFusedLevelizedSweep:
    def test_sweep_gradcheck(self):
        graph, plan, inputs = make_sweep_fixture(seed=35)
        assert_case_clean(
            "levelized_sweep", "fixture-seed-35",
            lambda: (lambda s, w_net, w_cell: levelized_sweep(
                s, w_net, w_cell, plan, graph.levels[0],
                graph.features.shape[0]), inputs),
            atol=1e-4)

    def test_union_graph_sweep_gradcheck(self):
        """The sweep stays gradcheck-clean on a merged (union) graph."""
        from repro.features import PinGraph
        from repro.model.gnn import _plan_for
        from repro.train.fused import merge_pin_graphs

        graph_a, _, _ = make_sweep_fixture(seed=36)
        graph_b = PinGraph(
            features=np.zeros((5, 1)),
            net_edges=np.array([[0, 1], [2, 3]], dtype=np.int64),
            cell_edges=np.array([[1, 3], [2, 4]], dtype=np.int64),
            levels=[np.array([0, 1]), np.array([2, 3]), np.array([4])],
            row_of_pin={},
            endpoint_rows=np.array([4]),
            endpoint_names=["ep"],
        )
        union = merge_pin_graphs([graph_a, graph_b])
        plan = _plan_for(union)
        rng = np.random.default_rng(37)
        inputs = {
            "s": rng.standard_normal((union.num_nodes, 3)) + 0.4,
            "w_net": rng.standard_normal((3, 3)) * 0.5,
            "w_cell": rng.standard_normal((3, 3)) * 0.5,
        }
        assert_case_clean(
            "levelized_sweep", "union-graph",
            lambda: (lambda s, w_net, w_cell: levelized_sweep(
                s, w_net, w_cell, plan, union.levels[0],
                union.num_nodes), inputs),
            atol=1e-4)

    def test_fused_matches_reference_composition(self):
        """Same gradients as the per-level autograd composition."""
        from repro.model.gnn import TimingGNN

        graph, _, _ = make_sweep_fixture(seed=38)
        results = {}
        for mode in ("fused", "legacy"):
            gnn = TimingGNN(1, hidden=3, out_features=2,
                            rng=np.random.default_rng(40))
            graph.features = np.asarray(
                np.random.default_rng(41).standard_normal((8, 1)))
            if mode == "legacy":
                with legacy_mode():
                    out = gnn(graph)
            else:
                out = gnn(graph)
            (out * out).sum().backward()
            results[mode] = {name: p.grad.copy() for name, p
                             in gnn.named_parameters() if p.grad is not None}
        assert results["fused"].keys() == results["legacy"].keys()
        for name in results["fused"]:
            np.testing.assert_allclose(
                results["fused"][name], results["legacy"][name],
                atol=1e-9, err_msg=name)
