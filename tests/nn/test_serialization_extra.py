"""Extra nn coverage: serialization of composite models, edge cases."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Module,
    Linear,
    Sequential,
    ReLU,
    Tensor,
    load_module,
    save_module,
)


class TwoTower(Module):
    """A module with nested submodules and a bare parameter list."""

    def __init__(self, rng):
        super().__init__()
        self.left = MLP([4, 8, 2], rng)
        self.right = Sequential(Linear(4, 4, rng), ReLU(),
                                Linear(4, 2, rng))
        self.gains = [Tensor(np.ones(2), requires_grad=True),
                      Tensor(np.zeros(2), requires_grad=True)]

    def forward(self, x):
        return self.left(x) * self.gains[0] + self.right(x) * self.gains[1]


class TestCompositeSerialization:
    def test_roundtrip_composite(self, tmp_path):
        rng = np.random.default_rng(0)
        model = TwoTower(rng)
        clone = TwoTower(np.random.default_rng(99))
        path = tmp_path / "tower.npz"
        save_module(model, path)
        load_module(clone, path)
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_list_parameters_named(self):
        model = TwoTower(np.random.default_rng(0))
        names = [n for n, _ in model.named_parameters()]
        assert "gains.0" in names and "gains.1" in names

    def test_parameter_count_matches(self):
        model = TwoTower(np.random.default_rng(0))
        expected = (4 * 8 + 8 + 8 * 2 + 2) + (4 * 4 + 4 + 4 * 2 + 2) + 4
        assert model.num_parameters() == expected

    def test_save_excludes_frozen(self, tmp_path):
        """Frozen parameters disappear from the state dict by design."""
        model = TwoTower(np.random.default_rng(0))
        model.gains[0].requires_grad = False
        state = model.state_dict()
        assert "gains.0" not in state
        assert "gains.1" in state
