"""Unit tests for the trace/compile/replay layer (repro.nn.compile).

The compiled step's contract is *bit-for-bit* equivalence with eager
execution (DESIGN.md §11): replaying a program on fresh inputs must
produce exactly the forward values and gradients an eager run on the
same inputs would, so every comparison here is ``np.array_equal`` —
not allclose — except for the documented float32 tolerance.
"""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    CompiledStep,
    CompileError,
    Linear,
    ReplayMismatch,
    Tensor,
    concatenate,
    gather_rows,
    step_index,
    step_input,
    trace,
)
from repro.nn import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _eager_reference(fn, arrays, params):
    """Eager loss/grads of ``fn`` on fresh tensors built from arrays."""
    for p in params.values():
        p.grad = None
    loss, outs = fn({k: np.asarray(v) for k, v in arrays.items()})
    loss.backward()
    return (
        {k: np.array(t.data, copy=True) for k, t in outs.items()},
        {k: np.array(p.grad, copy=True) for k, p in params.items()},
    )


class _Net:
    """Small MLP-over-two-inputs graph with a few alias/reduce ops."""

    def __init__(self, rng):
        self.mlp = MLP([6, 5, 3], rng)
        self.head = Linear(6, 1, rng)
        self.params = {
            f"p{i}": p for i, p in enumerate(self.mlp.parameters()
                                             + self.head.parameters())
        }

    def loss(self, arrays):
        a = step_input("a", arrays["a"])
        b = step_input("b", arrays["b"])
        h = self.mlp(a)                       # (K, 3)
        h = concatenate([h, h * b], axis=1)   # (K, 6) — reuse, broadcast
        h = h.reshape(-1, 6)                  # alias op
        y = self.head(h.relu())
        loss = (y * y).mean() + h.exp().sum() * 1e-3
        return loss, {"y": y, "loss": loss}


def _compile(net, arrays, dtype="float64"):
    with trace() as tape:
        loss, outs = net.loss(arrays)
    return CompiledStep(tape, loss, outputs=outs, dtype=dtype)


def test_replay_bit_equals_eager_across_changing_inputs(rng):
    net = _Net(rng)
    arrays = {"a": rng.standard_normal((4, 6)),
              "b": rng.standard_normal((4, 3))}
    program = _compile(net, arrays)
    for _ in range(3):
        arrays = {"a": rng.standard_normal((4, 6)),
                  "b": rng.standard_normal((4, 3))}
        ref_outs, ref_grads = _eager_reference(net.loss, arrays,
                                               net.params)
        for p in net.params.values():
            p.grad = None
        outs = program.replay(arrays)
        for key in ref_outs:
            assert np.array_equal(outs[key], ref_outs[key]), key
        for key, p in net.params.items():
            assert np.array_equal(p.grad, ref_grads[key]), key


def test_replay_tracks_inplace_parameter_updates(rng):
    """Optimizer-style in-place updates flow into the next replay."""
    net = _Net(rng)
    arrays = {"a": rng.standard_normal((4, 6)),
              "b": rng.standard_normal((4, 3))}
    program = _compile(net, arrays)
    program.replay(arrays)
    for p in net.params.values():
        # repro-check: disable=tensor-data-mutation -- optimizer-style in-place step
        p.data -= 0.01 * p.grad
    ref_outs, ref_grads = _eager_reference(net.loss, arrays, net.params)
    outs = program.replay(arrays)
    assert np.array_equal(outs["loss"], ref_outs["loss"])
    for key, p in net.params.items():
        assert np.array_equal(p.grad, ref_grads[key]), key


def test_gather_rows_index_rebinding(rng):
    """step_index inputs are refreshed per replay (dynamic gathers)."""
    table = Tensor(rng.standard_normal((6, 3)), requires_grad=True)

    def fn(arrays):
        rows = step_index("rows", arrays["rows"])
        picked = gather_rows(table, rows)
        loss = (picked * picked).sum()
        return loss, {"picked": picked}

    with trace() as tape:
        loss, outs = fn({"rows": np.array([0, 2, 4])})
    program = CompiledStep(tape, loss, outputs=outs)
    for idx in ([1, 1, 5], [3, 0, 2]):
        arrays = {"rows": np.array(idx)}
        table.grad = None
        eager_outs, _ = _eager_reference(fn, arrays, {})
        expected_grad = np.array(table.grad, copy=True)
        table.grad = None
        outs = program.replay(arrays)
        assert np.array_equal(outs["picked"], eager_outs["picked"])
        assert np.array_equal(table.grad, expected_grad)


def test_input_shape_change_raises_replay_mismatch(rng):
    net = _Net(rng)
    arrays = {"a": rng.standard_normal((4, 6)),
              "b": rng.standard_normal((4, 3))}
    program = _compile(net, arrays)
    with pytest.raises(ReplayMismatch):
        program.replay({"a": rng.standard_normal((5, 6)),
                        "b": rng.standard_normal((5, 3))})


def test_missing_input_raises_replay_mismatch(rng):
    net = _Net(rng)
    arrays = {"a": rng.standard_normal((4, 6)),
              "b": rng.standard_normal((4, 3))}
    program = _compile(net, arrays)
    with pytest.raises(ReplayMismatch):
        program.replay({"a": arrays["a"]})


def test_rebound_parameter_raises_replay_mismatch(rng):
    net = _Net(rng)
    arrays = {"a": rng.standard_normal((4, 6)),
              "b": rng.standard_normal((4, 3))}
    program = _compile(net, arrays)
    param = net.params["p0"]
    param.data = param.data.copy()   # rebind (not in-place)
    with pytest.raises(ReplayMismatch):
        program.replay(arrays)


def test_dropout_poisons_the_trace(rng):
    x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    with trace() as tape:
        loss = F.dropout(x, 0.5, training=True,
                         rng=np.random.default_rng(0)).sum()
    assert tape.poison_reason is not None
    with pytest.raises(CompileError):
        CompiledStep(tape, loss)


def test_non_scalar_root_rejected(rng):
    x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
    with trace() as tape:
        y = x * 2.0
    with pytest.raises(CompileError):
        CompiledStep(tape, y)


def test_float32_mode_close_to_eager(rng):
    net = _Net(rng)
    arrays = {"a": rng.standard_normal((4, 6)),
              "b": rng.standard_normal((4, 3))}
    program = _compile(net, arrays, dtype="float32")
    ref_outs, ref_grads = _eager_reference(net.loss, arrays, net.params)
    for p in net.params.values():
        p.grad = None
    outs = program.replay(arrays)
    assert outs["loss"].dtype == np.float32
    np.testing.assert_allclose(outs["loss"], ref_outs["loss"],
                               rtol=1e-5)
    for key, p in net.params.items():
        assert p.grad.dtype == np.float64   # cast back for the optimizer
        np.testing.assert_allclose(p.grad, ref_grads[key],
                                   rtol=1e-3, atol=1e-5)


def test_conv_pool_graph_bit_equals_eager(rng):
    """Spatial ops (conv/pool/GAP) replay bit-exactly too."""
    from repro.nn import Conv2d

    conv = Conv2d(2, 3, kernel_size=3, rng=rng)
    params = {f"c{i}": p for i, p in enumerate(conv.parameters())}

    def fn(arrays):
        img = step_input("img", arrays["img"])
        h = conv(img).relu()
        h = F.max_pool2d(h, 2)
        h = F.global_avg_pool2d(h)
        loss = (h * h).sum()
        return loss, {"h": h}

    arrays = {"img": rng.standard_normal((2, 2, 8, 8))}
    with trace() as tape:
        loss, outs = fn(arrays)
    program = CompiledStep(tape, loss, outputs=outs)
    arrays = {"img": rng.standard_normal((2, 2, 8, 8))}
    ref_outs, ref_grads = _eager_reference(fn, arrays, params)
    for p in params.values():
        p.grad = None
    outs = program.replay(arrays)
    assert np.array_equal(outs["h"], ref_outs["h"])
    for key, p in params.items():
        assert np.array_equal(p.grad, ref_grads[key]), key


def test_profiled_replay_populates_op_profile(rng):
    net = _Net(rng)
    arrays = {"a": rng.standard_normal((4, 6)),
              "b": rng.standard_normal((4, 3))}
    program = _compile(net, arrays)
    program.replay(arrays, profile=True)
    assert program.op_profile
    assert any(name.startswith("fwd.") for name in program.op_profile)
    assert any(name.startswith("bwd.") for name in program.op_profile)
    for entry in program.op_profile.values():
        assert entry["calls"] >= 1
        assert entry["seconds"] >= 0.0
