"""Tests for softmax, convolution, pooling and regression losses."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from .test_tensor import check_gradient, numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestSoftmax:
    def test_softmax_sums_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_log_softmax_stable_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = F.log_softmax(x)
        np.testing.assert_allclose(out.data, np.log(0.5) * np.ones((1, 2)))

    def test_log_softmax_gradient(self, rng):
        check_gradient(lambda t: (F.log_softmax(t, axis=-1)[:, 0]).sum(),
                       (3, 5), rng)


class TestLosses:
    def test_mse_matches_numpy(self, rng):
        pred = Tensor(rng.standard_normal(10))
        target = Tensor(rng.standard_normal(10))
        expected = np.mean((pred.data - target.data) ** 2)
        assert F.mse_loss(pred, target).item() == pytest.approx(expected)

    def test_mse_gradient(self, rng):
        y = rng.standard_normal(6)
        check_gradient(lambda t: F.mse_loss(t, Tensor(y)), (6,), rng)

    def test_mae_gradient(self, rng):
        y = rng.standard_normal(6) + 10.0  # keep away from the |.| kink
        check_gradient(lambda t: F.mae_loss(t, Tensor(y)), (6,), rng)

    def test_gaussian_nll_at_mle_is_entropy(self):
        """At mu=y and sigma=1, NLL equals 0.5*log(2*pi)."""
        y = Tensor(np.zeros(4))
        pred = Tensor(np.zeros(4))
        log_var = Tensor(np.zeros(4))
        expected = 0.5 * np.log(2 * np.pi)
        assert F.gaussian_nll(pred, y, log_var).item() == pytest.approx(expected)

    def test_gaussian_nll_gradients(self, rng):
        y = rng.standard_normal(5)

        def on_pred(t):
            return F.gaussian_nll(t, Tensor(y), Tensor(np.zeros(5)))

        check_gradient(on_pred, (5,), rng)

        mu = rng.standard_normal(5)

        def on_logvar(t):
            return F.gaussian_nll(Tensor(mu), Tensor(y), t)

        check_gradient(on_logvar, (5,), rng)

    def test_huber_quadratic_inside_linear_outside(self):
        small = F.huber_loss(Tensor([0.5]), Tensor([0.0]), delta=1.0)
        assert small.item() == pytest.approx(0.125)
        big = F.huber_loss(Tensor([3.0]), Tensor([0.0]), delta=1.0)
        assert big.item() == pytest.approx(0.5 + 2.0)


class TestConv2d:
    def test_output_shape(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        w = Tensor(rng.standard_normal((4, 3, 3, 3)))
        out = F.conv2d(x, w, stride=1, padding=1)
        assert out.shape == (2, 4, 8, 8)
        out2 = F.conv2d(x, w, stride=2, padding=0)
        assert out2.shape == (2, 4, 3, 3)

    def test_identity_kernel(self, rng):
        """A 1x1 kernel of ones on one channel copies the input channel."""
        x = rng.standard_normal((1, 1, 5, 5))
        w = Tensor(np.ones((1, 1, 1, 1)))
        out = F.conv2d(Tensor(x), w)
        np.testing.assert_allclose(out.data, x)

    def test_matches_direct_convolution(self, rng):
        """Cross-check against a naive O(n^4) implementation."""
        x = rng.standard_normal((1, 2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros((1, 3, 6, 6))
        for o in range(3):
            for i in range(6):
                for j in range(6):
                    expected[0, o, i, j] = np.sum(
                        xp[0, :, i:i + 3, j:j + 3] * w[o]
                    )
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_gradient_input(self, rng):
        w = rng.standard_normal((2, 1, 3, 3))

        def fn(t):
            return (F.conv2d(t.reshape(1, 1, 5, 5), Tensor(w),
                             padding=1) ** 2.0).sum()

        check_gradient(fn, (25,), rng, atol=1e-4)

    def test_gradient_weight_and_bias(self, rng):
        x = rng.standard_normal((2, 1, 5, 5))

        def on_w(t):
            return (F.conv2d(Tensor(x), t.reshape(2, 1, 3, 3)) ** 2.0).sum()

        check_gradient(on_w, (18,), rng, atol=1e-4)

        w = rng.standard_normal((2, 1, 3, 3))

        def on_b(t):
            return (F.conv2d(Tensor(x), Tensor(w), bias=t) ** 2.0).sum()

        check_gradient(on_b, (2,), rng, atol=1e-4)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2)
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_gradient(self, rng):
        def fn(t):
            return (F.max_pool2d(t.reshape(1, 1, 4, 4), 2) ** 2.0).sum()

        # Use distinct values to make max unambiguous.
        x = np.arange(16.0) + rng.random(16) * 0.1
        t = Tensor(x.copy(), requires_grad=True)
        fn(t).backward()
        num = numeric_grad(lambda arr: float(fn(Tensor(arr)).data), x)
        np.testing.assert_allclose(t.grad, num, atol=1e-4)

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), kernel=2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient(self, rng):
        def fn(t):
            return (F.avg_pool2d(t.reshape(1, 1, 4, 4), 2) ** 2.0).sum()

        check_gradient(fn, (16,), rng, atol=1e-4)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_training_scales_kept_units(self):
        rng = np.random.default_rng(3)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, rng, training=True)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 2.0)
        # Kept fraction is about half.
        assert abs((out.data > 0).mean() - 0.5) < 0.05
