"""The no-grad forward path: semantics, equivalence, and graph absence.

``no_grad()`` must (a) be a reentrant context manager and decorator,
(b) be thread-local, (c) leave forward values bit-identical to the
grad-enabled path, and (d) suppress *all* graph construction — no
parents, no backward closures, no requires_grad — for every op routed
through ``Tensor._make``.
"""

import threading

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Sequential,
    Tensor,
    enable_grad,
    functional as F,
    is_grad_enabled,
    no_grad,
)


def _graph_free(t: Tensor) -> bool:
    return (not t.requires_grad and t._parents == ()
            and t._backward is None)


class TestGradModeFlag:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_toggles_and_restores(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nesting_is_reentrant(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_enable_grad_inside_no_grad(self):
        with no_grad():
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_decorator_form(self):
        @no_grad()
        def f():
            return is_grad_enabled()

        assert f() is False
        assert is_grad_enabled()

    def test_thread_locality(self):
        seen = {}

        def worker():
            seen["worker"] = is_grad_enabled()

        with no_grad():
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert not is_grad_enabled()
        # The other thread never saw this thread's no_grad block.
        assert seen["worker"] is True


class TestNoGradGraph:
    def test_binary_op_builds_no_graph(self):
        a = Tensor(np.ones((3, 3)), requires_grad=True)
        b = Tensor(np.full((3, 3), 2.0), requires_grad=True)
        with no_grad():
            out = a @ b + a
        assert _graph_free(out)

    def test_grad_graph_kept_outside(self):
        a = Tensor(np.ones((3, 3)), requires_grad=True)
        out = (a * 2.0).sum()
        assert out.requires_grad
        out.backward()
        np.testing.assert_allclose(a.grad, np.full((3, 3), 2.0))

    def test_backward_on_no_grad_output_is_inert(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            out = (a * 3.0).sum()
        out.backward()  # no graph: must not touch a.grad (or crash)
        assert a.grad is None

    def test_mlp_forward_bit_identical(self):
        rng = np.random.default_rng(0)
        net = Sequential(Linear(8, 16, rng=rng), Linear(16, 4, rng=rng))
        x = Tensor(rng.standard_normal((5, 8)))
        ref = net(x).relu().data
        with no_grad():
            out = net(x).relu()
        assert _graph_free(out)
        np.testing.assert_array_equal(out.data, ref)

    def test_conv_forward_bit_identical(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)))
        w = Tensor(rng.standard_normal((4, 3, 3, 3)),
                   requires_grad=True)
        ref = F.conv2d(x, w).data
        with no_grad():
            out = F.conv2d(x, w)
        assert _graph_free(out)
        np.testing.assert_array_equal(out.data, ref)

    def test_reductions_and_activations(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.standard_normal((4, 6)), requires_grad=True)
        with no_grad():
            for out in (a.sigmoid(), a.tanh(), a.sum(), a.mean(),
                        F.softmax(a), a.exp(), (a * a).reshape(2, 12)):
                assert _graph_free(out)

    def test_predictor_forward_bit_identical(self, designs, model):
        design = designs[0]
        ref = model.predict(design)
        with no_grad():
            out = model.predict(design)
        np.testing.assert_array_equal(out, ref)


@pytest.fixture(scope="module")
def designs():
    from repro.features import GateVocabulary, normalize_features
    from repro.flow import run_flow
    from repro.techlib import make_asap7_library, make_sky130_library

    libraries = {"130nm": make_sky130_library(),
                 "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    out = [run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                    resolution=16)]
    normalize_features([d.graph for d in out])
    return out


@pytest.fixture(scope="module")
def model(designs):
    from repro.model import TimingPredictor

    m = TimingPredictor(designs[0].graph.features.shape[1], seed=0)
    m.finalize_node_priors(designs)
    return m
