"""Tests for learning-rate schedulers."""

import numpy as np
import pytest

from repro.nn import SGD, Linear
from repro.nn.schedulers import (
    ConstantLR,
    CosineDecay,
    LinearDecay,
    StepDecay,
    WarmupWrapper,
)


@pytest.fixture
def optimizer():
    model = Linear(2, 1, np.random.default_rng(0))
    return SGD(model.parameters(), lr=0.1)


class TestSchedulers:
    def test_constant(self, optimizer):
        sched = ConstantLR(optimizer)
        for _ in range(5):
            assert sched.step() == pytest.approx(0.1)

    def test_linear_decay_endpoints(self, optimizer):
        sched = LinearDecay(optimizer, total_steps=10, final_fraction=0.2)
        first = sched.step()
        assert first < 0.1
        for _ in range(20):
            last = sched.step()
        assert last == pytest.approx(0.1 * 0.2)
        assert optimizer.lr == pytest.approx(last)

    def test_linear_decay_monotone(self, optimizer):
        sched = LinearDecay(optimizer, total_steps=10)
        lrs = [sched.step() for _ in range(12)]
        assert all(a >= b - 1e-15 for a, b in zip(lrs, lrs[1:]))

    def test_cosine_endpoints(self, optimizer):
        sched = CosineDecay(optimizer, total_steps=10, min_lr=0.01)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[-1] == pytest.approx(0.01)
        assert lrs[0] > lrs[-1]

    def test_step_decay(self, optimizer):
        sched = StepDecay(optimizer, period=3, gamma=0.5)
        lrs = [sched.step() for _ in range(7)]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.05)
        assert lrs[6] == pytest.approx(0.025)

    def test_warmup_then_inner(self, optimizer):
        inner = ConstantLR(optimizer)
        sched = WarmupWrapper(inner, warmup_steps=4)
        lrs = [sched.step() for _ in range(6)]
        assert lrs[0] == pytest.approx(0.1 / 4)
        assert lrs[3] == pytest.approx(0.1)
        assert lrs[5] == pytest.approx(0.1)

    def test_reset(self, optimizer):
        sched = LinearDecay(optimizer, total_steps=5)
        for _ in range(5):
            sched.step()
        sched.reset()
        assert optimizer.lr == pytest.approx(0.1)
        assert sched.step_count == 0

    def test_invalid_params(self, optimizer):
        with pytest.raises(ValueError):
            LinearDecay(optimizer, total_steps=0)
        with pytest.raises(ValueError):
            CosineDecay(optimizer, total_steps=-1)
        with pytest.raises(ValueError):
            StepDecay(optimizer, period=0)
        with pytest.raises(ValueError):
            WarmupWrapper(ConstantLR(optimizer), warmup_steps=-1)

    def test_scheduler_actually_affects_training(self):
        """End to end: decayed SGD takes smaller late steps."""
        rng = np.random.default_rng(0)
        model = Linear(3, 1, rng)
        opt = SGD(model.parameters(), lr=0.5)
        sched = LinearDecay(opt, total_steps=10, final_fraction=0.01)
        from repro.nn import Tensor
        from repro.nn import functional as F

        x = Tensor(rng.standard_normal((8, 3)))
        y = Tensor(rng.standard_normal((8, 1)))
        deltas = []
        for _ in range(10):
            opt.zero_grad()
            F.mse_loss(model(x), y).backward()
            before = model.weight.data.copy()
            opt.step()
            sched.step()
            deltas.append(np.abs(model.weight.data - before).sum())
        assert deltas[-1] < deltas[0]
