"""Edge-case coverage for the autograd engine and layers."""

import numpy as np
import pytest

from repro.nn import MLP, Linear, Module, Tensor, concatenate
from repro.nn import functional as F


class TestTensorEdgeCases:
    def test_zero_size_concat_axis(self):
        a = Tensor(np.zeros((2, 3)), requires_grad=True)
        b = Tensor(np.zeros((0, 3)))
        out = concatenate([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert a.grad.shape == (2, 3)

    def test_scalar_tensor_arithmetic(self):
        t = Tensor(3.0, requires_grad=True)
        out = t * t + 1.0
        out.backward()
        assert t.grad == pytest.approx(6.0)

    def test_grad_accumulates_across_backward_calls(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0])

    def test_backward_through_detach_boundary_only(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = a * 2.0
        c = b.detach() * 3.0 + b
        c.sum().backward()
        # Only the non-detached branch contributes: d/da (2a) = 2.
        np.testing.assert_allclose(a.grad, [2.0, 2.0, 2.0])

    def test_pow_negative_exponent(self):
        t = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        (t ** -1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [-0.25, -0.0625])

    def test_transpose_3d_axes(self):
        t = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        out = t.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert t.grad.shape == (2, 3, 4)

    def test_softmax_gradient_rows_sum_to_zero(self):
        t = Tensor(np.random.default_rng(0).standard_normal((3, 5)),
                   requires_grad=True)
        F.softmax(t, axis=1)[:, 0].sum().backward()
        np.testing.assert_allclose(t.grad.sum(axis=1), 0.0, atol=1e-12)


class TestModuleEdgeCases:
    def test_module_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)

    def test_empty_sequential_iteration(self):
        from repro.nn import Sequential

        seq = Sequential()
        assert len(seq) == 0
        x = Tensor(np.ones(3))
        out = seq(x)
        np.testing.assert_allclose(out.data, x.data)

    def test_mlp_single_layer(self):
        rng = np.random.default_rng(0)
        mlp = MLP([4, 2], rng)
        out = mlp(Tensor(np.ones((1, 4))))
        assert out.shape == (1, 2)

    def test_linear_1d_input(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng)
        out = layer(Tensor(np.ones(3)))
        assert out.shape == (2,)
