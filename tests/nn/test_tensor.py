"""Unit tests for the autograd engine: forward values and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, gather_rows, scatter_add_rows, stack, where
from repro.nn.tensor import _unbroadcast


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar ``fn`` w.r.t. array ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(build, shape, rng, atol=1e-5):
    """Compare autograd gradient of ``build(Tensor)`` against finite diff."""
    x = rng.standard_normal(shape)
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    num = numeric_grad(lambda arr: float(build(Tensor(arr)).data), x)
    np.testing.assert_allclose(t.grad, num, atol=atol)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        np.testing.assert_allclose(
            (a + b).data, np.tile(1.0 + np.arange(3.0), (2, 1))
        )

    def test_matmul(self, rng):
        a, b = rng.standard_normal((4, 5)), rng.standard_normal((5, 2))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)

    def test_scalar_ops(self):
        t = Tensor([2.0])
        assert (t * 3 + 1).item() == 7.0
        assert (1 - t).item() == -1.0
        assert (6 / t).item() == 3.0
        assert (t ** 2).item() == 4.0

    def test_reductions(self, rng):
        x = rng.standard_normal((3, 4))
        t = Tensor(x)
        np.testing.assert_allclose(t.sum(axis=0).data, x.sum(axis=0))
        np.testing.assert_allclose(t.mean(axis=1).data, x.mean(axis=1))
        np.testing.assert_allclose(t.max().data, x.max())

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_detach_cuts_graph(self):
        t = Tensor([3.0], requires_grad=True)
        out = (t.detach() * 2).sum()
        out.backward()
        assert t.grad is None


class TestUnbroadcast:
    def test_no_op(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)) is g

    def test_leading_axis(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(_unbroadcast(g, (2, 3)), 4 * np.ones((2, 3)))

    def test_expanded_axis(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(_unbroadcast(g, (2, 1)), 3 * np.ones((2, 1)))

    def test_mixed(self):
        g = np.ones((5, 2, 3))
        out = _unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        np.testing.assert_allclose(out, 10 * np.ones((1, 3)))


class TestGradients:
    def test_add(self, rng):
        check_gradient(lambda t: (t + t * 2.0).sum(), (3, 4), rng)

    def test_mul(self, rng):
        check_gradient(lambda t: (t * t).sum(), (3, 4), rng)

    def test_div(self, rng):
        check_gradient(lambda t: (1.0 / (t * t + 2.0)).sum(), (5,), rng)

    def test_pow(self, rng):
        check_gradient(lambda t: ((t * t + 1.0) ** 1.5).sum(), (4,), rng)

    def test_matmul_both_sides(self, rng):
        w = rng.standard_normal((4, 3))

        def left(t):
            return (t @ Tensor(w)).sum()

        check_gradient(left, (2, 4), rng)

        x = rng.standard_normal((2, 4))

        def right(t):
            return (Tensor(x) @ t).sum()

        check_gradient(right, (4, 3), rng)

    def test_matmul_vector(self, rng):
        v = rng.standard_normal(4)
        check_gradient(lambda t: (t @ Tensor(v)).sum(), (3, 4), rng)

    def test_broadcast_add_bias(self, rng):
        x = rng.standard_normal((5, 3))
        check_gradient(lambda t: ((Tensor(x) + t) ** 2.0).sum(), (3,), rng)

    def test_sum_axis_keepdims(self, rng):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(),
                       (3, 4), rng)

    def test_mean_axis(self, rng):
        check_gradient(lambda t: (t.mean(axis=0) ** 2.0).sum(), (4, 2), rng)

    def test_var(self, rng):
        check_gradient(lambda t: t.var(axis=1).sum(), (3, 5), rng)

    def test_max(self, rng):
        check_gradient(lambda t: t.max(axis=1).sum(), (3, 5), rng)

    def test_relu(self, rng):
        # Shift away from zero to avoid kink in finite differences.
        check_gradient(lambda t: (t + 0.3).relu().sum(), (7,), rng)

    def test_tanh(self, rng):
        check_gradient(lambda t: t.tanh().sum(), (6,), rng)

    def test_sigmoid(self, rng):
        check_gradient(lambda t: t.sigmoid().sum(), (6,), rng)

    def test_exp_log(self, rng):
        check_gradient(lambda t: ((t * t + 1.0).log() + t.exp()).sum(), (5,), rng)

    def test_softplus(self, rng):
        check_gradient(lambda t: t.softplus().sum(), (6,), rng)

    def test_abs(self, rng):
        check_gradient(lambda t: (t + 0.5).abs().sum(), (6,), rng)

    def test_reshape_transpose(self, rng):
        check_gradient(lambda t: (t.reshape(6, 2).T ** 2.0).sum(), (3, 4), rng)

    def test_getitem(self, rng):
        check_gradient(lambda t: (t[1:, :2] ** 2.0).sum(), (4, 3), rng)

    def test_concatenate(self, rng):
        x = rng.standard_normal((2, 3))

        def fn(t):
            return (concatenate([t, Tensor(x)], axis=0) ** 2.0).sum()

        check_gradient(fn, (2, 3), rng)

    def test_stack(self, rng):
        def fn(t):
            return (stack([t, t * 2.0], axis=0) ** 2.0).sum()

        check_gradient(fn, (3,), rng)

    def test_where(self, rng):
        cond = np.array([True, False, True, False])

        def fn(t):
            return (where(cond, t, t * 3.0)).sum()

        check_gradient(fn, (4,), rng)

    def test_gather_rows(self, rng):
        idx = np.array([0, 2, 2, 1])

        def fn(t):
            return (gather_rows(t, idx) ** 2.0).sum()

        check_gradient(fn, (3, 4), rng)

    def test_scatter_add_rows(self, rng):
        idx = np.array([0, 1, 0, 2, 1])

        def fn(t):
            return (scatter_add_rows(t, idx, 3) ** 2.0).sum()

        check_gradient(fn, (5, 2), rng)

    def test_reuse_accumulates(self, rng):
        """A tensor used twice must receive the sum of both paths."""
        x = rng.standard_normal((3,))
        t = Tensor(x.copy(), requires_grad=True)
        out = (t * t + t * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, 2 * x + 3.0)

    def test_diamond_graph(self, rng):
        """Gradient through a diamond-shaped graph is correct."""
        x = rng.standard_normal((4,))
        t = Tensor(x.copy(), requires_grad=True)
        a = t * 2.0
        b = t + 1.0
        out = (a * b).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, 2 * (x + 1.0) + 2 * x)

    def test_deep_chain(self, rng):
        t = Tensor(rng.standard_normal((3,)), requires_grad=True)
        y = t
        for _ in range(50):
            y = y * 1.01
        y.sum().backward()
        np.testing.assert_allclose(t.grad, np.full(3, 1.01 ** 50), rtol=1e-10)

    def test_clip(self, rng):
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        t = Tensor(x.copy(), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0, 0.0])
