"""Tests for holdout-based checkpoint selection."""

import numpy as np
import pytest

from repro.nn import Linear, Tensor
from repro.train.selection import CheckpointKeeper, HoldoutSelector


class FakeDesign:
    """Minimal stand-in exposing the attributes the selector reads."""

    def __init__(self, name, node, n):
        self.name = name
        self.node = node
        self.num_endpoints = n
        self.labels = np.linspace(0.1, 1.0, n)


class TestHoldoutSelector:
    def test_splits_only_target_node(self):
        designs = [FakeDesign("a", "7nm", 40),
                   FakeDesign("b", "130nm", 40)]
        sel = HoldoutSelector(designs, fraction=0.25, seed=0)
        assert sel.training_pool(designs[0]) is not None
        assert sel.training_pool(designs[1]) is None
        assert [d.name for d in sel.val_designs] == ["a"]

    def test_pools_partition_endpoints(self):
        design = FakeDesign("a", "7nm", 40)
        sel = HoldoutSelector([design], fraction=0.25, seed=0)
        train = set(sel.training_pool(design).tolist())
        val = set(sel.validation_pool(design).tolist())
        assert train | val == set(range(40))
        assert not train & val
        assert len(val) == 10

    def test_tiny_designs_not_split(self):
        design = FakeDesign("a", "7nm", 3)
        sel = HoldoutSelector([design], fraction=0.25, seed=0)
        assert len(sel.training_pool(design)) == 3
        assert sel.val_designs == []

    def test_same_seed_same_split(self):
        design = FakeDesign("a", "7nm", 30)
        a = HoldoutSelector([design], fraction=0.2, seed=5)
        b = HoldoutSelector([design], fraction=0.2, seed=5)
        np.testing.assert_array_equal(a.validation_pool(design),
                                      b.validation_pool(design))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            HoldoutSelector([], fraction=0.0)
        with pytest.raises(ValueError):
            HoldoutSelector([], fraction=1.0)

    def test_validate_scores_perfect_predictor(self):
        design = FakeDesign("a", "7nm", 20)
        sel = HoldoutSelector([design], fraction=0.3, seed=0)

        def perfect(d, idx):
            return d.labels[idx]

        assert sel.validate(perfect) == pytest.approx(1.0)

    def test_validate_scores_mean_predictor_below_perfect(self):
        design = FakeDesign("a", "7nm", 20)
        sel = HoldoutSelector([design], fraction=0.3, seed=0)

        def mean_pred(d, idx):
            return np.full(len(idx), d.labels.mean())

        assert sel.validate(mean_pred) < 1.0


class TestCheckpointKeeper:
    def test_keeps_best_and_restores(self):
        rng = np.random.default_rng(0)
        model = Linear(3, 1, rng)
        keeper = CheckpointKeeper(model)
        assert keeper.offer(0.5)
        best_weights = model.weight.data.copy()
        model.weight.data += 1.0
        assert not keeper.offer(0.2)  # worse score: snapshot unchanged
        assert keeper.offer(0.9)      # better: new snapshot of +1 weights
        model.weight.data += 5.0
        keeper.restore()
        np.testing.assert_allclose(model.weight.data, best_weights + 1.0)

    def test_restore_without_offer_is_noop(self):
        model = Linear(2, 1, np.random.default_rng(0))
        before = model.weight.data.copy()
        CheckpointKeeper(model).restore()
        np.testing.assert_allclose(model.weight.data, before)
