"""Data-parallel trainer: sharding, lockstep exactness, kill/resume.

The contract under test (DESIGN.md §14): the parent draws every RNG
stream in global order and workers are pure functions of
(weights, subsets, noise), so a ``workers=1`` run is *bit-for-bit* the
single-process run, checkpoints capture only parent state (any worker
count resumes any checkpoint), and an interrupted parallel run resumed
at a different worker count reproduces the uninterrupted loss stream
exactly.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.model import TimingPredictor
from repro.nn.flat import (flat_size, read_grads, read_params,
                           write_grads, write_params)
from repro.techlib import make_asap7_library, make_sky130_library
from repro.train import (
    OursTrainer,
    ParallelTrainer,
    TrainConfig,
    load_checkpoint,
    partition_counts,
    resolve_worker_count,
    slice_ranges,
)

BASE = TrainConfig(steps=6, lr=3e-3, batch_endpoints=24, seed=0,
                   gamma1=1.0, gamma2=30.0, holdout_fraction=0.0)

#: Parallel-execution telemetry and wall-clock noise — excluded when
#: comparing loss streams across worker counts.
_NON_LOSS = ("step_seconds", "workers", "shard_seconds_max",
             "shard_seconds_mean")


@pytest.fixture(scope="module")
def designs():
    """Two source + two target designs, so two shards are possible."""
    libraries = {"130nm": make_sky130_library(),
                 "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    out = [
        run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("chacha", "7nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("spiMaster", "130nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("linkruncca", "130nm", libraries, vocab=vocab,
                 resolution=16),
    ]
    normalize_features([d.graph for d in out])
    return out


@pytest.fixture(scope="module")
def in_features(designs):
    return designs[0].graph.features.shape[1]


def _make(cls, designs, in_features, *, config=None, **kwargs):
    config = config or BASE
    model = TimingPredictor(in_features, seed=config.seed)
    return cls(model, designs, config, **kwargs)


def _loss_keys(history):
    return [{k: v for k, v in record.items() if k not in _NON_LOSS}
            for record in history]


def _weights_equal(a, b):
    state_a, state_b = a.state_dict(), b.state_dict()
    assert state_a.keys() == state_b.keys()
    return all(np.array_equal(state_a[k], state_b[k]) for k in state_a)


class TestPartitioning:
    def test_even_and_uneven_counts(self):
        assert partition_counts(10, 2) == [5, 5]
        assert partition_counts(10, 3) == [4, 3, 3]
        assert partition_counts(7, 4) == [2, 2, 2, 1]

    def test_one_design(self):
        assert partition_counts(1, 1) == [1]

    def test_fewer_designs_than_workers(self):
        counts = partition_counts(2, 4)
        assert counts == [1, 1, 0, 0]
        assert sum(counts) == 2

    def test_empty_list(self):
        assert partition_counts(0, 3) == [0, 0, 0]

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            partition_counts(4, 0)
        with pytest.raises(ValueError):
            partition_counts(-1, 2)

    def test_matches_array_split(self):
        for total in range(9):
            for parts in range(1, 5):
                counts = partition_counts(total, parts)
                expected = [len(c) for c in
                            np.array_split(np.arange(total), parts)]
                assert counts == expected

    def test_slice_ranges_over_partition(self):
        counts = partition_counts(7, 3)
        ranges = slice_ranges(counts)
        assert ranges == [(0, 3), (3, 5), (5, 7)]
        # Contiguous, ordered, complete cover.
        assert ranges[0][0] == 0 and ranges[-1][1] == 7
        assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))


class TestResolveWorkerCount:
    def test_rejects_below_one(self):
        for bad in (0, -1):
            with pytest.raises(ValueError):
                resolve_worker_count(bad, n_source=2, n_target=2)

    def test_passthrough_when_feasible(self):
        count, notes = resolve_worker_count(2, n_source=4, n_target=4,
                                            cpu_count=8)
        assert count == 2 and notes == []

    def test_clamps_to_cpu_count(self):
        count, notes = resolve_worker_count(8, n_source=8, n_target=8,
                                            cpu_count=2)
        assert count == 2
        assert any("CPU" in note for note in notes)

    def test_clamps_to_usable_shards(self):
        count, notes = resolve_worker_count(4, n_source=2, n_target=3,
                                            cpu_count=16)
        assert count == 2
        assert any("usable" in note for note in notes)


class TestFlatTransport:
    def test_param_round_trip_preserves_identity(self, in_features):
        model = TimingPredictor(in_features, seed=0)
        params = model.parameters()
        flat = np.empty(flat_size(params))
        write_params(params, flat)
        before = [p.data for p in params]
        read_params(params, flat)
        assert all(p.data is arr for p, arr in zip(params, before))
        flat2 = np.empty_like(flat)
        write_params(params, flat2)
        assert np.array_equal(flat, flat2)

    def test_grad_round_trip_restores_none_structure(self, in_features):
        model = TimingPredictor(in_features, seed=0)
        params = model.parameters()
        rng = np.random.default_rng(1)
        for i, p in enumerate(params):
            p.grad = None if i % 3 == 0 \
                else rng.normal(size=p.data.shape)
        originals = [None if p.grad is None else p.grad.copy()
                     for p in params]
        flat = np.empty(flat_size(params))
        mask = write_grads(params, flat)
        assert mask == [p is not None for p in originals]
        read_grads(params, flat, mask)
        for p, orig in zip(params, originals):
            if orig is None:
                assert p.grad is None
            else:
                assert np.array_equal(p.grad, orig)

    def test_length_mismatch_rejected(self, in_features):
        model = TimingPredictor(in_features, seed=0)
        params = model.parameters()
        with pytest.raises(ValueError):
            write_params(params, np.empty(3))


class TestConstruction:
    def test_rejects_zero_workers(self, designs, in_features):
        with pytest.raises(ValueError):
            _make(ParallelTrainer, designs, in_features, workers=0)

    def test_clamps_to_usable_shards(self, designs, in_features):
        trainer = _make(ParallelTrainer, designs, in_features, workers=5)
        assert trainer.workers == 2  # min(2 source, 2 target)

    def test_shards_cover_all_designs_contiguously(self, designs,
                                                   in_features):
        trainer = _make(ParallelTrainer, designs, in_features, workers=2)
        flat = [g for shard in trainer._shard_indices for g in shard]
        assert sorted(flat) == list(range(len(designs)))
        for shard in trainer._shard_indices:
            assert shard  # no idle worker after clamping


class TestLockstep:
    def test_one_worker_is_bitwise_single_process(self, designs,
                                                  in_features):
        single = _make(OursTrainer, designs, in_features)
        parallel = _make(ParallelTrainer, designs, in_features, workers=1)
        try:
            h_single = [single.step(warmup=t < 2) for t in range(4)]
            h_parallel = [parallel.step(warmup=t < 2) for t in range(4)]
        finally:
            parallel.shutdown()
        assert _loss_keys(h_parallel) == _loss_keys(h_single)
        assert _weights_equal(parallel.model, single.model)

    def test_two_workers_run_and_report(self, designs, in_features):
        trainer = _make(ParallelTrainer, designs, in_features, workers=2)
        try:
            records = [trainer.step(warmup=t < 1) for t in range(2)]
        finally:
            trainer.shutdown()
        for record in records:
            assert record["workers"] == 2
            assert np.isfinite(record["total"])
            assert record["shard_seconds_max"] >= \
                record["shard_seconds_mean"] > 0.0

    def test_rng_streams_match_across_worker_counts(self, designs,
                                                    in_features):
        """Subsets and noise are parent-drawn in global order: the
        streams consumed must be identical for any worker count."""
        w1 = _make(ParallelTrainer, designs, in_features, workers=1)
        w2 = _make(ParallelTrainer, designs, in_features, workers=2)
        subs1, subs2 = w1._sample_subsets(), w2._sample_subsets()
        assert all(np.array_equal(a, b) for a, b in zip(subs1, subs2))
        n1, n2 = w1._noise_inputs(subs1), w2._noise_inputs(subs2)
        assert n1.keys() == n2.keys()
        assert all(np.array_equal(n1[k], n2[k]) for k in n1)


class TestCheckpointing:
    def test_checkpoint_records_worker_count(self, designs, in_features,
                                             tmp_path):
        trainer = _make(ParallelTrainer, designs, in_features, workers=2)
        path = tmp_path / "ckpt.npz"
        try:
            trainer.step(warmup=True)
            trainer.save_checkpoint(step=1, path=path)
        finally:
            trainer.shutdown()
        ckpt = load_checkpoint(path)
        assert ckpt.extra["workers"] == 2
        assert ckpt.extra["nodes"] == ["130nm", "7nm"]

    def test_single_process_checkpoint_has_empty_extra(self, designs,
                                                       in_features,
                                                       tmp_path):
        trainer = _make(OursTrainer, designs, in_features)
        path = tmp_path / "ckpt.npz"
        trainer.step(warmup=True)
        trainer.save_checkpoint(step=1, path=path)
        extra = load_checkpoint(path).extra
        assert "workers" not in extra
        assert extra["nodes"] == ["130nm", "7nm"]
        assert extra["target_node"] == "7nm"

    def test_kill_and_resume_reproduces_loss_stream(self, designs,
                                                    in_features,
                                                    tmp_path):
        """SIGTERM-style stop mid-fit, then resume at the same worker
        count: the full stream and the final weights must be bit-for-bit
        the uninterrupted run's.  (Resuming at a different count is
        accepted too, but for N > 1 the sharded objective depends on N,
        so only the RNG streams — not the numbers — carry over.)"""
        config = replace(BASE, steps=5)
        reference = _make(ParallelTrainer, designs, in_features,
                          config=config, workers=2)
        h_ref = reference.fit()

        ckpt = tmp_path / "interrupted.npz"
        interrupted = _make(ParallelTrainer, designs, in_features,
                            config=config, workers=2,
                            checkpoint_path=ckpt)
        inner_step = interrupted.step
        done = {"n": 0}

        def stepper(warmup=False):
            record = inner_step(warmup)
            done["n"] += 1
            if done["n"] == 2:  # the graceful-stop path SIGTERM takes
                interrupted.request_stop()
            return record

        interrupted.step = stepper
        head = interrupted.fit()
        assert interrupted.interrupted and len(head) == 2
        assert ckpt.is_file()

        resumed = _make(ParallelTrainer, designs, in_features,
                        config=config, workers=2, checkpoint_path=ckpt)
        resumed.load_checkpoint(ckpt)
        # fit() returns the restored head plus the newly run tail.
        full = resumed.fit()
        assert _loss_keys(full[:2]) == _loss_keys(head)
        assert _loss_keys(full) == _loss_keys(h_ref)
        assert _weights_equal(resumed.model, reference.model)

    def test_cross_count_resume_is_accepted(self, designs, in_features,
                                            tmp_path):
        """A checkpoint does not bind the worker count: a parallel
        checkpoint loads into any fleet size (here 2 -> 1) and training
        continues — the N = 1 continuation is exactly the
        single-process continuation."""
        config = replace(BASE, steps=4)
        ckpt = tmp_path / "w2.npz"
        origin = _make(ParallelTrainer, designs, in_features,
                       config=config, workers=2, checkpoint_path=ckpt)
        try:
            origin.step(warmup=True)
            origin.step(warmup=True)
            origin.save_checkpoint(step=2)
        finally:
            origin.shutdown()

        single = _make(OursTrainer, designs, in_features, config=config)
        single.load_checkpoint(ckpt)
        parallel = _make(ParallelTrainer, designs, in_features,
                         config=config, workers=1)
        parallel.load_checkpoint(ckpt)
        try:
            rec_s = single.step()
            rec_p = parallel.step()
        finally:
            parallel.shutdown()
        assert _loss_keys([rec_p]) == _loss_keys([rec_s])
