"""Crash-safe checkpointing: round-trips, resume determinism, kill-mid-save."""

import json
import os
from dataclasses import replace

import numpy as np
import pytest

from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.infer import weight_digest
from repro.model import TimingPredictor
from repro.nn import CheckpointError
from repro.techlib import make_asap7_library, make_sky130_library
from repro.train import (
    CHECKPOINT_NAME,
    OursTrainer,
    TrainConfig,
    load_checkpoint,
)
from repro.train.checkpoint import capture_rng, restore_rng

FAST = TrainConfig(steps=8, lr=3e-3, batch_endpoints=24, seed=0,
                   gamma1=1.0, gamma2=30.0, eval_every=3)


@pytest.fixture(scope="module")
def tiny_designs():
    libraries = {"130nm": make_sky130_library(), "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    designs = [
        run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("spiMaster", "130nm", libraries, vocab=vocab,
                 resolution=16),
    ]
    normalize_features([d.graph for d in designs])
    return designs


@pytest.fixture(scope="module")
def in_features(tiny_designs):
    return tiny_designs[0].graph.features.shape[1]


def make_trainer(designs, in_features, config=FAST, **kwargs):
    model = TimingPredictor(in_features, seed=config.seed)
    return OursTrainer(model, designs, config, **kwargs)


def history_key(history):
    """Step records minus wall-clock noise, for bit-for-bit comparison."""
    return [{k: v for k, v in record.items() if k != "step_seconds"}
            for record in history]


def interfere_after(trainer, k, action):
    """Run ``action(trainer)`` once ``k`` steps have completed."""
    original = trainer.step
    calls = {"n": 0}

    def wrapped(warmup=False):
        record = original(warmup=warmup)
        calls["n"] += 1
        if calls["n"] == k:
            action(trainer)
        return record

    trainer.step = wrapped


class TestRngRoundTrip:
    def test_restored_generator_continues_same_stream(self):
        rng = np.random.default_rng(123)
        rng.standard_normal(17)  # advance past the seed state
        state = capture_rng(rng)
        expected = rng.standard_normal(32)
        fresh = np.random.default_rng(0)
        restore_rng(fresh, state)
        np.testing.assert_array_equal(fresh.standard_normal(32), expected)

    def test_state_survives_json(self):
        rng = np.random.default_rng(9)
        rng.integers(0, 1000, size=5)
        state = json.loads(json.dumps(capture_rng(rng)))
        expected = rng.integers(0, 1 << 40, size=8)
        fresh = np.random.default_rng(1)
        restore_rng(fresh, state)
        np.testing.assert_array_equal(
            fresh.integers(0, 1 << 40, size=8), expected)


def _rewrite_archive(path, mutate):
    """Load an npz, apply ``mutate(staged_dict)``, write it back."""
    with np.load(path, allow_pickle=False) as archive:
        staged = {k: archive[k] for k in archive.files}
    mutate(staged)
    np.savez(path, **staged)


class TestCheckpointArchive:
    def test_round_trip(self, tiny_designs, in_features, tmp_path):
        trainer = make_trainer(tiny_designs, in_features)
        path = tmp_path / CHECKPOINT_NAME
        trainer.save_checkpoint(step=0, path=path)
        ckpt = load_checkpoint(path)
        assert ckpt.step == 0
        assert ckpt.config["steps"] == FAST.steps
        assert ckpt.config["seed"] == FAST.seed
        from repro.infer.cache import named_tensors
        tensors = dict(named_tensors(trainer.model))
        assert set(ckpt.params) == set(tensors)
        for name, value in ckpt.params.items():
            np.testing.assert_array_equal(value, tensors[name].data)
        assert ckpt.optimizer["kind"] == "Adam"
        assert ckpt.holdout is not None  # default config has a holdout

    def test_missing_key_is_named(self, tiny_designs, in_features,
                                  tmp_path):
        trainer = make_trainer(tiny_designs, in_features)
        path = tmp_path / CHECKPOINT_NAME
        trainer.save_checkpoint(step=0, path=path)

        def drop_opt_buffer(staged):
            meta = json.loads(str(staged["meta"]))
            i = meta["optimizer"]["lists"]["m"]["present"][0]
            del staged[f"opt::m::{i}"]

        _rewrite_archive(path, drop_opt_buffer)
        with pytest.raises(CheckpointError, match="missing key 'opt::m::"):
            load_checkpoint(path)

    def test_corrupt_archive_raises_typed_error(self, tmp_path):
        path = tmp_path / CHECKPOINT_NAME
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_version_mismatch_rejected(self, tiny_designs, in_features,
                                       tmp_path):
        trainer = make_trainer(tiny_designs, in_features)
        path = tmp_path / CHECKPOINT_NAME
        trainer.save_checkpoint(step=0, path=path)

        def bump_version(staged):
            meta = json.loads(str(staged["meta"]))
            meta["format_version"] = 999
            staged["meta"] = np.array(json.dumps(meta))

        _rewrite_archive(path, bump_version)
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)


class TestTrainerValidation:
    def test_config_mismatch_rejected(self, tiny_designs, in_features,
                                      tmp_path):
        trainer = make_trainer(tiny_designs, in_features)
        path = tmp_path / CHECKPOINT_NAME
        trainer.save_checkpoint(step=0, path=path)
        other = make_trainer(tiny_designs, in_features,
                             config=replace(FAST, lr=1e-4))
        with pytest.raises(CheckpointError, match="lr"):
            other.load_checkpoint(path)

    def test_checkpoint_every_may_differ(self, tiny_designs, in_features,
                                         tmp_path):
        trainer = make_trainer(tiny_designs, in_features)
        path = tmp_path / CHECKPOINT_NAME
        trainer.save_checkpoint(step=0, path=path)
        other = make_trainer(tiny_designs, in_features,
                             config=replace(FAST, checkpoint_every=3))
        other.load_checkpoint(path)  # must not raise
        assert other._start_step == 0

    def test_failed_load_leaves_trainer_untouched(self, tiny_designs,
                                                  in_features, tmp_path):
        trainer = make_trainer(tiny_designs, in_features)
        path = tmp_path / CHECKPOINT_NAME
        trainer.save_checkpoint(step=0, path=path)
        other = make_trainer(tiny_designs, in_features,
                             config=replace(FAST, lr=1e-4))
        before = weight_digest(other.model)
        rng_before = capture_rng(other.rng)
        with pytest.raises(CheckpointError):
            other.load_checkpoint(path)
        assert weight_digest(other.model) == before
        assert capture_rng(other.rng) == rng_before


class TestResumeDeterminism:
    def test_interrupt_resume_matches_uninterrupted(self, tiny_designs,
                                                    in_features, tmp_path):
        """Stop at step 4, resume in a fresh trainer: the final weights
        and the full loss stream must match the uninterrupted run
        bit-for-bit."""
        baseline = make_trainer(tiny_designs, in_features)
        baseline.fit()
        want_digest = weight_digest(baseline.model)
        want_history = history_key(baseline.history)

        path = tmp_path / CHECKPOINT_NAME
        victim = make_trainer(tiny_designs, in_features,
                              checkpoint_path=path)
        interfere_after(victim, 4, lambda tr: tr.request_stop())
        victim.fit()
        assert victim.interrupted
        assert path.is_file()
        assert len(victim.history) == 4

        resumed = make_trainer(tiny_designs, in_features,
                               checkpoint_path=path)
        ckpt = resumed.load_checkpoint(path)
        assert ckpt.step == 4
        resumed.fit()
        assert not resumed.interrupted
        assert weight_digest(resumed.model) == want_digest
        assert history_key(resumed.history) == want_history
        assert resumed.final_weights_source == baseline.final_weights_source

    def test_resume_with_swa_matches(self, tiny_designs, in_features,
                                     tmp_path):
        """SWA accumulators are part of the checkpoint: interrupting
        inside the averaging window must not change the averaged
        weights."""
        config = replace(FAST, holdout_fraction=0.0, swa_fraction=0.5)
        baseline = make_trainer(tiny_designs, in_features, config=config)
        baseline.fit()
        assert baseline.final_weights_source == "swa"
        want = weight_digest(baseline.model)

        path = tmp_path / CHECKPOINT_NAME
        victim = make_trainer(tiny_designs, in_features, config=config,
                              checkpoint_path=path)
        interfere_after(victim, 6, lambda tr: tr.request_stop())
        victim.fit()  # stops inside the SWA tail (steps 4..7)
        assert victim.interrupted

        resumed = make_trainer(tiny_designs, in_features, config=config,
                               checkpoint_path=path)
        resumed.load_checkpoint(path)
        resumed.fit()
        assert weight_digest(resumed.model) == want
        assert resumed.final_weights_source == "swa"

    def test_hard_kill_resumes_from_periodic_checkpoint(
            self, tiny_designs, in_features, tmp_path):
        """A crash (no graceful stop) between periodic checkpoints loses
        at most ``checkpoint_every - 1`` steps; resuming from the last
        periodic checkpoint still reproduces the uninterrupted run."""
        baseline = make_trainer(tiny_designs, in_features)
        baseline.fit()
        want = weight_digest(baseline.model)

        class SimulatedCrash(RuntimeError):
            pass

        def crash(trainer):
            raise SimulatedCrash("killed without warning")

        config = replace(FAST, checkpoint_every=3)
        path = tmp_path / CHECKPOINT_NAME
        victim = make_trainer(tiny_designs, in_features, config=config,
                              checkpoint_path=path)
        interfere_after(victim, 5, crash)
        with pytest.raises(SimulatedCrash):
            victim.fit()
        ckpt = load_checkpoint(path)
        assert ckpt.step == 3  # the last periodic checkpoint

        resumed = make_trainer(tiny_designs, in_features, config=config,
                               checkpoint_path=path)
        resumed.load_checkpoint(path)
        resumed.fit()
        assert weight_digest(resumed.model) == want
        assert history_key(resumed.history) == \
            history_key(baseline.history)


class TestKillMidSave:
    def test_crash_during_replace_leaves_previous_checkpoint(
            self, tiny_designs, in_features, tmp_path, monkeypatch):
        """A kill at the worst moment (inside the final rename) must
        neither corrupt the existing checkpoint nor leave temp litter."""
        trainer = make_trainer(tiny_designs, in_features)
        path = tmp_path / CHECKPOINT_NAME
        trainer.save_checkpoint(step=2, path=path)
        before = path.read_bytes()

        def dying_replace(src, dst):
            raise OSError("simulated kill during rename")

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(OSError, match="simulated kill"):
            trainer.save_checkpoint(step=5, path=path)
        monkeypatch.undo()

        assert path.read_bytes() == before  # old checkpoint untouched
        assert load_checkpoint(path).step == 2
        assert [p for p in tmp_path.iterdir() if p != path] == []

    def test_fresh_save_crash_leaves_nothing(self, tiny_designs,
                                             in_features, tmp_path,
                                             monkeypatch):
        trainer = make_trainer(tiny_designs, in_features)
        path = tmp_path / "sub" / CHECKPOINT_NAME

        def dying_replace(src, dst):
            raise OSError("simulated kill during rename")

        monkeypatch.setattr(os, "replace", dying_replace)
        with pytest.raises(OSError):
            trainer.save_checkpoint(step=1, path=path)
        monkeypatch.undo()
        assert not path.exists()
        assert list(path.parent.iterdir()) == []
