"""Tests for the trainer and the baseline strategies (tiny, fast runs)."""

import numpy as np
import pytest

from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.model import TimingPredictor
from repro.techlib import make_asap7_library, make_sky130_library
from repro.train import (
    OursTrainer,
    TrainConfig,
    evaluate_per_design,
    measure_inference_runtime,
    predict_head_for_node,
    sample_endpoints,
    split_by_node,
    train_adv_only,
    train_ours,
    train_param_share,
    train_pt_ft,
    train_simple_merge,
)

FAST = TrainConfig(steps=6, lr=3e-3, batch_endpoints=24, seed=0,
                   gamma1=1.0, gamma2=30.0)


@pytest.fixture(scope="module")
def tiny_designs():
    libraries = {"130nm": make_sky130_library(), "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    designs = [
        run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("spiMaster", "130nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("linkruncca", "130nm", libraries, vocab=vocab,
                 resolution=16),
    ]
    normalize_features([d.graph for d in designs])
    return designs


@pytest.fixture(scope="module")
def in_features(tiny_designs):
    return tiny_designs[0].graph.features.shape[1]


class TestBatching:
    def test_sample_endpoints_respects_budget(self, tiny_designs):
        rng = np.random.default_rng(0)
        d = tiny_designs[0]
        subset = sample_endpoints(d, 4, rng)
        assert len(subset) == min(4, d.num_endpoints)
        assert len(set(subset.tolist())) == len(subset)

    def test_sample_all_when_small(self, tiny_designs):
        rng = np.random.default_rng(0)
        d = tiny_designs[0]
        subset = sample_endpoints(d, 10_000, rng)
        np.testing.assert_array_equal(subset,
                                      np.arange(d.num_endpoints))

    def test_split_by_node(self, tiny_designs):
        source, target = split_by_node(tiny_designs)
        assert [d.node for d in source] == ["130nm", "130nm"]
        assert [d.node for d in target] == ["7nm"]


class TestOursTrainer:
    def test_loss_decreases(self, tiny_designs, in_features):
        # warmup_fraction=0 keeps the loss definition constant across the
        # run so early/late totals are comparable.
        model = TimingPredictor(in_features, seed=0)
        trainer = OursTrainer(model, tiny_designs,
                              TrainConfig(**{**FAST.__dict__, "steps": 12,
                                             "warmup_fraction": 0.0}))
        history = trainer.fit()
        first = np.mean([h["total"] for h in history[:3]])
        last = np.mean([h["total"] for h in history[-3:]])
        assert last < first

    def test_history_keys(self, tiny_designs, in_features):
        model = TimingPredictor(in_features, seed=0)
        trainer = OursTrainer(model, tiny_designs, FAST)
        history = trainer.fit(steps=2)
        assert {"total", "elbo", "contrastive", "cmd"} <= set(history[0])

    def test_priors_finalized_after_fit(self, tiny_designs, in_features):
        model = TimingPredictor(in_features, seed=0)
        OursTrainer(model, tiny_designs, FAST).fit(steps=2)
        pred = model.predict(tiny_designs[0])
        assert pred.shape == (tiny_designs[0].num_endpoints,)
        assert np.isfinite(pred).all()

    def test_single_node_rejected(self, tiny_designs, in_features):
        model = TimingPredictor(in_features, seed=0)
        with pytest.raises(ValueError):
            OursTrainer(model, tiny_designs[:1], FAST)

    def test_node_obs_var_computed(self, tiny_designs, in_features):
        model = TimingPredictor(in_features, seed=0)
        trainer = OursTrainer(model, tiny_designs, FAST)
        assert trainer.node_obs_var["130nm"] > trainer.node_obs_var["7nm"]

    def test_train_ours_ablation_flags(self, tiny_designs, in_features):
        full = train_ours(tiny_designs, in_features, FAST)
        da_only = train_ours(tiny_designs, in_features, FAST,
                             use_bayesian=False)
        bayes_only = train_ours(tiny_designs, in_features, FAST,
                                use_disentangle_align=False)
        for model in (full, da_only, bayes_only):
            pred = model.predict(tiny_designs[0])
            assert np.isfinite(pred).all()
        # The Bayesian-off variant has a pinned near-zero weight variance.
        _, log_var = da_only.readout.weight_distribution(
            __import__("repro.nn", fromlist=["Tensor"]).Tensor(
                np.zeros((1, da_only.feature_size)))
        )
        assert log_var.data.max() < -8.0


class TestFinalWeights:
    """Regressions for the SWA / checkpoint-selection interaction.

    Historically ``swa_fraction`` defaulted to 1.0 (SWA never ran) and,
    when lowered, ``keeper.restore()`` ran *after* the SWA write-back and
    silently discarded the average.  The two mechanisms are now mutually
    exclusive and the chosen path is recorded.
    """

    def test_post_init_rejects_bad_swa_fraction(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                TrainConfig(swa_fraction=bad)

    def test_swa_and_selection_mutually_exclusive(self, tiny_designs,
                                                  in_features):
        config = TrainConfig(**{**FAST.__dict__, "swa_fraction": 0.5})
        assert 0.0 < config.holdout_fraction < 1.0  # selection active
        model = TimingPredictor(in_features, seed=0)
        with pytest.raises(ValueError, match="mutually"):
            OursTrainer(model, tiny_designs, config)

    def test_swa_runs_and_is_kept(self, tiny_designs, in_features):
        config = TrainConfig(**{**FAST.__dict__, "swa_fraction": 0.5,
                                "holdout_fraction": 0.0})
        model = TimingPredictor(in_features, seed=0)
        trainer = OursTrainer(model, tiny_designs, config)
        trainer.fit()
        assert trainer.final_weights_source == "swa"
        assert np.isfinite(model.predict(tiny_designs[0])).all()

    def test_selection_path_reported(self, tiny_designs, in_features):
        model = TimingPredictor(in_features, seed=0)
        trainer = OursTrainer(model, tiny_designs, FAST)
        trainer.fit(steps=2)
        assert trainer.final_weights_source in ("best-checkpoint",
                                                "final-iterate")

    def test_no_swa_no_selection_keeps_final_iterate(self, tiny_designs,
                                                     in_features):
        config = TrainConfig(**{**FAST.__dict__, "holdout_fraction": 0.0})
        model = TimingPredictor(in_features, seed=0)
        trainer = OursTrainer(model, tiny_designs, config)
        trainer.fit(steps=2)
        assert trainer.final_weights_source == "final-iterate"

    def test_step_records_lr_and_grad_norm(self, tiny_designs,
                                           in_features):
        model = TimingPredictor(in_features, seed=0)
        trainer = OursTrainer(model, tiny_designs, FAST)
        history = trainer.fit(steps=2)
        record = history[0]
        assert {"lr", "grad_norm", "grad_norm_clipped", "warmup",
                "step_seconds"} <= set(record)
        assert record["grad_norm_clipped"] <= FAST.grad_clip + 1e-12
        assert record["grad_norm_clipped"] <= record["grad_norm"] + 1e-12


class TestBaselineStrategies:
    def test_adv_only_trains_on_target_only(self, tiny_designs, in_features):
        model = train_adv_only(tiny_designs, in_features, FAST)
        pred = model.predict(tiny_designs[0])
        assert np.isfinite(pred).all()

    def test_adv_only_requires_target(self, tiny_designs, in_features):
        with pytest.raises(ValueError):
            train_adv_only(tiny_designs[1:], in_features, FAST)

    def test_simple_merge(self, tiny_designs, in_features):
        model = train_simple_merge(tiny_designs, in_features, FAST)
        assert len(model.heads) == 1

    def test_param_share_two_heads(self, tiny_designs, in_features):
        model = train_param_share(tiny_designs, in_features, FAST)
        assert len(model.heads) == 2
        p7 = predict_head_for_node(model, tiny_designs[0])
        p130 = predict_head_for_node(model, tiny_designs[1])
        assert np.isfinite(p7).all() and np.isfinite(p130).all()

    def test_pt_ft_requires_both_nodes(self, tiny_designs, in_features):
        with pytest.raises(ValueError):
            train_pt_ft(tiny_designs[:1], in_features, FAST)

    def test_pt_ft_improves_on_target(self, tiny_designs, in_features):
        """Finetuning moves predictions toward the 7nm scale."""
        from repro.nn import functional as F
        from repro.nn import Tensor

        model = train_pt_ft(tiny_designs, in_features, FAST)
        target = tiny_designs[0]
        pred = model.predict(target)
        # After finetuning, predictions live on the 7nm scale, not 130nm.
        assert abs(pred.mean() - target.labels.mean()) \
            < abs(pred.mean() - tiny_designs[1].labels.mean())

    def test_training_reduces_mse(self, tiny_designs, in_features):
        from repro.train.strategies import _run_loop
        from repro.model import DAC23Model

        model = DAC23Model(in_features, seed=0)
        rng = np.random.default_rng(0)
        losses = _run_loop(model, tiny_designs[:1], 15, FAST,
                           lambda d: 0, rng)
        assert np.mean(losses[-3:]) < np.mean(losses[:3])


class TestEvaluationHelpers:
    def test_evaluate_per_design(self, tiny_designs, in_features):
        model = train_adv_only(tiny_designs, in_features, FAST)
        results = evaluate_per_design(model.predict, tiny_designs[:1])
        assert set(results) == {"usbf_device"}
        assert {"r2", "mae", "rmse"} <= set(results["usbf_device"])

    def test_measure_inference_runtime(self, tiny_designs, in_features):
        model = train_adv_only(tiny_designs, in_features, FAST)
        t = measure_inference_runtime(model.predict, tiny_designs[0],
                                      repeats=2)
        assert t > 0


class TestTelemetryIntegration:
    """Trainers stream schema-valid telemetry through a RunLogger."""

    def test_ours_trainer_streams_records(self, tmp_path, tiny_designs,
                                          in_features):
        from repro.obs import RunLogger, load_run, validate_run_dir

        run_dir = tmp_path / "run"
        model = TimingPredictor(in_features, seed=0)
        with RunLogger(run_dir) as logger:
            logger.log_manifest(config=FAST, seeds={"train": FAST.seed})
            trainer = OursTrainer(model, tiny_designs, FAST,
                                  logger=logger)
            trainer.fit(steps=4)
            logger.log_summary(per_design={}, timings={})
        assert validate_run_dir(run_dir) == []
        records = load_run(run_dir)["records"]
        steps = [r for r in records if r["kind"] == "step"]
        assert [r["step"] for r in steps] == [0, 1, 2, 3]
        assert {"total", "elbo", "contrastive", "cmd", "lr",
                "grad_norm", "grad_norm_clipped", "warmup",
                "step_seconds"} <= set(steps[0])
        assert any(r["kind"] == "validation" for r in records)
        (final,) = [r for r in records if r["kind"] == "final_weights"]
        assert final["source"] == trainer.final_weights_source

    def test_pt_ft_streams_both_stages(self, tmp_path, tiny_designs,
                                       in_features):
        from repro.obs import RunLogger, load_run, validate_run_dir

        run_dir = tmp_path / "run"
        config = TrainConfig(**{**FAST.__dict__, "steps": 4})
        with RunLogger(run_dir) as logger:
            logger.log_manifest(config=config, seeds={"train": config.seed})
            train_pt_ft(tiny_designs, in_features, config, logger=logger)
            logger.log_summary(per_design={}, timings={})
        assert validate_run_dir(run_dir) == []
        records = load_run(run_dir)["records"]
        steps = [r for r in records if r["kind"] == "step"]
        stages = [r["stage"] for r in steps]
        assert stages == ["pretrain"] * 4 + ["finetune"] * 2
        # Finetune steps continue the global step counter.
        assert [r["step"] for r in steps] == [0, 1, 2, 3, 4, 5]
        finals = [r for r in records if r["kind"] == "final_weights"]
        assert [f["stage"] for f in finals] == ["pretrain", "finetune"]


class TestSelectionFlag:
    def test_baselines_accept_use_selection(self, tiny_designs,
                                            in_features):
        """The fairness-ablation path trains and predicts fine."""
        for trainer in (train_adv_only, train_simple_merge,
                        train_param_share, train_pt_ft):
            model = trainer(tiny_designs, in_features, FAST,
                            use_selection=True)
            pred = predict_head_for_node(model, tiny_designs[0])
            assert np.isfinite(pred).all()
