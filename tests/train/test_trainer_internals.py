"""White-box tests for the OursTrainer loop mechanics."""

import numpy as np
import pytest

from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.model import TimingPredictor
from repro.techlib import make_asap7_library, make_sky130_library
from repro.train import OursTrainer, TrainConfig


@pytest.fixture(scope="module")
def designs():
    libraries = {"130nm": make_sky130_library(), "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    out = [
        run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("spiMaster", "130nm", libraries, vocab=vocab,
                 resolution=16),
    ]
    normalize_features([d.graph for d in out])
    return out


@pytest.fixture(scope="module")
def in_features(designs):
    return designs[0].graph.features.shape[1]


class TestWarmup:
    def test_warmup_steps_have_zero_alignment_terms(self, designs,
                                                    in_features):
        model = TimingPredictor(in_features, seed=0)
        cfg = TrainConfig(steps=10, warmup_fraction=0.5, seed=0,
                          holdout_fraction=0.0)
        history = OursTrainer(model, designs, cfg).fit()
        for h in history[:5]:
            assert h["total"] == pytest.approx(h["elbo"])
        # After warmup the alignment losses contribute.
        assert history[-1]["total"] != pytest.approx(history[-1]["elbo"])

    def test_zero_warmup(self, designs, in_features):
        model = TimingPredictor(in_features, seed=0)
        cfg = TrainConfig(steps=4, warmup_fraction=0.0, seed=0,
                          holdout_fraction=0.0)
        history = OursTrainer(model, designs, cfg).fit()
        assert history[0]["total"] != pytest.approx(history[0]["elbo"])


class TestLrDecay:
    def test_lr_restored_after_fit(self, designs, in_features):
        model = TimingPredictor(in_features, seed=0)
        cfg = TrainConfig(steps=5, lr=1e-3, seed=0,
                          holdout_fraction=0.0)
        trainer = OursTrainer(model, designs, cfg)
        trainer.fit()
        assert trainer.optimizer.lr == pytest.approx(1e-3)


class TestHoldoutIntegration:
    def test_holdout_excluded_from_training_batches(self, designs,
                                                    in_features):
        model = TimingPredictor(in_features, seed=0)
        cfg = TrainConfig(steps=3, seed=0, holdout_fraction=0.3,
                          batch_endpoints=1000)
        trainer = OursTrainer(model, designs, cfg)
        target = trainer.target[0]
        pool = trainer.selector.training_pool(target)
        val = trainer.selector.validation_pool(target)
        assert len(pool) + len(val) == target.num_endpoints
        trainer.fit()

    def test_disabled_holdout(self, designs, in_features):
        model = TimingPredictor(in_features, seed=0)
        cfg = TrainConfig(steps=2, seed=0, holdout_fraction=0.0)
        trainer = OursTrainer(model, designs, cfg)
        assert trainer.selector is None
        trainer.fit()


class TestNodeObsVar:
    def test_matches_label_variance(self, designs, in_features):
        model = TimingPredictor(in_features, seed=0)
        trainer = OursTrainer(model, designs,
                              TrainConfig(steps=1, seed=0))
        expected_7 = designs[0].labels.var()
        assert trainer.node_obs_var["7nm"] == pytest.approx(expected_7)
        expected_130 = designs[1].labels.var()
        assert trainer.node_obs_var["130nm"] == pytest.approx(
            expected_130
        )
