"""Fused cross-design step vs. the legacy per-design loop.

The fused path (one union-graph GNN sweep + one stacked CNN forward per
step) must be numerically equivalent to looping over designs: same RNG
consumption, same losses, same gradients, same optimiser trajectory.
"""

import numpy as np
import pytest

from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.model import TimingPredictor
from repro.techlib import make_asap7_library, make_sky130_library
from repro.train import (
    FusedDesignBatch,
    OursTrainer,
    TrainConfig,
    merge_pin_graphs,
    slice_ranges,
)


@pytest.fixture(scope="module")
def designs():
    libraries = {"130nm": make_sky130_library(), "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    out = [
        run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("spiMaster", "130nm", libraries, vocab=vocab,
                 resolution=16),
    ]
    normalize_features([d.graph for d in out])
    return out


@pytest.fixture(scope="module")
def in_features(designs):
    return designs[0].graph.features.shape[1]


def _train(designs, in_features, fused, steps):
    model = TimingPredictor(in_features, seed=0)
    cfg = TrainConfig(steps=steps, seed=0, fused=fused,
                      holdout_fraction=0.0)
    trainer = OursTrainer(model, designs, cfg)
    history = [trainer.step(warmup=(t < 2)) for t in range(steps)]
    return model, history


class TestMergedGraph:
    def test_union_shapes_and_levels(self, designs):
        graphs = [d.graph for d in designs]
        merged = merge_pin_graphs(graphs)
        assert merged.num_nodes == sum(g.num_nodes for g in graphs)
        assert len(merged.levels) == max(len(g.levels) for g in graphs)
        # Every node appears in exactly one level.
        all_levels = np.concatenate(merged.levels)
        assert len(np.unique(all_levels)) == merged.num_nodes
        assert merged.endpoint_rows.shape[0] == \
            sum(g.endpoint_rows.shape[0] for g in graphs)

    def test_slice_ranges(self):
        assert slice_ranges([3, 0, 2]) == [(0, 3), (3, 3), (3, 5)]

    def test_batch_rows_match_per_design_rows(self, designs):
        batch = FusedDesignBatch(designs)
        subsets = [np.array([0, 2]), np.array([1])]
        rows = batch.merged_endpoint_rows(subsets)
        offset = designs[0].graph.num_nodes
        expected = np.concatenate([
            designs[0].graph.endpoint_rows[[0, 2]],
            designs[1].graph.endpoint_rows[[1]] + offset,
        ])
        assert np.array_equal(rows, expected)


class TestStepEquivalence:
    def test_one_step_losses_and_params_match(self, designs, in_features):
        m_fused, h_fused = _train(designs, in_features, True, 1)
        m_loop, h_loop = _train(designs, in_features, False, 1)
        for key in ("total", "elbo", "contrastive", "cmd"):
            assert h_fused[0][key] == pytest.approx(h_loop[0][key],
                                                    abs=1e-8)
        for p_f, p_l in zip(m_fused.parameters(), m_loop.parameters()):
            np.testing.assert_allclose(p_f.data, p_l.data, atol=1e-8)

    def test_ten_steps_stay_on_the_same_trajectory(self, designs,
                                                   in_features):
        m_fused, h_fused = _train(designs, in_features, True, 10)
        m_loop, h_loop = _train(designs, in_features, False, 10)
        # Loose tolerance: float noise may compound over ten Adam steps.
        assert h_fused[-1]["total"] == pytest.approx(h_loop[-1]["total"],
                                                     rel=1e-4)
        for p_f, p_l in zip(m_fused.parameters(), m_loop.parameters()):
            np.testing.assert_allclose(p_f.data, p_l.data, atol=1e-4)

    def test_history_records_step_seconds(self, designs, in_features):
        _, history = _train(designs, in_features, True, 1)
        assert history[0]["step_seconds"] > 0.0
