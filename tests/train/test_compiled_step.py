"""Compiled training step vs. eager: bit-exactness, retraces, resume.

The compile layer's contract is stronger than the fused-vs-looped one:
a compiled (float64) run must be *bit-for-bit* identical to the eager
fused run — same loss stream, same final weights — which also makes
eager and compiled checkpoints interchangeable mid-run.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.model import TimingPredictor
from repro.nn import CheckpointError
from repro.techlib import make_asap7_library, make_sky130_library
from repro.train import OursTrainer, TrainConfig

BASE = TrainConfig(steps=8, lr=3e-3, batch_endpoints=24, seed=0,
                   gamma1=1.0, gamma2=30.0, holdout_fraction=0.0)


@pytest.fixture(scope="module")
def designs():
    libraries = {"130nm": make_sky130_library(),
                 "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    out = [
        run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("spiMaster", "130nm", libraries, vocab=vocab,
                 resolution=16),
    ]
    normalize_features([d.graph for d in out])
    return out


@pytest.fixture(scope="module")
def in_features(designs):
    return designs[0].graph.features.shape[1]


def _make_trainer(designs, in_features, **overrides):
    config = replace(BASE, **overrides)
    model = TimingPredictor(in_features, seed=config.seed)
    return OursTrainer(model, designs, config)


def _run(trainer, steps, warmup_steps=2):
    return [trainer.step(warmup=(t < warmup_steps))
            for t in range(steps)]


def _loss_keys(history):
    """Step records minus wall-clock noise, for exact comparison."""
    return [{k: v for k, v in record.items() if k != "step_seconds"}
            for record in history]


class TestBitExactness:
    def test_compiled_run_equals_eager_run(self, designs, in_features):
        eager = _make_trainer(designs, in_features, compile=False)
        compiled = _make_trainer(designs, in_features, compile=True)
        h_eager = _run(eager, 6)
        h_compiled = _run(compiled, 6)
        assert _loss_keys(h_compiled) == _loss_keys(h_eager)
        for p_c, p_e in zip(compiled.model.parameters(),
                            eager.model.parameters()):
            assert np.array_equal(p_c.data, p_e.data)
        # Warmup and main phases were actually compiled, not fallbacks.
        assert len(compiled._programs) == 2
        assert compiled.retraces == 0
        assert all(p.replays > 0 for p in compiled._programs.values())

    def test_float32_mode_stays_close(self, designs, in_features):
        eager = _make_trainer(designs, in_features, compile=False)
        f32 = _make_trainer(designs, in_features, compile=True,
                            dtype="float32")
        h_eager = _run(eager, 4)
        h_f32 = _run(f32, 4)
        for rec_f, rec_e in zip(h_f32, h_eager):
            assert rec_f["total"] == pytest.approx(rec_e["total"],
                                                   rel=1e-4)


class TestRetrace:
    def test_batch_shape_change_compiles_new_program(self, designs,
                                                     in_features):
        eager = _make_trainer(designs, in_features, compile=False)
        compiled = _make_trainer(designs, in_features, compile=True)

        def patched_sampler(counter):
            sizes = [(10, 6), (8, 4)]
            def sample():
                a, b = sizes[counter["n"] % 2]
                counter["n"] += 1
                return [np.arange(a), np.arange(b)]
            return sample

        eager._sample_subsets = patched_sampler({"n": 0})
        compiled._sample_subsets = patched_sampler({"n": 0})
        h_eager = _run(eager, 5, warmup_steps=0)
        h_compiled = _run(compiled, 5, warmup_steps=0)
        assert _loss_keys(h_compiled) == _loss_keys(h_eager)
        # One program per batch-shape signature, no failed replays.
        assert len(compiled._programs) == 2
        assert compiled.retraces == 0

    def test_rebound_parameter_triggers_retrace(self, designs,
                                                in_features):
        eager = _make_trainer(designs, in_features, compile=False)
        compiled = _make_trainer(designs, in_features, compile=True)
        h_eager = [eager.step(), eager.step()]
        h_compiled = [compiled.step()]
        # Rebind a parameter array (allocation, not in-place write):
        # the stale program must be dropped and retraced, not replayed.
        param = compiled.model.parameters()[0]
        param.data = param.data.copy()
        h_compiled.append(compiled.step())
        assert compiled.retraces == 1
        assert _loss_keys(h_compiled) == _loss_keys(h_eager)


class TestCheckpointInterchange:
    @pytest.mark.parametrize("first,second", [(True, False),
                                              (False, True)])
    def test_resume_across_execution_modes(self, designs, in_features,
                                           tmp_path, first, second):
        """A checkpoint from either mode resumes identically in both."""
        reference = _make_trainer(designs, in_features, compile=first)
        _run(reference, 4)
        ckpt = tmp_path / "mid.npz"
        reference.save_checkpoint(step=4, path=ckpt)
        tail_ref = [reference.step() for _ in range(3)]

        resumed = _make_trainer(designs, in_features, compile=second)
        resumed.load_checkpoint(ckpt)
        tail_resumed = [resumed.step() for _ in range(3)]
        assert _loss_keys(tail_resumed) == _loss_keys(tail_ref)
        for p_r, p_o in zip(resumed.model.parameters(),
                            reference.model.parameters()):
            assert np.array_equal(p_r.data, p_o.data)

    def test_checkpoint_without_new_config_keys_loads(self, designs,
                                                      in_features,
                                                      tmp_path):
        """Checkpoints predating compile/dtype stay loadable."""
        trainer = _make_trainer(designs, in_features)
        _run(trainer, 3)
        ckpt = tmp_path / "old.npz"
        trainer.save_checkpoint(step=3, path=ckpt)
        with np.load(ckpt) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(str(arrays["meta"]))
        del meta["config"]["compile"]
        del meta["config"]["dtype"]
        arrays["meta"] = np.array(json.dumps(meta))
        old = tmp_path / "pre-compile.npz"
        np.savez(old, **arrays)

        # Default (float64) configs accept the old checkpoint...
        fresh = _make_trainer(designs, in_features)
        fresh.load_checkpoint(old)
        # ...but float32 changes the math and must refuse it.
        f32 = _make_trainer(designs, in_features, dtype="float32")
        with pytest.raises(CheckpointError):
            f32.load_checkpoint(old)


class TestProfiling:
    def test_profiled_steps_populate_op_stats(self, designs,
                                              in_features):
        trainer = _make_trainer(designs, in_features)
        trainer.profile_ops = True
        _run(trainer, 2, warmup_steps=0)
        profiles = [p.op_profile for p in trainer._programs.values()]
        assert profiles and all(profiles)
        merged = {name for profile in profiles for name in profile}
        assert any(name.startswith("fwd.") for name in merged)
        assert any(name.startswith("bwd.") for name in merged)
