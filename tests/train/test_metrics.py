"""Tests for regression metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.train import mae, r2_score, rmse


class TestR2:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, y.mean())
        assert r2_score(y, pred) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.array([3.0, 1.0, -2.0])
        assert r2_score(y, pred) < 0.0

    def test_known_value(self):
        y = np.array([0.0, 1.0, 2.0, 3.0])
        pred = y + np.array([0.5, -0.5, 0.5, -0.5])
        expected = 1.0 - (4 * 0.25) / 5.0
        assert r2_score(y, pred) == pytest.approx(expected)

    def test_constant_targets(self):
        y = np.zeros(4)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1.0) == float("-inf")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            r2_score(np.zeros(3), np.zeros(4))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), scale=st.floats(0.1, 10.0))
    def test_r2_at_most_one(self, seed, scale):
        rng = np.random.default_rng(seed)
        y = rng.standard_normal(20) * scale
        pred = y + rng.standard_normal(20)
        assert r2_score(y, pred) <= 1.0 + 1e-12


class TestErrors:
    def test_mae(self):
        assert mae(np.array([0.0, 2.0]), np.array([1.0, 0.0])) == 1.5

    def test_rmse(self):
        assert rmse(np.array([0.0, 0.0]),
                    np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_rmse_at_least_mae(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.standard_normal(15)
        pred = rng.standard_normal(15)
        assert rmse(y, pred) >= mae(y, pred) - 1e-12
