"""K-node trainer behaviour and the K=2 bit-equivalence gate.

The generalized trainer must degrade *exactly* to the two-node
pipeline: with ``nodes=["130nm", "7nm"]`` the whole loss stream and
the final weights are bit-for-bit (``np.array_equal``) the legacy
run's.  A K=3 ladder must train end to end with per-node grouping.
"""

import numpy as np
import pytest

from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.infer.cache import named_tensors
from repro.model import TimingPredictor
from repro.techlib import NodeLadder
from repro.train import OursTrainer, TrainConfig

FAST = dict(steps=6, lr=3e-3, batch_endpoints=24, seed=0,
            gamma1=1.0, gamma2=30.0)

#: Loss-stream keys that must match bitwise (timing keys excluded).
STREAM_KEYS = ("total", "elbo", "contrastive", "cmd", "lr",
               "grad_norm", "grad_norm_clipped", "warmup")


@pytest.fixture(scope="module")
def two_node_designs():
    """Tiny designs built against the two-anchor ladder's libraries."""
    ladder = NodeLadder(node_nms=(130.0, 7.0))
    libraries = ladder.libraries()
    vocab = GateVocabulary(list(libraries.values()))
    designs = [
        run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("spiMaster", "130nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("linkruncca", "130nm", libraries, vocab=vocab,
                 resolution=16),
    ]
    normalize_features([d.graph for d in designs])
    return designs


@pytest.fixture(scope="module")
def ladder3_designs():
    """One design per node of a 3-node ladder (130 -> 45 -> 7)."""
    ladder = NodeLadder(node_nms=(130.0, 45.0, 7.0))
    libraries = ladder.libraries()
    vocab = GateVocabulary(list(libraries.values()))
    designs = [
        run_flow("spiMaster", "130nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("linkruncca", "45nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                 resolution=16),
    ]
    normalize_features([d.graph for d in designs])
    return designs


def _train(designs, **config_kwargs):
    in_features = designs[0].graph.features.shape[1]
    model = TimingPredictor(in_features, seed=0)
    trainer = OursTrainer(model, designs,
                          TrainConfig(**{**FAST, **config_kwargs}))
    history = trainer.fit()
    weights = {name: tensor.data.copy()
               for name, tensor in named_tensors(model)}
    return trainer, history, weights


class TestK2BitEquivalence:
    def test_explicit_nodes_reproduce_legacy_run_exactly(
            self, two_node_designs):
        """`nodes=["130nm","7nm"]` is the legacy two-node trainer,
        bit for bit: same loss stream, same final weights."""
        _, legacy_history, legacy_weights = _train(two_node_designs)
        _, ladder_history, ladder_weights = _train(
            two_node_designs, nodes=["130nm", "7nm"],
            target_node="7nm")
        assert len(legacy_history) == len(ladder_history)
        for legacy, ladder in zip(legacy_history, ladder_history):
            for key in STREAM_KEYS:
                assert np.array_equal(legacy[key], ladder[key]), key
        assert legacy_weights.keys() == ladder_weights.keys()
        for name in legacy_weights:
            assert np.array_equal(legacy_weights[name],
                                  ladder_weights[name]), name

    def test_node_grouping_matches_legacy_split(self, two_node_designs):
        trainer, _, _ = _train(two_node_designs, steps=1)
        assert trainer.node_order == ["130nm", "7nm"]
        assert [d.name for d in trainer.source] == \
            ["spiMaster", "linkruncca"]
        assert [d.name for d in trainer.target] == ["usbf_device"]


class TestKNodeTrainer:
    def test_three_node_ladder_trains(self, ladder3_designs):
        trainer, history, _ = _train(
            ladder3_designs, steps=3,
            nodes=["130nm", "45nm", "7nm"], target_node="7nm")
        assert trainer.node_order == ["130nm", "45nm", "7nm"]
        assert trainer.target_node == "7nm"
        assert [d.node for d in trainer.source] == ["130nm", "45nm"]
        for record in history:
            for key in ("total", "elbo", "contrastive", "cmd"):
                assert np.isfinite(record[key]), key

    def test_pairwise_cmd_mode_trains(self, ladder3_designs):
        _, history, _ = _train(
            ladder3_designs, steps=2,
            nodes=["130nm", "45nm", "7nm"], target_node="7nm",
            cmd_mode="pairwise")
        assert all(np.isfinite(r["cmd"]) for r in history)

    def test_checkpoint_extra_records_chain(self, ladder3_designs,
                                            tmp_path):
        from repro.train import load_checkpoint

        trainer, _, _ = _train(
            ladder3_designs, steps=1,
            nodes=["130nm", "45nm", "7nm"], target_node="7nm")
        path = tmp_path / "ckpt.npz"
        trainer.save_checkpoint(step=1, path=path)
        extra = load_checkpoint(path).extra
        assert extra["nodes"] == ["130nm", "45nm", "7nm"]
        assert extra["target_node"] == "7nm"

    def test_unknown_node_in_designs_rejected(self, ladder3_designs):
        with pytest.raises(ValueError, match="45nm"):
            _train(ladder3_designs, steps=1,
                   nodes=["130nm", "7nm"], target_node="7nm")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(nodes=["7nm"], target_node="7nm")
        with pytest.raises(ValueError):
            TrainConfig(nodes=["130nm", "7nm"], target_node="45nm")
        with pytest.raises(ValueError):
            TrainConfig(nodes=["7nm", "7nm"], target_node="7nm")
        with pytest.raises(ValueError):
            TrainConfig(cmd_mode="nonsense")


class TestLadderEvalSmoke:
    def test_leave_one_node_out_study(self, ladder3_designs):
        """run_ladder_study end to end on an injected tiny dataset."""
        from repro.experiments import run_ladder_study
        from repro.experiments.datasets import LadderDataset

        ladder = NodeLadder(node_nms=(130.0, 45.0, 7.0))
        dataset = LadderDataset(
            train=list(ladder3_designs),
            test=[d for d in ladder3_designs if d.node == "7nm"],
            in_features=ladder3_designs[0].graph.features.shape[1],
            norm_params={},
            ladder=ladder,
            target_label="7nm",
        )
        results = run_ladder_study(dataset=dataset, steps=2, seed=0)
        assert results["nodes"] == ["130nm", "45nm", "7nm"]
        assert results["target"] == "7nm"
        assert np.isfinite(results["main"]["average"])
        # Both source nodes get a leave-one-out retrain.
        assert sorted(results["leave_one_out"]) == ["130nm", "45nm"]
        for label in ("130nm", "45nm"):
            assert "loo_delta_r2" in results["per_node"][label]
        assert results["per_node"]["7nm"]["role"] == "target"

        from repro.experiments import format_ladder_study

        text = format_ladder_study(results)
        assert "Ladder study" in text and "Leave-one-node-out" in text
