"""Tests for the congestion-aware maze router."""

import numpy as np
import pytest

from repro.netlist import make_design, map_design
from repro.place import Floorplan, place_design
from repro.route import (
    MazeRouter,
    RoutingGrid,
    dijkstra_route,
    maze_route_design,
)
from repro.sta import run_sta
from repro.techlib import make_asap7_library


@pytest.fixture(scope="module")
def placed():
    lib = make_asap7_library()
    nl = map_design(make_design("linkruncca"), lib)
    fp = place_design(nl, seed=3)
    return nl, fp


class TestDijkstra:
    def _grid(self, penalty=0.4):
        fp = Floorplan(10.0, 10.0, 1.0, 0.1)
        return RoutingGrid(fp, bins=10, congestion_penalty=penalty)

    def test_straight_line_cost(self):
        grid = self._grid()
        path, cost = dijkstra_route(grid, (0, 0), (5, 0))
        assert len(path) == 6
        assert cost == pytest.approx(5 * grid.step_x)

    def test_same_bin(self):
        grid = self._grid()
        path, cost = dijkstra_route(grid, (3, 3), (3, 3))
        assert path == [(3, 3)] and cost == 0.0

    def test_path_is_connected(self):
        grid = self._grid()
        path, _ = dijkstra_route(grid, (0, 0), (7, 9))
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_congestion_forces_detour(self):
        """A wall of congestion makes the router go around it."""
        grid = self._grid(penalty=100.0)
        # Build a congested vertical wall at i = 3, leaving row 9 open.
        for j in range(9):
            grid.usage[3, j] = 50.0
        path, _ = dijkstra_route(grid, (0, 0), (6, 0))
        wall_hits = [p for p in path if p[0] == 3]
        assert all(p[1] == 9 for p in wall_hits)  # crossed at the gap


class TestMazeRouter:
    def test_all_nets_routed(self, placed):
        nl, fp = placed
        router = MazeRouter(nl, fp)
        router.run()
        signal = [n for n in nl.nets.values()
                  if n.driver and n.sinks and not n.is_clock]
        assert set(router.trees) == {n.index for n in signal}

    def test_every_sink_attached(self, placed):
        nl, fp = placed
        router = MazeRouter(nl, fp)
        router.run()
        for net in nl.nets.values():
            if net.index not in router.trees:
                continue
            tree = router.trees[net.index]
            assert set(tree.sink_node) == {s.index for s in net.sinks}

    def test_usage_accumulates(self, placed):
        nl, fp = placed
        router = MazeRouter(nl, fp)
        router.run()
        assert router.grid.usage.sum() > 0

    def test_signoff_sta_runs_on_maze_parasitics(self, placed):
        nl, fp = placed
        parasitics = maze_route_design(nl, fp)
        report = run_sta(nl, parasitics)
        assert report.endpoint_arrivals
        assert all(at > 0 for at in report.endpoint_arrivals.values())

    def test_maze_lengths_comparable_to_mst(self, placed):
        """Maze wirelength is within a small factor of the MST router's."""
        from repro.route import GlobalRouter

        nl, fp = placed
        maze = MazeRouter(nl, fp)
        maze.run()
        mst = GlobalRouter(nl, fp, seed=0, jitter=0.0, detour_factor=0.0)
        mst.run()
        total_maze = sum(maze.routed_length.values())
        total_mst = sum(mst.routed_length.values())
        assert total_maze < 4.0 * total_mst + 1e-9
