"""Tests for pre-route estimation, global routing and RUDY maps."""

import numpy as np
import pytest

from repro.netlist import make_design, map_design
from repro.place import place_design
from repro.route import (
    GlobalRouter,
    PreRouteEstimator,
    hpwl,
    manhattan,
    route_design,
    rudy_map,
)
from repro.route.router import _mst_edges
from repro.techlib import make_asap7_library


@pytest.fixture(scope="module")
def asap():
    return make_asap7_library()


@pytest.fixture(scope="module")
def placed(asap):
    nl = map_design(make_design("chacha"), asap)
    fp = place_design(nl, seed=4)
    return nl, fp


class TestEstimator:
    def test_hpwl_simple(self, placed):
        nl, _ = placed
        net = next(n for n in nl.nets.values()
                   if n.fanout >= 1 and not n.is_clock)
        xs = [p.x for p in net.pins]
        ys = [p.y for p in net.pins]
        assert hpwl(net) == pytest.approx(
            (max(xs) - min(xs)) + (max(ys) - min(ys))
        )

    def test_net_load_includes_pin_caps(self, placed):
        nl, _ = placed
        est = PreRouteEstimator(nl)
        net = next(n for n in nl.nets.values()
                   if n.fanout >= 2 and not n.is_clock)
        assert est.net_load(net) >= net.total_sink_cap()

    def test_fanout_factor_grows_length(self, placed):
        nl, _ = placed
        low = PreRouteEstimator(nl, fanout_factor=0.0)
        high = PreRouteEstimator(nl, fanout_factor=0.5)
        net = next(n for n in nl.nets.values()
                   if n.fanout >= 3 and not n.is_clock and hpwl(n) > 0)
        assert high.estimated_length(net) > low.estimated_length(net)

    def test_wire_delay_zero_for_coincident_pins(self, placed):
        nl, _ = placed
        est = PreRouteEstimator(nl)
        for net in nl.nets.values():
            if net.driver is None or net.is_clock:
                continue
            for sink in net.sinks:
                d = est.wire_delay(net, sink)
                assert d >= 0.0
                if manhattan(net.driver, sink) == 0.0:
                    assert d == 0.0


class TestMST:
    def test_mst_spans_all_pins(self, placed):
        nl, _ = placed
        net = max((n for n in nl.nets.values() if not n.is_clock),
                  key=lambda n: n.fanout)
        pins = [net.driver] + net.sinks
        edges = _mst_edges(pins)
        assert len(edges) == len(pins) - 1
        reached = {0}
        for pa, pc in edges:
            assert pa in reached  # parents appear before children
            reached.add(pc)
        assert reached == set(range(len(pins)))

    def test_mst_is_minimal_for_collinear_points(self, asap):
        """Three collinear pins: MST length equals the span."""
        from repro.netlist import Netlist
        nl = Netlist("t", asap)
        src = nl.add_port("a", "input")
        net = nl.add_net()
        nl.connect(net, src)
        sink_caps = []
        for k in range(2):
            inv = nl.add_cell(asap.pick("INV", 1.0))
            nl.connect(net, inv.pins["A"])
        pins = [net.driver] + net.sinks
        pins[0].x, pins[0].y = 0.0, 0.0
        pins[1].x, pins[1].y = 5.0, 0.0
        pins[2].x, pins[2].y = 10.0, 0.0
        edges = _mst_edges(pins)
        total = sum(manhattan(pins[a], pins[b]) for a, b in edges)
        assert total == pytest.approx(10.0)


class TestRouter:
    def test_all_signal_nets_routed(self, placed):
        nl, fp = placed
        router = GlobalRouter(nl, fp, seed=0)
        router.run()
        signal_nets = [n for n in nl.nets.values()
                       if n.driver and n.sinks and not n.is_clock]
        assert set(router.trees) == {n.index for n in signal_nets}

    def test_routed_length_at_least_mst(self, placed):
        """Detours and jitter only ever lengthen wires."""
        nl, fp = placed
        router = GlobalRouter(nl, fp, seed=0)
        router.run()
        for net in nl.nets.values():
            if net.index not in router.trees:
                continue
            pins = [net.driver] + net.sinks
            mst_len = sum(manhattan(pins[a], pins[b])
                          for a, b in _mst_edges(pins))
            assert router.routed_length[net.index] >= mst_len - 1e-9

    def test_congestion_grid_accumulates(self, placed):
        nl, fp = placed
        router = GlobalRouter(nl, fp, seed=0)
        router.run()
        assert router.grid.demand.sum() > 0
        assert router.grid.max_utilization > 0

    def test_parasitics_cover_every_sink(self, placed):
        nl, fp = placed
        par = route_design(nl, fp, seed=0)
        for net in nl.nets.values():
            if net.driver is None or not net.sinks or net.is_clock:
                continue
            assert par.net_load(net) > 0
            for sink in net.sinks:
                assert par.wire_delay(net, sink) >= 0
                assert par.slew_degradation(net, sink) >= 0

    def test_routing_deterministic_given_seed(self, placed):
        nl, fp = placed
        a = GlobalRouter(nl, fp, seed=9)
        b = GlobalRouter(nl, fp, seed=9)
        a.run()
        b.run()
        for idx in a.routed_length:
            assert a.routed_length[idx] == pytest.approx(
                b.routed_length[idx]
            )

    def test_higher_detour_factor_slows_nets(self, placed):
        nl, fp = placed
        calm = GlobalRouter(nl, fp, detour_factor=0.0, seed=0, jitter=0.0)
        jam = GlobalRouter(nl, fp, detour_factor=8.0, seed=0, jitter=0.0)
        calm.run()
        jam.run()
        total_calm = sum(calm.routed_length.values())
        total_jam = sum(jam.routed_length.values())
        assert total_jam >= total_calm


class TestRudy:
    def test_shape_and_nonnegative(self, placed):
        nl, fp = placed
        grid = rudy_map(nl, fp, resolution=16)
        assert grid.shape == (16, 16)
        assert (grid >= 0).all()
        assert grid.sum() > 0

    def test_empty_design_is_zero(self, asap):
        from repro.netlist import Netlist
        from repro.place import make_floorplan
        nl = Netlist("t", asap)
        fp = make_floorplan(nl) if nl.cells else None
        if fp is None:
            from repro.place import Floorplan
            fp = Floorplan(10.0, 10.0, 1.0, 0.1)
        grid = rudy_map(nl, fp, resolution=8)
        assert grid.sum() == 0

    def test_demand_concentrates_where_nets_are(self, asap):
        """A single net in one corner only marks that corner."""
        from repro.netlist import Netlist
        from repro.place import Floorplan
        nl = Netlist("t", asap)
        src = nl.add_port("a", "input")
        net = nl.add_net()
        nl.connect(net, src)
        inv = nl.add_cell(asap.pick("INV", 1.0))
        nl.connect(net, inv.pins["A"])
        src.x, src.y = 1.0, 1.0
        inv.pins["A"].x, inv.pins["A"].y = 2.0, 2.0
        fp = Floorplan(100.0, 100.0, 1.0, 0.1)
        grid = rudy_map(nl, fp, resolution=10)
        assert grid[0, 0] > 0
        assert grid[5:, 5:].sum() == 0
