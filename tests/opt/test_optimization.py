"""Tests for gate sizing, buffering, and the optimization loop."""

import numpy as np
import pytest

from repro.netlist import make_design, map_design
from repro.opt import (
    buffer_heavy_nets,
    critical_cells,
    insert_buffer,
    optimize_design,
    upsize_critical,
)
from repro.place import place_design
from repro.route import PreRouteEstimator
from repro.sta import ClockConstraint, run_sta
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def sky():
    return make_sky130_library()


@pytest.fixture(scope="module")
def asap():
    return make_asap7_library()


def placed_design(name, lib, seed=0):
    nl = map_design(make_design(name), lib)
    fp = place_design(nl, seed=seed)
    return nl, fp


class TestSizing:
    def test_critical_cells_sorted_worst_first(self, sky):
        nl, fp = placed_design("jpeg", sky)
        report = run_sta(nl, PreRouteEstimator(nl),
                         ClockConstraint(2.0))  # brutally tight
        ranked = critical_cells(nl, report)
        assert ranked
        slacks = [s for s, _ in ranked]
        assert slacks == sorted(slacks)
        assert all(s < 0 for s in slacks)

    def test_upsize_changes_refs(self, sky):
        nl, fp = placed_design("jpeg", sky)
        clock = ClockConstraint(2.0)
        report = run_sta(nl, PreRouteEstimator(nl), clock)
        before = {c.name: c.ref.drive_strength for c in nl.cells.values()}
        changed = upsize_critical(nl, report, max_changes=20)
        assert 0 < changed <= 20
        after = {c.name: c.ref.drive_strength for c in nl.cells.values()}
        grew = [n for n in before if after[n] > before[n]]
        assert len(grew) == changed

    def test_upsize_respects_budget(self, sky):
        nl, fp = placed_design("jpeg", sky)
        report = run_sta(nl, PreRouteEstimator(nl), ClockConstraint(2.0))
        assert upsize_critical(nl, report, max_changes=3) <= 3

    def test_upsizing_improves_wns(self, sky):
        nl, fp = placed_design("jpeg", sky)
        clock = ClockConstraint(2.0)
        report = run_sta(nl, PreRouteEstimator(nl), clock)
        wns_before = report.wns
        upsize_critical(nl, report, max_changes=200)
        wns_after = run_sta(nl, PreRouteEstimator(nl), clock).wns
        assert wns_after > wns_before


class TestBuffering:
    def test_insert_buffer_rewires(self, asap):
        nl, fp = placed_design("arm9", asap)
        net = max((n for n in nl.nets.values() if not n.is_clock),
                  key=lambda n: n.fanout)
        sinks = list(net.sinks[:2])
        n_cells = len(nl.cells)
        buf = insert_buffer(nl, net, sinks, fp)
        assert len(nl.cells) == n_cells + 1
        assert buf.pins["A"].net is net
        for s in sinks:
            assert s.net is buf.output_pin.net
        nl.validate()

    def test_insert_buffer_rejects_foreign_sinks(self, asap):
        nl, fp = placed_design("arm9", asap)
        nets = [n for n in nl.nets.values() if n.sinks and not n.is_clock]
        with pytest.raises(ValueError):
            insert_buffer(nl, nets[0], [nets[1].sinks[0]], fp)
        with pytest.raises(ValueError):
            insert_buffer(nl, nets[0], [], fp)

    def test_buffer_placed_on_row(self, asap):
        nl, fp = placed_design("arm9", asap)
        net = max((n for n in nl.nets.values() if not n.is_clock),
                  key=lambda n: n.fanout)
        buf = insert_buffer(nl, net, list(net.sinks), fp)
        row = round(buf.y / fp.row_height - 0.5)
        assert buf.y == pytest.approx(fp.row_y(int(row)))

    def test_buffer_heavy_nets_caps_fanout(self, asap):
        nl, fp = placed_design("or1200", asap)
        worst_before = max(n.fanout for n in nl.nets.values()
                           if not n.is_clock)
        buffer_heavy_nets(nl, fp, max_fanout=6, max_changes=1000)
        worst_after = max(n.fanout for n in nl.nets.values()
                          if not n.is_clock)
        assert worst_after <= max(worst_before, 7)
        assert worst_after < worst_before
        nl.validate()


class TestOptimizerLoop:
    def test_optimizer_fixes_tight_design(self, sky):
        nl, fp = placed_design("jpeg", sky)
        clock = ClockConstraint(4.0)
        result = optimize_design(nl, fp, clock)
        assert result.wns_after > result.wns_before
        assert result.cells_upsized > 0

    def test_optimizer_restructures(self, asap):
        """Buffering changes the netlist graph: the paper's premise."""
        nl, fp = placed_design("hwacha", asap)
        nets_before = len(nl.nets)
        result = optimize_design(nl, fp)
        assert result.restructured
        assert len(nl.nets) > nets_before

    def test_endpoints_stable_under_optimization(self, asap):
        """Timing endpoints must survive restructuring (paper Sec 2.1)."""
        nl, fp = placed_design("chacha", asap)
        names_before = {p.full_name for p in nl.timing_endpoints()}
        optimize_design(nl, fp)
        names_after = {p.full_name for p in nl.timing_endpoints()}
        assert names_before == names_after

    def test_optimized_netlist_validates(self, asap):
        nl, fp = placed_design("smallboom", asap)
        optimize_design(nl, fp)
        nl.validate()
