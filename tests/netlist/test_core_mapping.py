"""Tests for netlist structures, the tech mapper, and the benchmark suite."""

import numpy as np
import pytest

from repro.netlist import (
    DESIGN_GENERATORS,
    LogicGraph,
    Netlist,
    TechMapper,
    TEST_SPLIT,
    TRAIN_SPLIT,
    make_design,
    map_design,
)
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def sky():
    return make_sky130_library()


@pytest.fixture(scope="module")
def asap():
    return make_asap7_library()


def tiny_graph():
    g = LogicGraph("tiny")
    a = g.add_input("a")
    b = g.add_input("b")
    x = g.add_gate("AND2", (a, b))
    r = g.add_register(x)
    y = g.add_gate("XOR2", (r, a))
    g.mark_output(y, "out")
    return g


class TestNetlistStructure:
    def test_connect_disconnect_bookkeeping(self, sky):
        nl = Netlist("t", sky)
        inv = nl.add_cell(sky.pick("INV", 1.0))
        port = nl.add_port("in0", "input")
        net = nl.add_net("n0")
        nl.connect(net, port)
        nl.connect(net, inv.pins["A"])
        assert net.driver is port
        assert net.sinks == [inv.pins["A"]]
        nl.disconnect(inv.pins["A"])
        assert net.sinks == []
        assert inv.pins["A"].net is None

    def test_double_driver_rejected(self, sky):
        nl = Netlist("t", sky)
        a = nl.add_cell(sky.pick("INV", 1.0))
        b = nl.add_cell(sky.pick("INV", 1.0))
        net = nl.add_net()
        nl.connect(net, a.pins["Y"])
        with pytest.raises(ValueError):
            nl.connect(net, b.pins["Y"])

    def test_double_connect_pin_rejected(self, sky):
        nl = Netlist("t", sky)
        inv = nl.add_cell(sky.pick("INV", 1.0))
        n1, n2 = nl.add_net(), nl.add_net()
        nl.connect(n1, inv.pins["A"])
        with pytest.raises(ValueError):
            nl.connect(n2, inv.pins["A"])

    def test_duplicate_names_rejected(self, sky):
        nl = Netlist("t", sky)
        nl.add_port("p", "input")
        with pytest.raises(ValueError):
            nl.add_port("p", "output")
        nl.add_net("n")
        with pytest.raises(ValueError):
            nl.add_net("n")
        nl.add_cell(sky.pick("INV", 1.0), "u1")
        with pytest.raises(ValueError):
            nl.add_cell(sky.pick("INV", 1.0), "u1")

    def test_pin_cap_comes_from_library(self, sky):
        nl = Netlist("t", sky)
        nand = nl.add_cell(sky.pick("NAND2", 1.0))
        assert nand.pins["A"].cap == sky.pick("NAND2", 1.0).input_cap("A")
        assert nand.pins["Y"].cap == 0.0


class TestMapping:
    def test_tiny_graph_maps_and_validates(self, sky):
        nl = map_design(tiny_graph(), sky)
        nl.validate()
        assert "clk" in nl.ports
        assert len(nl.sequential_cells) == 1

    def test_feedback_register_maps(self, asap):
        g = LogicGraph("fb")
        a = g.add_input("a")
        reg = g.add_register_placeholder()
        nxt = g.add_gate("XOR2", (reg, a))
        g.connect_register(reg, nxt)
        g.mark_output(reg, "q")
        nl = map_design(g, asap)
        nl.validate()
        dff = nl.sequential_cells[0]
        # The D pin's net must be driven by the XOR that reads the Q pin.
        d_net = dff.pins["D"].net
        assert d_net.driver.cell is not None

    def test_decomposition_on_missing_function(self, asap):
        """AND2 is absent at 7nm: mapping must expand to NAND2 + INV."""
        g = LogicGraph("t")
        a, b = g.add_input("a"), g.add_input("b")
        x = g.add_gate("AND2", (a, b))
        g.mark_output(x, "o")
        nl = map_design(g, asap)
        functions = sorted(c.ref.function for c in nl.cells.values())
        assert functions == ["INV", "NAND2"]

    def test_nand3_decomposes_on_sky130(self, sky):
        """NAND3 is absent at 130nm but native at 7nm."""
        g = LogicGraph("t")
        ins = [g.add_input(f"i{k}") for k in range(3)]
        x = g.add_gate("NAND3", ins)
        g.mark_output(x, "o")
        nl = map_design(g, sky)
        assert len(nl.cells) > 1
        assert all(c.ref.function != "NAND3" for c in nl.cells.values())

    def test_nand3_native_on_asap7(self, asap):
        g = LogicGraph("t")
        ins = [g.add_input(f"i{k}") for k in range(3)]
        x = g.add_gate("NAND3", ins)
        g.mark_output(x, "o")
        nl = map_design(g, asap)
        assert len(nl.cells) == 1
        assert next(iter(nl.cells.values())).ref.function == "NAND3"

    def test_same_design_differs_across_nodes(self, sky, asap):
        g = make_design("arm9")
        n_sky = map_design(g, sky)
        n_asap = map_design(g, asap)
        sky_fns = sorted(c.ref.function for c in n_sky.cells.values())
        asap_fns = sorted(c.ref.function for c in n_asap.cells.values())
        assert sky_fns != asap_fns  # node-dependent structure
        assert len(n_sky.timing_endpoints()) > 0
        assert len(n_asap.timing_endpoints()) > 0

    def test_high_fanout_gets_stronger_drive(self, sky):
        g = LogicGraph("t")
        a = g.add_input("a")
        x = g.add_gate("INV", (a,))
        for k in range(10):
            y = g.add_gate("INV", (x,))
            g.mark_output(y, f"o{k}")
        nl = map_design(g, sky)
        driver = [c for c in nl.cells.values()
                  if c.output_pin.net and c.output_pin.net.fanout == 10]
        assert driver[0].ref.drive_strength == 4.0

    def test_sweep_removes_dead_logic(self, sky):
        g = LogicGraph("t")
        a, b = g.add_input("a"), g.add_input("b")
        used = g.add_gate("AND2", (a, b))
        g.add_gate("OR2", (a, b))  # dead gate
        g.mark_output(used, "o")
        nl = map_design(g, sky)
        assert all(c.output_pin.net and c.output_pin.net.sinks
                   for c in nl.cells.values())

    def test_clock_excluded_from_primary_inputs(self, sky):
        nl = map_design(tiny_graph(), sky)
        names = [p.name for p in nl.primary_inputs]
        assert "clk" not in names

    def test_endpoints_are_flop_d_and_outputs(self, sky):
        nl = map_design(tiny_graph(), sky)
        endpoints = nl.timing_endpoints()
        assert len(endpoints) == 2  # one DFF D pin + one primary output
        kinds = {p.is_port for p in endpoints}
        assert kinds == {True, False}


class TestBenchmarkSuite:
    def test_all_designs_map_on_both_nodes(self, sky, asap):
        for name in DESIGN_GENERATORS:
            g = make_design(name)
            map_design(g, sky).validate()
            map_design(g, asap).validate()

    def test_split_covers_paper_table(self):
        assert set(TRAIN_SPLIT) | set(TEST_SPLIT) == set(DESIGN_GENERATORS)
        assert TRAIN_SPLIT["smallboom"] == "7nm"
        assert all(v == "7nm" for v in TEST_SPLIT.values())
        assert sum(1 for v in TRAIN_SPLIT.values() if v == "130nm") == 4

    def test_relative_sizes_follow_table1(self, asap, sky):
        """jpeg is the biggest train design; or1200 has the most endpoints."""
        sizes = {}
        endpoints = {}
        for name in DESIGN_GENERATORS:
            lib = sky if TRAIN_SPLIT.get(name) == "130nm" else asap
            nl = map_design(make_design(name), lib)
            sizes[name] = nl.stats()["pins"]
            endpoints[name] = nl.stats()["endpoints"]
        train_130 = [n for n, v in TRAIN_SPLIT.items() if v == "130nm"]
        assert max(train_130, key=sizes.get) == "jpeg"
        assert max(TEST_SPLIT, key=endpoints.get) == "or1200"

    def test_scale_parameter_grows_designs(self):
        small = make_design("arm9")
        # Generators take scale through make_design's wrapper.
        big = DESIGN_GENERATORS["arm9"](scale=1.5)
        assert len(big) > len(small)

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            make_design("nonexistent")

    def test_generation_is_deterministic(self):
        a = make_design("smallboom")
        b = make_design("smallboom")
        assert len(a) == len(b)
        assert [n.op for n in a.nodes] == [n.op for n in b.nodes]
