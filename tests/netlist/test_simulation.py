"""Functional-equivalence verification of the technology mapper.

The strongest correctness property in the whole substrate: a design
mapped to *either* library (each with different decomposition rewrites)
must behave bit-identically to its generic logic graph over random
multi-cycle stimulus.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import LogicGraph, blocks, make_design, map_design
from repro.netlist.simulate import (
    GraphSimulator,
    NetlistSimulator,
    equivalent_behaviour,
)
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def libs():
    return make_sky130_library(), make_asap7_library()


def random_stimulus(graph, n_cycles, seed):
    rng = np.random.default_rng(seed)
    names = [graph.nodes[i].name for i in graph.inputs]
    return [{name: bool(rng.integers(2)) for name in names}
            for _ in range(n_cycles)]


class TestGraphSimulator:
    def test_adder_adds(self):
        g = LogicGraph("add")
        a = [g.add_input(f"a{i}") for i in range(4)]
        b = [g.add_input(f"b{i}") for i in range(4)]
        out = blocks.ripple_adder(g, a, b)
        for i, bit in enumerate(out):
            g.mark_output(bit, f"s{i}")
        sim = GraphSimulator(g)
        for x, y in [(3, 5), (15, 1), (9, 9), (0, 0)]:
            inputs = {f"a{i}": bool((x >> i) & 1) for i in range(4)}
            inputs.update({f"b{i}": bool((y >> i) & 1) for i in range(4)})
            outs = sim.step(inputs)
            total = sum(outs[f"s{i}"] << i for i in range(5))
            assert total == x + y, (x, y)

    def test_multiplier_multiplies(self):
        g = LogicGraph("mul")
        a = [g.add_input(f"a{i}") for i in range(3)]
        b = [g.add_input(f"b{i}") for i in range(3)]
        out = blocks.array_multiplier(g, a, b)
        for i, bit in enumerate(out):
            g.mark_output(bit, f"p{i}")
        sim = GraphSimulator(g)
        for x in range(8):
            for y in range(8):
                inputs = {f"a{i}": bool((x >> i) & 1) for i in range(3)}
                inputs.update(
                    {f"b{i}": bool((y >> i) & 1) for i in range(3)}
                )
                outs = sim.step(inputs)
                total = sum(outs[f"p{i}"] << i for i in range(len(out)))
                assert total == x * y, (x, y)

    def test_counter_counts(self):
        g = LogicGraph("cnt")
        en = g.add_input("en")
        regs = blocks.counter(g, 4, en)
        for i, r in enumerate(regs):
            g.mark_output(r, f"c{i}")
        sim = GraphSimulator(g)
        for expected in range(10):
            outs = sim.step({"en": True})
            value = sum(outs[f"c{i}"] << i for i in range(4))
            assert value == expected % 16

    def test_register_delays_by_one_cycle(self):
        g = LogicGraph("reg")
        a = g.add_input("a")
        r = g.add_register(a)
        g.mark_output(r, "q")
        sim = GraphSimulator(g)
        assert sim.step({"a": True})["q"] is False
        assert sim.step({"a": False})["q"] is True
        assert sim.step({"a": False})["q"] is False


class TestMapperEquivalence:
    @pytest.mark.parametrize("name", ["usbf_device", "spiMaster",
                                      "linkruncca", "arm9"])
    def test_design_equivalent_on_both_nodes(self, name, libs):
        sky, asap = libs
        graph = make_design(name)
        netlists = [map_design(graph, sky), map_design(graph, asap)]
        stimulus = random_stimulus(graph, n_cycles=6, seed=42)
        assert equivalent_behaviour(graph, netlists, stimulus), name

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_cones_equivalent(self, seed, libs):
        """Random logic, both libraries, random stimulus: always equal."""
        sky, asap = libs
        rng = np.random.default_rng(seed)
        g = LogicGraph("rand")
        ins = [g.add_input(f"i{k}") for k in range(5)]
        tips = blocks.random_logic_cone(g, ins, 25, rng)
        for t in tips:
            g.mark_output(t, f"o{t}")
        netlists = [map_design(g, sky), map_design(g, asap)]
        stimulus = random_stimulus(g, n_cycles=4, seed=seed)
        assert equivalent_behaviour(g, netlists, stimulus)

    def test_sequential_feedback_equivalent(self, libs):
        sky, asap = libs
        g = LogicGraph("fb")
        en = g.add_input("en")
        regs = blocks.counter(g, 5, en)
        data = [g.add_input(f"d{i}") for i in range(4)]
        sh = blocks.shift_register(g, data, en)
        for i, r in enumerate(regs):
            g.mark_output(r, f"c{i}")
        g.mark_output(sh[-1], "so")
        netlists = [map_design(g, sky), map_design(g, asap)]
        stimulus = random_stimulus(g, n_cycles=8, seed=7)
        assert equivalent_behaviour(g, netlists, stimulus)


class TestNetlistSimulator:
    def test_loop_detection(self, libs):
        from repro.netlist import Netlist

        sky, _ = libs
        nl = Netlist("loop", sky)
        a = nl.add_cell(sky.pick("INV", 1.0))
        b = nl.add_cell(sky.pick("INV", 1.0))
        n1, n2 = nl.add_net(), nl.add_net()
        nl.connect(n1, a.pins["Y"])
        nl.connect(n1, b.pins["A"])
        nl.connect(n2, b.pins["Y"])
        nl.connect(n2, a.pins["A"])
        with pytest.raises(ValueError):
            NetlistSimulator(nl)
