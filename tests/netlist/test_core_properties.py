"""Property-based tests on netlist connectivity invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import Netlist
from repro.techlib import make_asap7_library

LIB = make_asap7_library()


def build_random_netlist(seed: int, n_cells: int) -> Netlist:
    """Random but always-valid netlist: chain with random extra fanout."""
    rng = np.random.default_rng(seed)
    nl = Netlist(f"rand{seed}", LIB)
    src = nl.add_port("in0", "input")
    net = nl.add_net()
    nl.connect(net, src)
    driven_nets = [net]
    comb = [name for name in ("INV", "NAND2", "NOR2", "XOR2")
            ]
    for _ in range(n_cells):
        fn = comb[rng.integers(len(comb))]
        cell = nl.add_cell(LIB.pick(fn, 1.0))
        for pin in cell.input_pins:
            feed = driven_nets[rng.integers(len(driven_nets))]
            nl.connect(feed, pin)
        out = nl.add_net()
        nl.connect(out, cell.output_pin)
        driven_nets.append(out)
    # Terminate every danglingly-driven net with an output port.
    for i, net in enumerate(driven_nets):
        if not net.sinks:
            port = nl.add_port(f"out{i}", "output")
            nl.connect(net, port)
    return nl


class TestConnectivityInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n_cells=st.integers(1, 30))
    def test_random_netlists_validate(self, seed, n_cells):
        nl = build_random_netlist(seed, n_cells)
        nl.validate()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n_cells=st.integers(1, 30))
    def test_every_pin_net_membership_consistent(self, seed, n_cells):
        """pin.net and net.driver/sinks always agree."""
        nl = build_random_netlist(seed, n_cells)
        for net in nl.nets.values():
            if net.driver is not None:
                assert net.driver.net is net
            for sink in net.sinks:
                assert sink.net is net
        for pin in nl.pins:
            if pin.net is None:
                continue
            assert pin is pin.net.driver or pin in pin.net.sinks

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n_cells=st.integers(1, 30))
    def test_edge_counts_consistent(self, seed, n_cells):
        """net edges = sum of fanouts; cell edges = sum of comb arity."""
        nl = build_random_netlist(seed, n_cells)
        stats = nl.stats()
        expected_net_edges = sum(n.fanout for n in nl.nets.values()
                                 if n.driver is not None and not n.is_clock)
        expected_cell_edges = sum(len(c.input_pins)
                                  for c in nl.combinational_cells)
        assert stats["net_edges"] == expected_net_edges
        assert stats["cell_edges"] == expected_cell_edges

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_sweep_idempotent(self, seed):
        """Sweeping twice removes nothing extra."""
        nl = build_random_netlist(seed, 15)
        # Remove a random output port to create dead logic, then sweep.
        out_ports = [n for n in nl.ports if n.startswith("out")]
        if out_ports:
            nl.remove_port(out_ports[0])
        nl.sweep_dangling()
        assert nl.sweep_dangling() == 0
        nl.validate()
