"""Tests for logic graphs and the functional block generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import LogicGraph, blocks


class TestLogicGraph:
    def test_arity_enforced(self):
        g = LogicGraph("t")
        a = g.add_input("a")
        with pytest.raises(ValueError):
            g.add_gate("NAND2", (a,))

    def test_unknown_op_rejected(self):
        g = LogicGraph("t")
        with pytest.raises(ValueError):
            g.add_gate("NAND99", ())

    def test_forward_reference_rejected(self):
        g = LogicGraph("t")
        a = g.add_input("a")
        with pytest.raises(ValueError):
            g.add_gate("INV", (a + 5,))

    def test_gate_helpers_reject_special_ops(self):
        g = LogicGraph("t")
        g.add_input("a")
        with pytest.raises(ValueError):
            g.add_gate("INPUT", ())
        with pytest.raises(ValueError):
            g.add_gate("DFF", (0,))

    def test_register_placeholder_feedback(self):
        g = LogicGraph("t")
        a = g.add_input("a")
        reg = g.add_register_placeholder()
        nxt = g.add_gate("XOR2", (reg, a))
        g.connect_register(reg, nxt)
        g.mark_output(reg, "q")
        g.validate()
        assert g.nodes[reg].fanin == (nxt,)

    def test_unconnected_placeholder_fails_validation(self):
        g = LogicGraph("t")
        g.add_input("a")
        g.add_register_placeholder()
        with pytest.raises(ValueError):
            g.validate()

    def test_double_connect_rejected(self):
        g = LogicGraph("t")
        a = g.add_input("a")
        reg = g.add_register_placeholder()
        g.connect_register(reg, a)
        with pytest.raises(ValueError):
            g.connect_register(reg, a)

    def test_depth_restarts_at_registers(self):
        g = LogicGraph("t")
        a = g.add_input("a")
        x = g.add_gate("INV", (a,))
        y = g.add_gate("INV", (x,))
        r = g.add_register(y)
        z = g.add_gate("INV", (r,))
        g.mark_output(z, "o")
        assert g.depth() == 2  # a->x->y, then register resets

    def test_fanout_counts_include_outputs(self):
        g = LogicGraph("t")
        a = g.add_input("a")
        x = g.add_gate("INV", (a,))
        g.mark_output(x, "o1")
        g.mark_output(x, "o2")
        assert g.fanout_counts()[x] == 2
        assert g.fanout_counts()[a] == 1

    def test_stats_keys(self):
        g = LogicGraph("t")
        a = g.add_input("a")
        x = g.add_gate("INV", (a,))
        g.add_register(x)
        g.mark_output(x, "o")
        s = g.stats()
        assert s == {"nodes": 3, "gates": 1, "registers": 1, "inputs": 1,
                     "outputs": 1, "depth": 1}


class TestBlocks:
    def _graph_with_inputs(self, n):
        g = LogicGraph("t")
        return g, [g.add_input(f"i{k}") for k in range(n)]

    def test_ripple_adder_width(self):
        g, ins = self._graph_with_inputs(8)
        out = blocks.ripple_adder(g, ins[:4], ins[4:])
        assert len(out) == 5  # 4 sum bits + carry

    def test_ripple_adder_rejects_mismatch(self):
        g, ins = self._graph_with_inputs(5)
        with pytest.raises(ValueError):
            blocks.ripple_adder(g, ins[:2], ins[2:])

    def test_full_adder_gate_count(self):
        g, ins = self._graph_with_inputs(3)
        blocks.full_adder(g, *ins)
        assert g.num_gates == 5  # 2 XOR + 2 AND + 1 OR

    def test_multiplier_width(self):
        g, ins = self._graph_with_inputs(8)
        out = blocks.array_multiplier(g, ins[:4], ins[4:])
        assert len(out) == 8  # 4x4 -> 8 product bits

    def test_xor_reduce_depth_logarithmic(self):
        g, ins = self._graph_with_inputs(16)
        blocks.xor_reduce(g, ins)
        assert g.depth() == 4

    def test_xor_reduce_empty_rejected(self):
        g, _ = self._graph_with_inputs(1)
        with pytest.raises(ValueError):
            blocks.xor_reduce(g, [])

    def test_decoder_output_count(self):
        g, ins = self._graph_with_inputs(3)
        out = blocks.decoder(g, ins)
        assert len(out) == 8

    def test_barrel_rotate_is_rewiring(self):
        g, ins = self._graph_with_inputs(8)
        before = len(g)
        out = blocks.barrel_rotate(g, ins, 3)
        assert len(g) == before  # no gates added
        assert out == ins[-3:] + ins[:-3]

    def test_barrel_shifter_mux_levels(self):
        g, ins = self._graph_with_inputs(11)
        blocks.barrel_shifter(g, ins[:8], ins[8:])
        # 3 select bits -> 3 mux levels of 8 muxes each.
        assert g.num_gates == 24

    def test_counter_has_feedback(self):
        g, ins = self._graph_with_inputs(1)
        regs = blocks.counter(g, 4, ins[0])
        g.mark_output(regs[0], "c0")
        g.validate()
        # Each register's next state references itself through the XOR.
        for reg in regs:
            data = g.nodes[reg].fanin[0]
            assert reg in g.nodes[data].fanin

    def test_shift_register_serial_chain(self):
        g, ins = self._graph_with_inputs(5)
        regs = blocks.shift_register(g, ins[:4], ins[4])
        g.mark_output(regs[-1], "so")
        g.validate()
        assert len(regs) == 4

    def test_fsm_state_feedback_valid(self):
        g, ins = self._graph_with_inputs(3)
        rng = np.random.default_rng(0)
        state = blocks.fsm(g, 4, ins, rng)
        for s in state:
            g.mark_output(s, f"s{s}")
        g.validate()
        assert len(state) == 4

    @settings(max_examples=20, deadline=None)
    @given(width=st.integers(2, 10))
    def test_adder_gate_count_scales_linearly(self, width):
        g = LogicGraph("t")
        a = [g.add_input(f"a{i}") for i in range(width)]
        b = [g.add_input(f"b{i}") for i in range(width)]
        blocks.ripple_adder(g, a, b)
        # Half adder (2 gates) + (width-1) full adders (5 gates each).
        assert g.num_gates == 2 + 5 * (width - 1)

    @settings(max_examples=15, deadline=None)
    @given(n_gates=st.integers(1, 40), seed=st.integers(0, 100))
    def test_random_cone_always_validates(self, n_gates, seed):
        g = LogicGraph("t")
        ins = [g.add_input(f"i{k}") for k in range(4)]
        rng = np.random.default_rng(seed)
        tips = blocks.random_logic_cone(g, ins, n_gates, rng)
        assert tips
        for tip in tips:
            g.mark_output(tip, f"t{tip}")
        g.validate()
        assert g.num_gates == n_gates


class TestMoreBlocks:
    def _graph_with_inputs(self, n):
        from repro.netlist import LogicGraph

        g = LogicGraph("t")
        return g, [g.add_input(f"i{k}") for k in range(n)]

    def test_equality_comparator_width_one(self):
        g, ins = self._graph_with_inputs(2)
        out = blocks.equality_comparator(g, ins[:1], ins[1:])
        g.mark_output(out, "eq")
        g.validate()
        assert g.num_gates == 1  # one XNOR, no reduce tree needed

    def test_mux_word_gate_count(self):
        g, ins = self._graph_with_inputs(9)
        out = blocks.mux_word(g, ins[0], ins[1:5], ins[5:9])
        assert len(out) == 4
        assert g.num_gates == 4

    def test_crc_step_preserves_width(self):
        g, ins = self._graph_with_inputs(9)
        state = blocks.crc_step(g, ins[:8], ins[8], taps=(3, 5))
        assert len(state) == 8
