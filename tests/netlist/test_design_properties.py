"""Property-style tests over the whole benchmark family."""

import numpy as np
import pytest

from repro.netlist import (
    DESIGN_GENERATORS,
    TechMapper,
    make_design,
    map_design,
)
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def libs():
    return make_sky130_library(), make_asap7_library()


ALL_DESIGNS = sorted(DESIGN_GENERATORS)


class TestWholeFamily:
    @pytest.mark.parametrize("name", ALL_DESIGNS)
    def test_every_design_has_sequential_logic(self, name):
        """All benchmarks are clocked designs (endpoints at flops)."""
        g = make_design(name)
        assert g.registers, name

    @pytest.mark.parametrize("name", ALL_DESIGNS)
    def test_mapped_netlists_have_no_dangling_logic(self, name, libs):
        sky, asap = libs
        for lib in (sky, asap):
            nl = map_design(make_design(name), lib)
            for cell in nl.cells.values():
                out_net = cell.output_pin.net
                assert out_net is not None and out_net.sinks, \
                    f"{name}: {cell.name} drives nothing"

    @pytest.mark.parametrize("name", ALL_DESIGNS)
    def test_node_mapping_uses_only_library_cells(self, name, libs):
        sky, asap = libs
        nl = map_design(make_design(name), asap)
        for cell in nl.cells.values():
            assert cell.ref.name in asap.cells

    @pytest.mark.parametrize("scale", [0.7, 1.0, 1.4])
    def test_scale_is_monotone_for_datapath_designs(self, scale):
        """Bigger scale never shrinks a datapath-dominated design."""
        base = len(make_design("hwacha"))
        scaled = len(DESIGN_GENERATORS["hwacha"](scale=scale))
        if scale >= 1.0:
            assert scaled >= base
        else:
            assert scaled <= base

    def test_designs_are_structurally_distinct(self, libs):
        """No two benchmarks map to identical gate histograms."""
        _, asap = libs
        histograms = {}
        for name in ALL_DESIGNS:
            nl = map_design(make_design(name), asap)
            hist = {}
            for cell in nl.cells.values():
                hist[cell.ref.function] = hist.get(cell.ref.function,
                                                   0) + 1
            histograms[name] = tuple(sorted(hist.items()))
        assert len(set(histograms.values())) == len(ALL_DESIGNS)

    def test_mapper_reuse_across_designs(self, libs):
        """One TechMapper instance maps many designs consistently."""
        _, asap = libs
        mapper = TechMapper(asap)
        a = mapper.map(make_design("usbf_device"))
        b = mapper.map(make_design("spiMaster"))
        a.validate()
        b.validate()

    def test_mapper_requires_base_functions(self, libs):
        from repro.techlib import TechLibrary, WireModel

        _, asap = libs
        crippled = TechLibrary(
            name="crippled", node_nm=7.0,
            cells=[asap.pick("INV", 1.0)],
            wire=WireModel(0.01, 0.0001), site=(0.05, 0.27),
            default_clock_period=1.0, primary_input_slew=0.01,
        )
        with pytest.raises(ValueError):
            TechMapper(crippled)
