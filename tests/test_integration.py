"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

from repro.experiments import build_dataset
from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.model import TimingPredictor
from repro.techlib import make_asap7_library, make_sky130_library
from repro.train import OursTrainer, TrainConfig, r2_score, train_pt_ft


@pytest.fixture(scope="module")
def dataset():
    return build_dataset()


class TestDatasetIntegrity:
    def test_every_design_has_consistent_arrays(self, dataset):
        for design in dataset.train + dataset.test:
            k = design.num_endpoints
            assert design.cone_masks.shape[0] == k
            assert len(design.graph.endpoint_names) == k
            assert design.graph.endpoint_rows.shape == (k,)
            assert np.isfinite(design.labels).all()
            assert (design.labels > 0).all()

    def test_endpoint_rows_point_at_endpoint_features(self, dataset):
        for design in dataset.train:
            rows = design.graph.endpoint_rows
            assert rows.max() < design.graph.num_nodes

    def test_node_label_scales_disjoint(self, dataset):
        """The Figure-6 premise holds across the whole dataset."""
        src = np.concatenate([d.labels for d in dataset.train_source])
        tgt = np.concatenate([d.labels for d in dataset.train_target])
        assert np.median(src) > 5 * np.median(tgt)


class TestLearningSignal:
    """Short-but-real training must already beat trivial predictors."""

    def test_ours_beats_mean_predictor_on_train(self, dataset):
        model = TimingPredictor(dataset.in_features, seed=0)
        OursTrainer(model, dataset.train,
                    TrainConfig(steps=40, seed=0)).fit()
        design = dataset.train_target[0]
        r2 = r2_score(design.labels, model.predict(design))
        assert r2 > 0.0  # mean predictor scores exactly 0

    def test_pt_ft_beats_mean_predictor_on_test(self, dataset):
        model = train_pt_ft(dataset.train, dataset.in_features,
                            TrainConfig(steps=40, seed=0))
        scores = [r2_score(d.labels, model.predict(d))
                  for d in dataset.test]
        assert np.mean(scores) > 0.0

    def test_deterministic_training(self, dataset):
        def train_once():
            model = TimingPredictor(dataset.in_features, seed=3)
            OursTrainer(model, dataset.train,
                        TrainConfig(steps=5, seed=3)).fit()
            return model.predict(dataset.test[0])

        np.testing.assert_allclose(train_once(), train_once())


class TestReverseTransfer:
    """Extension: transfer in the opposite direction (7nm -> 130nm).

    The framework is symmetric in the two nodes; swapping roles must
    train and produce finite predictions on 130nm targets.
    """

    def test_seven_to_130(self):
        libraries = {"130nm": make_sky130_library(),
                     "7nm": make_asap7_library()}
        vocab = GateVocabulary(list(libraries.values()))
        train = [
            run_flow("smallboom", "130nm", libraries, vocab=vocab,
                     resolution=16),
            run_flow("jpeg", "7nm", libraries, vocab=vocab, resolution=16),
            run_flow("linkruncca", "7nm", libraries, vocab=vocab,
                     resolution=16),
        ]
        test = run_flow("arm9", "130nm", libraries, vocab=vocab,
                        resolution=16)
        normalize_features([d.graph for d in train + [test]])
        model = TimingPredictor(train[0].graph.features.shape[1], seed=0)
        OursTrainer(model, train, TrainConfig(steps=40, seed=0)).fit()
        pred = model.predict(test)
        assert np.isfinite(pred).all()
        # Predictions land nearer the 130nm training scale than the
        # (an order of magnitude larger) raw-7nm-vs-130nm gap would put
        # a scale-confused model.
        target_mean = train[0].labels.mean()
        assert abs(pred.mean() - target_mean) < target_mean
