"""RunLogger round-trips, manifest provenance, and the null logger."""

import json

import pytest

from repro.flow.cache import CODE_SALT
from repro.obs import (
    NullRunLogger,
    RunLogger,
    build_manifest,
    default_run_dir,
    load_run,
    validate_run_dir,
)
from repro.train import TrainConfig
from repro.util import reset_timings, timed


class TestRunLogger:
    def test_full_run_round_trips(self, tmp_path):
        run_dir = tmp_path / "run"
        with RunLogger(run_dir) as logger:
            logger.log_manifest(config=TrainConfig(steps=3),
                                seeds={"model": 0, "train": 0})
            for t in range(3):
                logger.log_step(t, {"lr": 1e-3, "step_seconds": 0.01,
                                    "total": 3.0 - t, "warmup": t == 0})
            logger.log_validation(2, score=0.75, best=True)
            logger.log_event("final_weights", source="best-checkpoint")
            logger.log_summary(per_design={"jpeg": {"r2": 0.9}},
                               timings={}, mean_r2=0.9)
        assert validate_run_dir(run_dir) == []
        run = load_run(run_dir)
        steps = [r for r in run["records"] if r["kind"] == "step"]
        assert [r["step"] for r in steps] == [0, 1, 2]
        assert steps[0]["warmup"] is True
        (val,) = [r for r in run["records"] if r["kind"] == "validation"]
        assert val == {"kind": "validation", "step": 2, "score": 0.75,
                       "best": True}
        (final,) = [r for r in run["records"]
                    if r["kind"] == "final_weights"]
        assert final["source"] == "best-checkpoint"
        assert run["summary"]["per_design"]["jpeg"]["r2"] == 0.9

    def test_steps_streamed_line_by_line(self, tmp_path):
        """Each record is flushed on write — a killed run keeps them."""
        logger = RunLogger(tmp_path / "run")
        logger.log_step(0, {"lr": 1e-3, "step_seconds": 0.01})
        raw = (tmp_path / "run" / "steps.jsonl").read_text()
        assert json.loads(raw)["step"] == 0  # visible before close()
        logger.close()

    def test_invalid_record_raises_at_write_time(self, tmp_path):
        with RunLogger(tmp_path / "run") as logger:
            with pytest.raises(ValueError, match="telemetry"):
                logger.log_step(0, {"lr": 1e-3, "step_seconds": 0.01,
                                    "payload": {"not": "scalar"}})
            with pytest.raises(ValueError, match="telemetry"):
                logger.log_event("unknown_kind", x=1)

    def test_invalid_summary_raises(self, tmp_path):
        with RunLogger(tmp_path / "run") as logger:
            with pytest.raises(ValueError, match="summary"):
                logger.log_summary(per_design="not-a-mapping", timings={})

    def test_summary_defaults_to_timing_registry(self, tmp_path):
        reset_timings()
        with timed("obs.test.phase"):
            pass
        with RunLogger(tmp_path / "run") as logger:
            summary = logger.log_summary(per_design={})
        assert "obs.test.phase" in summary["timings"]
        assert summary["timings"]["obs.test.phase"]["calls"] == 1
        reset_timings()


class TestManifest:
    def test_manifest_is_complete_provenance(self, tmp_path):
        config = TrainConfig(steps=7, lr=5e-4, seed=3)
        with RunLogger(tmp_path / "run") as logger:
            manifest = logger.log_manifest(
                config=config, seeds={"model": 1, "train": 3, "data": 0})
        on_disk = json.loads(
            (tmp_path / "run" / "manifest.json").read_text())
        assert on_disk == manifest
        # The full config, field by field (so runs can be diffed).
        assert manifest["train_config"] == {**config.__dict__}
        assert manifest["seeds"] == {"model": 1, "train": 3, "data": 0}
        assert manifest["code"]["code_salt"] == CODE_SALT
        assert manifest["versions"]["python"]
        assert manifest["versions"]["numpy"]

    def test_seeds_default_from_config(self):
        manifest = build_manifest(config=TrainConfig(seed=42))
        assert manifest["seeds"] == {"train": 42}

    def test_mapping_config_accepted(self):
        manifest = build_manifest(config={"steps": 2}, seeds={"train": 0})
        assert manifest["train_config"] == {"steps": 2}

    def test_extra_sections_merged(self):
        manifest = build_manifest(config=TrainConfig(),
                                  extra={"dataset": {"scale": 1.0}})
        assert manifest["dataset"] == {"scale": 1.0}


class TestDefaultRunDir:
    def test_layout_and_uniquification(self, tmp_path):
        first = default_run_dir(tag="smoke", root=tmp_path)
        assert first.parent == tmp_path
        assert first.name.endswith("-smoke")
        first.mkdir(parents=True)
        second = default_run_dir(tag="smoke", root=tmp_path)
        assert second != first
        assert second.name.startswith(first.name)


class TestNullRunLogger:
    def test_api_compatible_and_silent(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with NullRunLogger() as logger:
            assert logger.log_manifest(config=TrainConfig()) == {}
            logger.log_step(0, {"lr": 1.0, "step_seconds": 0.0})
            logger.log_validation(0, 0.5, False)
            logger.log_event("final_weights", source="swa")
            assert logger.log_summary() == {}
        assert list(tmp_path.iterdir()) == []  # wrote nothing
