"""ASCII rendering of run telemetry (``repro report-run``)."""

from repro.obs import (
    RunLogger,
    manifest_diff,
    render_loss_curve,
    render_run,
)
from repro.train import TrainConfig


def _write_run(run_dir, steps=8, tag_config=None):
    config = tag_config or TrainConfig(steps=steps)
    with RunLogger(run_dir) as logger:
        logger.log_manifest(config=config, seeds={"train": config.seed})
        for t in range(steps):
            logger.log_step(t, {"lr": 1e-3, "step_seconds": 0.01,
                                "total": 10.0 / (t + 1), "elbo": 9.0 / (t + 1),
                                "warmup": False})
        logger.log_validation(steps - 1, score=0.8, best=True)
        logger.log_event("final_weights", source="final-iterate")
        logger.log_summary(
            per_design={"jpeg": {"r2": 0.91}, "spiMaster": {"r2": 0.84}},
            timings={"train.features": {"calls": steps, "seconds": 1.5},
                     "flow.run": {"calls": 2, "seconds": 4.0}},
            mean_r2=0.875)
    return run_dir


class TestLossCurve:
    def test_empty_series(self):
        assert "(no data)" in render_loss_curve([], title="loss")

    def test_constant_series(self):
        out = render_loss_curve([2.0, 2.0, 2.0], title="flat")
        assert "(constant)" in out
        assert "flat" in out

    def test_annotations_and_size(self):
        values = [float(v) for v in range(100, 0, -1)]
        out = render_loss_curve(values, title="total", width=40, height=6)
        assert "first 100" in out and "last 1" in out
        assert "min" in out and "max" in out
        # Bucket-averaged down to the requested width.
        chart_rows = [l for l in out.splitlines() if "|" in l]
        assert len(chart_rows) == 6
        assert all(len(l.split("|", 1)[1]) <= 40 for l in chart_rows)
        assert "steps 0..99" in out

    def test_extremes_land_inside_the_chart(self):
        out = render_loss_curve([1.0, 5.0, 3.0], title="t", height=4)
        rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        assert "*" in rows[0]   # max in the top row
        assert "*" in rows[-1]  # min in the bottom row


class TestManifestDiff:
    def test_identical_manifests_agree(self):
        m = {"train_config": {"steps": 5}, "created": "now"}
        assert "agree" in manifest_diff(m, m)

    def test_changed_field_shown_with_both_values(self):
        a = {"train_config": {"steps": 5, "lr": 1e-3}}
        b = {"train_config": {"steps": 9, "lr": 1e-3}}
        out = manifest_diff(a, b)
        assert "~ train_config.steps: 5 -> 9" in out
        assert "lr" not in out  # unchanged fields stay silent

    def test_one_sided_fields_labelled(self):
        out = manifest_diff({"x": 1}, {"y": 2}, "left", "right")
        assert "- x: 1  (only in left)" in out
        assert "+ y: 2  (only in right)" in out

    def test_created_and_argv_ignored(self):
        a = {"created": "t1", "argv": ["a"], "seeds": {"train": 0}}
        b = {"created": "t2", "argv": ["b"], "seeds": {"train": 0}}
        assert "agree" in manifest_diff(a, b)


class TestRenderRun:
    def test_full_report_sections(self, tmp_path):
        run_dir = _write_run(tmp_path / "run")
        out = render_run(run_dir)
        assert "code_salt" in out
        assert "config:" in out and "steps=8" in out
        assert "total  [first" in out   # loss chart with annotations
        assert "elbo  [first" in out
        assert "validation R^2" in out and "0.8000 *" in out
        assert "final weights: final-iterate" in out
        assert "jpeg" in out and "r2=0.9100" in out
        assert "mean_r2: 0.875" in out
        assert "flow.run" in out       # worker-phase timings included
        assert "train.features" in out

    def test_bookkeeping_fields_are_not_charted(self, tmp_path):
        run_dir = _write_run(tmp_path / "run")
        out = render_run(run_dir)
        assert "lr  [first" not in out
        assert "step_seconds  [first" not in out

    def test_empty_dir_renders_placeholders(self, tmp_path):
        out = render_run(tmp_path)
        assert "(no manifest.json)" in out
        assert "(no step records)" in out

    def test_diff_section(self, tmp_path):
        run_a = _write_run(tmp_path / "a", steps=4)
        run_b = _write_run(tmp_path / "b", steps=4,
                           tag_config=TrainConfig(steps=4, lr=9e-4))
        out = render_run(run_a, diff_against=run_b)
        assert f"manifest diff vs {run_b}" in out
        assert "~ train_config.lr:" in out

    def test_last_final_weights_event_wins(self, tmp_path):
        """PT-FT emits one event per stage; report the returned weights."""
        with RunLogger(tmp_path / "run") as logger:
            logger.log_step(0, {"lr": 1e-3, "step_seconds": 0.01,
                                "loss": 1.0, "stage": "pretrain"})
            logger.log_event("final_weights", source="final-iterate",
                             stage="pretrain")
            logger.log_event("final_weights", source="best-checkpoint",
                             stage="finetune")
        out = render_run(tmp_path / "run")
        assert "final weights: best-checkpoint" in out
