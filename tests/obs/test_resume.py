"""Crash artifacts in telemetry: torn tails, resume append, manifest notes."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs import (
    RunLogger,
    load_run,
    read_records,
    repair_jsonl_tail,
    validate_run_dir,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def write_lines(path, lines, tail=""):
    path.write_text("".join(line + "\n" for line in lines) + tail,
                    encoding="utf-8")


def step_line(step, total=1.0):
    return json.dumps({"kind": "step", "step": step, "lr": 1e-3,
                       "step_seconds": 0.01, "total": total},
                      sort_keys=True)


class TestRepairJsonlTail:
    def test_clean_file_untouched(self, tmp_path):
        path = tmp_path / "steps.jsonl"
        write_lines(path, [step_line(0), step_line(1)])
        before = path.read_bytes()
        assert repair_jsonl_tail(path) is None
        assert path.read_bytes() == before

    def test_missing_file_is_noop(self, tmp_path):
        assert repair_jsonl_tail(tmp_path / "absent.jsonl") is None

    def test_truncates_line_without_newline(self, tmp_path):
        path = tmp_path / "steps.jsonl"
        write_lines(path, [step_line(0)], tail='{"kind": "step", "ste')
        fragment = repair_jsonl_tail(path)
        assert fragment == '{"kind": "step", "ste'
        records, torn = read_records(path)
        assert torn is None
        assert [r["step"] for r in records] == [0]

    def test_truncates_complete_but_unparseable_final_line(self, tmp_path):
        path = tmp_path / "steps.jsonl"
        write_lines(path, [step_line(0), '{"kind": "step", "broken'])
        fragment = repair_jsonl_tail(path)
        assert "broken" in fragment
        records, torn = read_records(path)
        assert torn is None
        assert len(records) == 1

    def test_midstream_corruption_left_alone(self, tmp_path):
        path = tmp_path / "steps.jsonl"
        write_lines(path, [step_line(0), "not json at all", step_line(2)])
        before = path.read_bytes()
        assert repair_jsonl_tail(path) is None
        assert path.read_bytes() == before  # not a tail problem
        with pytest.raises(ValueError, match="mid-stream"):
            read_records(path)


class TestResumeLogger:
    def test_resume_appends_after_repair(self, tmp_path):
        run_dir = tmp_path / "run"
        with RunLogger(run_dir) as logger:
            logger.log_step(0, {"lr": 1e-3, "step_seconds": 0.01,
                                "total": 2.0})
        steps_path = run_dir / "steps.jsonl"
        # Simulate a crash mid-write of step 1.
        with open(steps_path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "step", "step": 1, "to')
        with RunLogger(run_dir, resume=True, resume_step=1) as logger:
            logger.log_step(1, {"lr": 1e-3, "step_seconds": 0.01,
                                "total": 1.5})
        records, torn = read_records(steps_path)
        assert torn is None
        assert [r["step"] for r in records] == [0, 1]

    def test_resume_drops_steps_past_checkpoint(self, tmp_path):
        """The crashed process logged steps 0..4 but the checkpoint is
        at 3: resuming re-executes 3 and 4, so the stale copies go."""
        run_dir = tmp_path / "run"
        with RunLogger(run_dir) as logger:
            for t in range(5):
                logger.log_step(t, {"lr": 1e-3, "step_seconds": 0.01,
                                    "total": 5.0 - t})
            logger.log_event("note", message="events carry no step")
        with RunLogger(run_dir, resume=True, resume_step=3) as logger:
            logger.log_step(3, {"lr": 1e-3, "step_seconds": 0.01,
                                "total": 99.0})
        records, _ = read_records(run_dir / "steps.jsonl")
        steps = [r for r in records if r["kind"] == "step"]
        assert [r["step"] for r in steps] == [0, 1, 2, 3]
        assert steps[-1]["total"] == 99.0  # the re-logged copy survives
        assert any(r["kind"] == "note" for r in records)  # events kept

    def test_fresh_logger_still_truncates(self, tmp_path):
        run_dir = tmp_path / "run"
        with RunLogger(run_dir) as logger:
            logger.log_step(0, {"lr": 1e-3, "step_seconds": 0.01})
        with RunLogger(run_dir) as logger:  # resume NOT set
            logger.log_step(0, {"lr": 2e-3, "step_seconds": 0.01})
        records, _ = read_records(run_dir / "steps.jsonl")
        assert len(records) == 1
        assert records[0]["lr"] == 2e-3

    def test_annotate_manifest_merges(self, tmp_path):
        run_dir = tmp_path / "run"
        with RunLogger(run_dir) as logger:
            logger.log_manifest(seeds={"train": 0})
            logger.annotate_manifest(interrupted=True,
                                     interrupted_at_step=7)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["interrupted"] is True
        assert manifest["interrupted_at_step"] == 7
        assert manifest["seeds"] == {"train": 0}  # original fields kept
        with RunLogger(run_dir, resume=True) as logger:
            logger.annotate_manifest(interrupted=False,
                                     resumed_from_step=7)
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["interrupted"] is False
        assert manifest["resumed_from_step"] == 7


class TestValidationWithTornTail:
    def make_torn_run(self, tmp_path):
        run_dir = tmp_path / "run"
        with RunLogger(run_dir) as logger:
            logger.log_manifest(seeds={"train": 0})
            logger.log_step(0, {"lr": 1e-3, "step_seconds": 0.01})
            logger.log_summary(per_design={}, timings={})
        with open(run_dir / "steps.jsonl", "a", encoding="utf-8") as f:
            f.write('{"kind": "step", "st')
        return run_dir

    def test_torn_tail_is_warning_not_error(self, tmp_path):
        run_dir = self.make_torn_run(tmp_path)
        warnings = []
        assert validate_run_dir(run_dir, warnings=warnings) == []
        assert any("torn trailing line" in w for w in warnings)

    def test_midstream_corruption_is_error(self, tmp_path):
        run_dir = self.make_torn_run(tmp_path)
        write_lines(run_dir / "steps.jsonl",
                    [step_line(0), "garbage", step_line(2)])
        problems = validate_run_dir(run_dir)
        assert problems
        assert any("not JSON" in p for p in problems)

    def test_cli_validator_exits_zero_on_torn_tail(self, tmp_path):
        run_dir = self.make_torn_run(tmp_path)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", str(run_dir)],
            capture_output=True, text=True, env={"PYTHONPATH": SRC,
                                                 "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "warning" in proc.stdout
        assert "torn trailing line" in proc.stdout

    def test_load_run_surfaces_torn_tail(self, tmp_path):
        run_dir = self.make_torn_run(tmp_path)
        run = load_run(run_dir)
        assert run["torn_tail"].startswith('{"kind"')
        assert [r["step"] for r in run["records"]] == [0]


class TestAtomicManifestWrite:
    def test_crash_during_write_preserves_manifest(self, tmp_path,
                                                   monkeypatch):
        import os as os_mod

        run_dir = tmp_path / "run"
        with RunLogger(run_dir) as logger:
            logger.log_manifest(seeds={"train": 0})
            before = (run_dir / "manifest.json").read_bytes()

            def dying_replace(src, dst):
                raise OSError("simulated kill")

            monkeypatch.setattr("repro.obs.logger.os.replace",
                                dying_replace)
            with pytest.raises(OSError):
                logger.annotate_manifest(interrupted=True)
            monkeypatch.undo()
            assert (run_dir / "manifest.json").read_bytes() == before
