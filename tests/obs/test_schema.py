"""Write-time schema validation for run-telemetry artifacts."""

import json

from repro.obs import (
    validate_bench_serving,
    validate_manifest,
    validate_record,
    validate_run_dir,
    validate_summary,
)


class TestRecordSchema:
    def test_valid_records_pass(self):
        valid = [
            {"kind": "step", "step": 0, "lr": 1e-3, "step_seconds": 0.1,
             "total": 3.5, "elbo": 3.0, "warmup": True},
            {"kind": "validation", "step": 5, "score": 0.9, "best": True},
            {"kind": "final_weights", "source": "swa"},
            {"kind": "note", "message": "hello"},
        ]
        for record in valid:
            assert validate_record(record) == []

    def test_non_object_rejected(self):
        assert validate_record([1, 2]) != []
        assert validate_record("x") != []

    def test_missing_kind_rejected(self):
        assert "kind" in validate_record({"step": 0})[0]

    def test_unknown_kind_rejected(self):
        (problem,) = validate_record({"kind": "mystery"})
        assert "mystery" in problem

    def test_missing_required_field(self):
        problems = validate_record({"kind": "step", "step": 0, "lr": 1e-3})
        assert any("step_seconds" in p for p in problems)

    def test_bool_rejected_in_numeric_slot(self):
        problems = validate_record({"kind": "step", "step": 0,
                                    "lr": True, "step_seconds": 0.1})
        assert any("lr" in p for p in problems)

    def test_numeric_rejected_in_bool_slot(self):
        problems = validate_record({"kind": "validation", "step": 0,
                                    "score": 0.5, "best": 1})
        assert any("best" in p for p in problems)

    def test_extra_fields_must_be_scalars(self):
        problems = validate_record({"kind": "note", "message": "m",
                                    "payload": {"nested": 1}})
        assert any("payload" in p for p in problems)


class TestManifestSchema:
    def _valid(self):
        return {
            "created": "2026-08-06T00:00:00",
            "train_config": {"steps": 5},
            "seeds": {"train": 0},
            "code": {"code_salt": "flow-v3", "git_sha": None},
            "versions": {"python": "3.x", "numpy": "1.x"},
        }

    def test_valid_manifest_passes(self):
        assert validate_manifest(self._valid()) == []

    def test_missing_dotted_field_named(self):
        manifest = self._valid()
        del manifest["code"]["code_salt"]
        (problem,) = validate_manifest(manifest)
        assert "code.code_salt" in problem

    def test_missing_top_level_field_named(self):
        manifest = self._valid()
        del manifest["seeds"]
        assert any("seeds" in p for p in validate_manifest(manifest))


class TestSummarySchema:
    def test_valid_summary_passes(self):
        summary = {"per_design": {"jpeg": {"r2": 0.9}},
                   "timings": {"flow.run": {"calls": 1, "seconds": 0.5}},
                   "mean_r2": 0.9}
        assert validate_summary(summary) == []

    def test_missing_keys_named(self):
        problems = validate_summary({})
        assert any("per_design" in p for p in problems)
        assert any("timings" in p for p in problems)

    def test_malformed_timing_entry_rejected(self):
        summary = {"per_design": {}, "timings": {"phase": {"calls": 1}}}
        assert any("phase" in p for p in validate_summary(summary))


class TestRunDirValidation:
    def _write_run(self, run_dir):
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / "manifest.json").write_text(json.dumps({
            "created": "t", "train_config": {}, "seeds": {},
            "code": {"code_salt": "s"},
            "versions": {"python": "3", "numpy": "1"},
        }))
        (run_dir / "steps.jsonl").write_text(
            '{"kind": "step", "step": 0, "lr": 0.001, '
            '"step_seconds": 0.1}\n')
        (run_dir / "summary.json").write_text(
            json.dumps({"per_design": {}, "timings": {}}))

    def test_complete_run_dir_validates(self, tmp_path):
        self._write_run(tmp_path / "run")
        assert validate_run_dir(tmp_path / "run") == []

    def test_missing_artifacts_all_named(self, tmp_path):
        problems = validate_run_dir(tmp_path)
        assert any("manifest.json" in p for p in problems)
        assert any("steps.jsonl" in p for p in problems)
        assert any("summary.json" in p for p in problems)

    def test_bad_jsonl_line_located(self, tmp_path):
        # Mid-stream corruption stays an error with its line number; a
        # torn *final* line is a crash artifact and only warns (see
        # tests/obs/test_resume.py).
        self._write_run(tmp_path / "run")
        steps = tmp_path / "run" / "steps.jsonl"
        good = steps.read_text()
        steps.write_text(good + "not json\n" + good)
        problems = validate_run_dir(tmp_path / "run")
        assert any("steps.jsonl:2" in p for p in problems)


class TestBenchServingSchema:
    @staticmethod
    def _valid_payload():
        return {
            "coalesced": {
                "requests_per_second": 800.0, "p50_ms": 12.0,
                "p99_ms": 20.0, "clients": 12, "requests": 300,
                "batch_window_ms": 5.0, "max_batch": 12,
                "mean_batch_size": 10.0,
            },
            "uncoalesced": {
                "requests_per_second": 400.0, "p50_ms": 27.0,
                "p99_ms": 60.0, "clients": 12, "requests": 300,
            },
            "speedup": {"throughput_ratio": 2.0},
            "equivalence": {"max_abs_diff": 1e-18, "atol": 1e-10},
            "smoke": False,
        }

    def test_valid_payload_passes(self):
        assert validate_bench_serving(self._valid_payload()) == []

    def test_extra_fields_allowed(self):
        payload = self._valid_payload()
        payload["workload"] = {"mc_samples": 256}
        payload["coalesced"]["extra"] = "ok"
        assert validate_bench_serving(payload) == []

    def test_non_object_rejected(self):
        assert validate_bench_serving([1, 2]) \
            == ["bench payload is not an object"]

    def test_missing_section_named(self):
        payload = self._valid_payload()
        del payload["speedup"]
        assert validate_bench_serving(payload) \
            == ["bench missing section 'speedup'"]

    def test_missing_field_named(self):
        payload = self._valid_payload()
        del payload["coalesced"]["mean_batch_size"]
        assert validate_bench_serving(payload) \
            == ["bench coalesced.mean_batch_size missing"]

    def test_bool_rejected_in_numeric_slot(self):
        payload = self._valid_payload()
        payload["uncoalesced"]["p50_ms"] = True
        problems = validate_bench_serving(payload)
        assert problems and "uncoalesced.p50_ms" in problems[0]

    def test_missing_smoke_flag(self):
        payload = self._valid_payload()
        del payload["smoke"]
        assert validate_bench_serving(payload) \
            == ["bench missing boolean 'smoke' flag"]
