"""The tensor-contract checker over recorded compile traces.

Two angles: hand-built :class:`~repro.nn.compile.TraceOp` records pin
each central check (dtype narrowing, aliasing, shape contracts) with
surgical inputs, and real traces through the autograd engine confirm
the metadata exporter and the whole gradcheck-case sweep come back
clean — all without executing a single training step.
"""

import numpy as np
import pytest

from repro.check.contracts import (CONTRACTS, audit_contract_coverage,
                                   check_records, run_contract_checks)
from repro.nn import Tensor
from repro.nn import compile as nc
from repro.nn.compile import KERNELS, TraceOp, tape_metadata

F64 = np.dtype(np.float64)
F32 = np.dtype(np.float32)


def _rec(op, out_shape, in_shapes, out_dtype=F64, in_dtypes=None,
         attrs=None, aliases=None, index=0):
    in_dtypes = in_dtypes if in_dtypes is not None \
        else [F64] * len(in_shapes)
    aliases = aliases if aliases is not None else [False] * len(in_shapes)
    return TraceOp(op, tuple(out_shape), out_dtype,
                   [tuple(s) for s in in_shapes], list(in_dtypes),
                   dict(attrs or {}), list(aliases), index)


def _messages(records):
    return [f.message for f in check_records(records, "test")]


# ----------------------------------------------------------------------
# Central checks on hand-built records
# ----------------------------------------------------------------------
class TestCentralChecks:
    def test_clean_record_produces_no_findings(self):
        assert _messages([_rec("add", (3, 4), [(3, 4), (3, 4)])]) == []

    def test_unknown_kernel_is_flagged(self):
        msgs = _messages([_rec("frobnicate", (3,), [(3,)])])
        assert len(msgs) == 1
        assert "no registered compile kernel" in msgs[0]

    def test_dtype_narrowing_is_flagged(self):
        msgs = _messages([_rec("add", (3,), [(3,), (3,)],
                               out_dtype=F32, in_dtypes=[F64, F64])])
        assert len(msgs) == 1
        assert "dtype narrowed" in msgs[0]

    def test_uniform_float32_is_not_narrowing(self):
        assert _messages([_rec("add", (3,), [(3,), (3,)],
                               out_dtype=F32,
                               in_dtypes=[F32, F32])]) == []

    def test_aliasing_on_non_view_op_is_flagged(self):
        msgs = _messages([_rec("add", (3,), [(3,), (3,)],
                               aliases=[True, False])])
        assert len(msgs) == 1
        assert "aliases input(s) [0]" in msgs[0]

    def test_aliasing_on_view_op_is_expected(self):
        assert _messages([_rec("reshape", (6,), [(2, 3)],
                               aliases=[True])]) == []


class TestShapeContracts:
    def test_broadcast_failure(self):
        msgs = _messages([_rec("add", (3,), [(3,), (4,)])])
        assert any("do not broadcast" in m for m in msgs)

    def test_elementwise_wrong_output_shape(self):
        msgs = _messages([_rec("mul", (3,), [(3, 4), (3, 4)])])
        assert any("broadcast of inputs" in m for m in msgs)

    def test_matmul_inner_dimension_mismatch(self):
        msgs = _messages([_rec("matmul", (3, 6), [(3, 4), (5, 6)])])
        assert any("inner dimensions disagree" in m for m in msgs)

    def test_matmul_wrong_output_shape(self):
        msgs = _messages([_rec("matmul", (4, 4), [(3, 4), (4, 6)])])
        assert any("matmul output shape" in m for m in msgs)

    def test_reshape_element_count_change(self):
        msgs = _messages([_rec("reshape", (7,), [(2, 3)])])
        assert any("changes element count" in m for m in msgs)

    def test_reduce_shape_rule(self):
        clean = _rec("sum", (3,), [(3, 4)], attrs={"axis": 1})
        wrong = _rec("sum", (4,), [(3, 4)],
                     attrs={"axis": 1, "keepdims": False})
        assert _messages([clean]) == []
        assert any("should yield" in m for m in _messages([wrong]))

    def test_every_kernel_has_a_contract(self):
        assert audit_contract_coverage() == []
        assert set(KERNELS) <= set(CONTRACTS)

    def test_coverage_audit_fires_on_uncovered_kernel(self, monkeypatch):
        monkeypatch.setitem(KERNELS, "fake_op", lambda: None)
        findings = audit_contract_coverage()
        assert len(findings) == 1
        assert findings[0].rule == "contract-coverage"
        assert "'fake_op' has no shape/dtype contract" in findings[0].message


# ----------------------------------------------------------------------
# Real traces through the engine
# ----------------------------------------------------------------------
class TestRealTraces:
    def test_tape_metadata_exports_records(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        w = Tensor(np.ones((3, 2)), requires_grad=True)
        with nc.trace() as tape:
            y = ((x @ w).relu().sum())
        records = tape_metadata(tape)
        assert [r.op for r in records] == ["matmul", "relu", "sum"]
        first = records[0]
        assert first.out_shape == (2, 2)
        assert tuple(first.in_shapes) == ((2, 3), (3, 2))
        assert all(d == F64 for d in first.in_dtypes)
        assert check_records(records, "smoke") == []

    def test_view_op_alias_recorded_and_accepted(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        with nc.trace() as tape:
            y = x.reshape(2, 3).sum()
        records = tape_metadata(tape)
        reshape_rec = next(r for r in records if r.op == "reshape")
        assert any(reshape_rec.aliases)
        assert check_records(records, "views") == []

    def test_full_gradcheck_sweep_is_clean(self):
        # Every gradcheck case traces and validates without ever
        # building a CompiledStep or running a training step.
        assert run_contract_checks() == []
