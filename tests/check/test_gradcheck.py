"""Tests for the autograd contract auditor."""

import numpy as np

from repro.check.gradcheck import (
    CASES,
    OpCase,
    audit_coverage,
    check_case,
    check_no_grad,
    functional_ops,
    run_gradcheck,
)
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.tensor import _finish


class TestDiscovery:
    def test_functional_surface_discovered(self):
        ops = functional_ops()
        assert {"conv2d", "max_pool2d", "avg_pool2d", "softmax",
                "log_softmax", "mse_loss", "gaussian_nll",
                "dropout"} <= set(ops)
        # Private helpers and re-exports stay out of the audit surface.
        assert "Tensor" not in ops
        assert "as_tensor" not in ops

    def test_every_functional_op_has_a_case(self):
        assert audit_coverage() == []

    def test_fused_sweep_is_enrolled(self):
        assert any(c.op == "levelized_sweep" for c in CASES)

    def test_new_op_without_case_fails_audit(self, monkeypatch):
        def frobnicate(x):
            return x

        frobnicate.__module__ = F.__name__
        monkeypatch.setattr(F, "frobnicate", frobnicate, raising=False)
        findings = audit_coverage()
        assert [f for f in findings if "frobnicate" in f.path]


class TestHarness:
    def test_all_registered_cases_pass(self):
        assert run_gradcheck() == []

    def test_wrong_backward_is_caught(self):
        def bad_scale(x):
            def backward(grad, out):
                out._send(x, grad * 3.0)  # truth is 2.0

            return _finish(x.data * 2.0, (x,), backward)

        case = OpCase("bad_scale", "unit",
                      lambda: (bad_scale,
                               {"x": np.linspace(-1.0, 1.0, 5)}))
        problems = check_case(case)
        assert any("gradient mismatch" in p for p in problems)

    def test_nan_forward_is_caught(self):
        def nan_op(x):
            return _finish(np.full_like(x.data, np.nan), (x,),
                           lambda grad, out: out._send(x, grad))

        case = OpCase("nan_op", "unit",
                      lambda: (nan_op, {"x": np.ones(3)}))
        assert any("NaN" in p for p in check_case(case))

    def test_nan_gradient_is_caught(self):
        def nan_grad(x):
            return _finish(x.data.copy(), (x,),
                           lambda grad, out: out._send(
                               x, np.full_like(grad, np.inf)))

        case = OpCase("nan_grad", "unit",
                      lambda: (nan_grad, {"x": np.ones(3)}))
        assert any("NaN/inf" in p for p in check_case(case))

    def test_dtype_drift_is_caught(self):
        def downcast(x):
            # The Tensor constructor coerces to float64, so a drifting op
            # is one that swaps the buffer after graph construction —
            # exactly the silent failure mode the auditor screens for.
            out = _finish(x.data * 2.0, (x,),
                          lambda grad, out: out._send(x, grad * 2.0))
            out.data = out.data.astype(np.float32)
            return out

        case = OpCase("downcast", "unit",
                      lambda: (downcast, {"x": np.ones(3)}))
        assert any("dtype" in p for p in check_case(case))

    def test_missing_gradient_is_caught(self):
        def swallow(x):
            return _finish(x.data * 2.0, (x,), lambda grad, out: None)

        case = OpCase("swallow", "unit",
                      lambda: (swallow, {"x": np.ones(3)}))
        assert any("no gradient reached" in p for p in check_case(case))

    def test_non_tensor_return_is_caught(self):
        case = OpCase("raw", "unit",
                      lambda: (lambda x: x.data, {"x": np.ones(3)}))
        assert any("expected Tensor" in p for p in check_case(case))

    def test_correct_custom_op_passes(self):
        def double(x):
            def backward(grad, out):
                out._send(x, grad * 2.0)

            return _finish(x.data * 2.0, (x,), backward)

        case = OpCase("double", "unit",
                      lambda: (double, {"x": np.linspace(-1.0, 1.0, 7)}))
        assert check_case(case) == []

    def test_no_grad_contract_holds_for_registry(self):
        for op_case in CASES:
            assert check_no_grad(op_case) == [], op_case.op

    def test_no_grad_graph_leak_is_caught(self):
        def leaky(x):
            # Hand-wires a graph node, bypassing the Tensor._make gate
            # that normally drops wiring under no_grad().
            out = Tensor(x.data * 2.0, requires_grad=True)
            out._parents = (x,)
            out._backward = lambda grad: None
            return out

        case = OpCase("leaky", "unit",
                      lambda: (leaky, {"x": np.ones(3)}))
        problems = check_no_grad(case)
        assert any("parent" in p for p in problems)
        assert any("backward closure" in p for p in problems)
        assert any("requires_grad" in p for p in problems)

    def test_no_grad_value_drift_is_caught(self):
        from repro.nn import is_grad_enabled

        def drifty(x):
            # An inference "fast path" that is not bit-identical.
            scale = 2.0 if is_grad_enabled() else 2.0 + 1e-12
            return _finish(x.data * scale, (x,),
                           lambda grad, out: out._send(x, grad * scale))

        case = OpCase("drifty", "unit",
                      lambda: (drifty, {"x": np.ones(3)}))
        assert any("bit-identical" in p for p in check_no_grad(case))

    def test_no_grad_correct_op_passes(self):
        def double(x):
            return _finish(x.data * 2.0, (x,),
                           lambda grad, out: out._send(x, grad * 2.0))

        case = OpCase("double", "unit",
                      lambda: (double, {"x": np.linspace(-1.0, 1.0, 7)}))
        assert check_no_grad(case) == []

    def test_case_inputs_are_not_shared_between_runs(self):
        """check_case must not mutate the builder's arrays in place."""
        base = np.linspace(0.0, 1.0, 4)
        holder = {"x": base}
        case = OpCase(
            "identity", "unit",
            lambda: (lambda x: _finish(
                x.data.copy(), (x,),
                lambda grad, out: out._send(x, grad)), holder))
        check_case(case)
        np.testing.assert_array_equal(base, np.linspace(0.0, 1.0, 4))
