"""The four whole-program analyses, each against a seeded violation.

Every test constructs a minimal synthetic package in ``tmp_path``
containing exactly the pattern the analysis exists to catch (or a
compliant variant that must NOT be flagged), builds the call graph and
runs :func:`~repro.check.analyses.run_program_analyses` over it.
"""

from pathlib import Path

from repro.check.analyses import run_program_analyses
from repro.check.callgraph import Program


def _findings(tmp_path: Path, files, rule=None):
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    if not (root / "__init__.py").exists():
        (root / "__init__.py").write_text("")
    program = Program.build(root, "pkg")
    found = run_program_analyses(program)
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


POOL_FAN_OUT = (
    "from concurrent.futures import ProcessPoolExecutor\n"
    "def fan_out(items):\n"
    "    with ProcessPoolExecutor() as pool:\n"
    "        return [pool.submit(work, i) for i in items]\n"
)


# ----------------------------------------------------------------------
# rng-stream
# ----------------------------------------------------------------------
class TestRngStream:
    def test_unseeded_rng_in_pool_callback(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("import numpy as np\n"
                     "def work(x):\n"
                     "    rng = np.random.default_rng()\n"
                     "    return rng.random()\n" + POOL_FAN_OUT),
        }, rule="rng-stream")
        assert len(found) == 1
        assert "unseeded default_rng()" in found[0].message
        assert "pkg.a.work" in found[0].message

    def test_seeded_rng_in_pool_callback_is_clean(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("import numpy as np\n"
                     "def work(x):\n"
                     "    rng = np.random.default_rng(x)\n"
                     "    return rng.random()\n" + POOL_FAN_OUT),
        }, rule="rng-stream")
        assert found == []

    def test_module_global_rng_draw_in_worker(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("import numpy as np\n"
                     "_RNG = np.random.default_rng(0)\n"
                     "def work(x):\n"
                     "    return _RNG.random()\n" + POOL_FAN_OUT),
        }, rule="rng-stream")
        assert len(found) == 1
        assert "module-global RNG `_RNG`" in found[0].message

    def test_draw_inside_set_iteration(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("import numpy as np\n"
                     "def sample(items):\n"
                     "    rng = np.random.default_rng(0)\n"
                     "    out = []\n"
                     "    for item in set(items):\n"
                     "        out.append(rng.random())\n"
                     "    return out\n"),
        }, rule="rng-stream")
        assert len(found) == 1
        assert "iteration over set" in found[0].message

    def test_draw_over_sorted_set_is_clean(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("import numpy as np\n"
                     "def sample(items):\n"
                     "    rng = np.random.default_rng(0)\n"
                     "    out = []\n"
                     "    for item in sorted(set(items)):\n"
                     "        out.append(rng.random())\n"
                     "    return out\n"),
        }, rule="rng-stream")
        assert found == []


# ----------------------------------------------------------------------
# parallel-safety
# ----------------------------------------------------------------------
class TestParallelSafety:
    def test_lambda_capturing_mutable_global(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("from concurrent.futures import ProcessPoolExecutor\n"
                     "STATE = {}\n"
                     "def fan_out(items):\n"
                     "    with ProcessPoolExecutor() as pool:\n"
                     "        return [pool.submit(lambda: STATE)\n"
                     "                for i in items]\n"),
        }, rule="parallel-safety")
        assert any("captures mutable shared state `STATE`" in f.message
                   for f in found)

    def test_live_rng_submitted_across_process_boundary(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("import numpy as np\n"
                     "from concurrent.futures import ProcessPoolExecutor\n"
                     "def work(x, rng):\n"
                     "    return x\n"
                     "def fan_out(items):\n"
                     "    rng = np.random.default_rng(0)\n"
                     "    with ProcessPoolExecutor() as pool:\n"
                     "        futs = [pool.submit(work, i, rng)\n"
                     "                for i in items]\n"
                     "    return futs\n"),
        }, rule="parallel-safety")
        assert any("live RNG submitted" in f.message for f in found)

    def test_open_file_submitted_across_process_boundary(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("from concurrent.futures import ProcessPoolExecutor\n"
                     "def work(x, handle):\n"
                     "    return x\n"
                     "def fan_out(items):\n"
                     "    handle = open('log.txt')\n"
                     "    with ProcessPoolExecutor() as pool:\n"
                     "        futs = [pool.submit(work, i, handle)\n"
                     "                for i in items]\n"
                     "    return futs\n"),
        }, rule="parallel-safety")
        assert any("open file handle submitted" in f.message
                   for f in found)

    def test_worker_reachable_global_mutation(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("CACHE = {}\n"
                     "def work(x):\n"
                     "    CACHE[x] = x\n"
                     "    return x\n" + POOL_FAN_OUT),
        }, rule="parallel-safety")
        assert any("mutates module global `CACHE`" in f.message
                   for f in found)

    def test_worker_local_state_is_clean(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("def work(x):\n"
                     "    local = {}\n"
                     "    local[x] = x\n"
                     "    return local\n" + POOL_FAN_OUT),
        }, rule="parallel-safety")
        assert found == []


# ----------------------------------------------------------------------
# artifact-atomicity
# ----------------------------------------------------------------------
class TestArtifactAtomicity:
    def test_raw_savez_is_flagged(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("import numpy as np\n"
                     "def save(path, arr):\n"
                     "    np.savez_compressed(path, x=arr)\n"),
        }, rule="artifact-atomicity")
        assert len(found) == 1
        assert "np.savez_compressed()" in found[0].message

    def test_raw_json_dump_is_flagged(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("import json\n"
                     "def save(obj):\n"
                     "    with open('out.json', 'w') as f:\n"
                     "        json.dump(obj, f)\n"),
        }, rule="artifact-atomicity")
        assert found  # the open and/or the dump
        assert all("run artifact" in f.message for f in found)

    def test_stage_then_replace_is_clean(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("import json\n"
                     "import os\n"
                     "def save(obj, path):\n"
                     "    tmp = path + '.tmp'\n"
                     "    with open('out.json.tmp', 'w') as f:\n"
                     "        json.dump(obj, f)\n"
                     "    os.replace(tmp, path)\n"),
        }, rule="artifact-atomicity")
        assert found == []

    def test_atomic_helper_is_clean(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("from .io import atomic_savez\n"
                     "def save(path, arrays):\n"
                     "    atomic_savez(path, arrays)\n"),
            "io.py": ("import os\n"
                      "import numpy as np\n"
                      "def atomic_savez(path, arrays):\n"
                      "    np.savez_compressed(str(path) + '.tmp', **arrays)\n"
                      "    os.replace(str(path) + '.tmp', path)\n"),
        }, rule="artifact-atomicity")
        assert found == []

    def test_non_artifact_writes_are_ignored(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("def save(text):\n"
                     "    with open('notes.txt', 'w') as f:\n"
                     "        f.write(text)\n"),
        }, rule="artifact-atomicity")
        assert found == []


# ----------------------------------------------------------------------
# trace-safety
# ----------------------------------------------------------------------
class TestTraceSafety:
    def test_data_write_inside_trace_body(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("def step(nc, model):\n"
                     "    with nc.trace():\n"
                     "        model.w.data[0] = 1.0\n"),
        }, rule="trace-safety")
        assert len(found) == 1
        assert "`with trace():` body" in found[0].message

    def test_data_write_reachable_from_trace(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("from .b import helper\n"
                     "def step(nc, t):\n"
                     "    with nc.trace():\n"
                     "        helper(t)\n"),
            "b.py": ("def helper(t):\n"
                     "    t.data += 1.0\n"),
        }, rule="trace-safety")
        assert len(found) == 1
        assert "reachable from the compile trace" in found[0].message
        assert "pkg.a.step" in found[0].message

    def test_backward_under_no_grad(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("from .ctx import no_grad\n"
                     "def evaluate(loss):\n"
                     "    with no_grad():\n"
                     "        loss.backward()\n"),
            "ctx.py": ("def no_grad():\n"
                       "    pass\n"),
        }, rule="trace-safety")
        assert len(found) == 1
        assert "backward() under no_grad()" in found[0].message

    def test_whitelist_covers_repro_modules_only(self):
        # repro's nn/optim.py is on TENSOR_DATA_WHITELIST (in-place
        # parameter updates are that module's whole job); the same
        # relative path in another package is not.
        from repro.check.analyses import _whitelisted

        assert _whitelisted("repro.nn.optim")
        assert _whitelisted("repro.nn.tensor")
        assert not _whitelisted("pkg.nn.optim")

    def test_data_write_outside_trace_is_clean(self, tmp_path):
        found = _findings(tmp_path, {
            "a.py": ("def reset(t):\n"
                     "    t.data[:] = 0.0\n"),
        }, rule="trace-safety")
        assert found == []
