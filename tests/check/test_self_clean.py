"""The repo must pass its own gate: `repro check` clean on `src/repro`.

This is the self-enforcing half of the lint gate — any future PR that
introduces a seeded RNG violation, a broad except, an unjustified
waiver, or an uncovered autograd op fails plain `pytest` here, not just
the CI `repro check` step.
"""

from pathlib import Path

import repro
from repro.check import run_gradcheck, run_lint
from repro.check.cli import main

PACKAGE_DIR = Path(repro.__file__).resolve().parent


def test_lint_clean_on_own_source():
    findings = run_lint([PACKAGE_DIR])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_gradcheck_clean_on_own_ops():
    findings = run_gradcheck()
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_default_target_is_package_and_exits_zero(capsys):
    assert main([]) == 0
    assert "clean" in capsys.readouterr().out


def test_seeded_violation_flips_exit_status(tmp_path, capsys):
    """Introducing a violation must turn the gate red."""
    bad = tmp_path / "regression.py"
    bad.write_text(
        "import numpy as np\n"
        "def cache_key(name):\n"
        "    np.random.seed(0)\n"
        "    return hash(name)\n"
    )
    status = main([str(bad)])
    out = capsys.readouterr().out
    assert status == 1
    assert "builtin-hash" in out and "unseeded-rng" in out
