"""The repo must pass its own gate: `repro check` clean on `src/repro`.

This is the self-enforcing half of the lint gate — any future PR that
introduces a seeded RNG violation, a broad except, an unjustified
waiver, an uncovered autograd op, or a new whole-program dataflow
finding fails plain `pytest` here, not just the CI `repro check` step.
"""

import json
from pathlib import Path

import repro
from repro.check import run_gradcheck, run_lint
from repro.check.cli import main

PACKAGE_DIR = Path(repro.__file__).resolve().parent
REPO_ROOT = PACKAGE_DIR.parent.parent
BASELINE = REPO_ROOT / "check_baseline.json"


def test_lint_clean_on_own_source():
    findings = run_lint([PACKAGE_DIR])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_gradcheck_clean_on_own_ops():
    findings = run_gradcheck()
    assert findings == [], "\n".join(f.format() for f in findings)


def test_cli_default_target_is_package_and_exits_zero(capsys):
    assert main([]) == 0
    assert "clean" in capsys.readouterr().out


def test_seeded_violation_flips_exit_status(tmp_path, capsys):
    """Introducing a violation must turn the gate red."""
    bad = tmp_path / "regression.py"
    bad.write_text(
        "import numpy as np\n"
        "def cache_key(name):\n"
        "    np.random.seed(0)\n"
        "    return hash(name)\n"
    )
    status = main([str(bad)])
    out = capsys.readouterr().out
    assert status == 1
    assert "builtin-hash" in out and "unseeded-rng" in out


# ----------------------------------------------------------------------
# Whole-program dataflow gate
# ----------------------------------------------------------------------
def test_dataflow_self_clean_within_budget(capsys):
    """Zero un-baselined whole-program findings, inside the 30s budget.

    The wall time is read from the findings JSON itself (the analyzer
    records it there), so the budget that CI enforces and the budget
    this gate enforces are the same measurement.
    """
    status = main(["--dataflow", "--no-gradcheck", "--diff-baseline",
                   "--baseline", str(BASELINE), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert status == 0, payload["findings"]
    assert payload["findings"] == []
    assert payload["summary"]["ran"]["dataflow"] is True
    assert payload["summary"]["elapsed_seconds"] < 30.0


def test_nonexistent_path_is_a_usage_error(tmp_path, capsys):
    status = main([str(tmp_path / "no_such_file.py")])
    assert status == 2
    assert "does not exist" in capsys.readouterr().out


def test_dataflow_rejects_paths_outside_the_package(tmp_path, capsys):
    outside = tmp_path / "elsewhere.py"
    outside.write_text("x = 1\n")
    status = main(["--dataflow", str(outside)])
    out = capsys.readouterr().out
    assert status == 2
    assert "not part of the repro package" in out
    # Without --dataflow the same path is lintable as before.
    assert main([str(outside), "--no-gradcheck"]) == 0


def test_baseline_write_then_diff_roundtrip(tmp_path, capsys):
    """--write-baseline accepts current findings; --diff-baseline only
    fails on findings that are new relative to it."""
    bad = tmp_path / "legacy.py"
    bad.write_text(
        "def cache_key(name):\n"
        "    return hash(name)\n"
    )
    baseline = tmp_path / "baseline.json"
    assert main([str(bad), "--no-gradcheck", "--write-baseline",
                 "--baseline", str(baseline)]) == 0
    assert baseline.is_file()

    # The accepted finding no longer fails the gate...
    status = main([str(bad), "--no-gradcheck", "--diff-baseline",
                   "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert status == 0
    assert "baselined finding(s) suppressed" in out

    # ...but a new violation in the same file still does.
    bad.write_text(bad.read_text() +
                   "def collect(x, acc=[]):\n"
                   "    acc.append(x)\n"
                   "    return acc\n")
    status = main([str(bad), "--no-gradcheck", "--diff-baseline",
                   "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert status == 1
    assert "mutable-default" in out and "builtin-hash" not in out
