"""The dataflow engine itself: CFG construction and fixed points.

The whole-program analyses are only as sound as the CFG and the
worklist underneath them, so those are pinned directly: every
statement must land in exactly one block, loops must have back edges,
exception/finally paths must exist, comprehensions must desugar to
loops, and the fixpoint iteration must converge on lattices that
grow — and refuse to spin forever on ones that never stop growing.
"""

import ast

import pytest

from repro.check.dataflow import (CFG, ForwardAnalysis, TagEnv,
                                  cfg_for_function, cfg_for_comprehension)


def _fn(source: str) -> ast.AST:
    module = ast.parse(source)
    node = module.body[0]
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    return node


def _all_statements(cfg: CFG):
    return [stmt for block in cfg.blocks for stmt in block.statements]


def _assign_targets(cfg: CFG):
    names = []
    for stmt in _all_statements(cfg):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
    return names


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
class TestCFGConstruction:
    def test_straight_line_single_block(self):
        cfg = cfg_for_function(_fn("def f():\n    a = 1\n    b = 2\n"))
        assert sorted(_assign_targets(cfg)) == ["a", "b"]

    def test_if_else_covers_both_branches(self):
        cfg = cfg_for_function(_fn(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
            "    d = 3\n"))
        assert sorted(_assign_targets(cfg)) == ["a", "b", "d"]

    def test_while_loop_has_back_edge(self):
        cfg = cfg_for_function(_fn(
            "def f(n):\n"
            "    while n:\n"
            "        n = n - 1\n"
            "    done = 1\n"))
        preds = cfg.predecessors()
        header = next(block for block in cfg.blocks
                      if any(isinstance(s, ast.While)
                             for s in block.statements))
        # Entry path plus the loop back edge.
        assert len(preds[header.bid]) >= 2

    def test_for_loop_body_and_orelse(self):
        cfg = cfg_for_function(_fn(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        a = x\n"
            "    else:\n"
            "        b = 1\n"))
        assert sorted(_assign_targets(cfg)) == ["a", "b"]

    def test_break_and_continue_do_not_crash(self):
        cfg = cfg_for_function(_fn(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            break\n"
            "        continue\n"
            "    after = 1\n"))
        assert "after" in _assign_targets(cfg)

    def test_try_except_finally_all_present(self):
        cfg = cfg_for_function(_fn(
            "def f():\n"
            "    try:\n"
            "        a = 1\n"
            "    except ValueError:\n"
            "        b = 2\n"
            "    finally:\n"
            "        c = 3\n"))
        assert sorted(_assign_targets(cfg)) == ["a", "b", "c"]

    def test_with_block_statements_present(self):
        cfg = cfg_for_function(_fn(
            "def f(cm):\n"
            "    with cm() as h:\n"
            "        a = 1\n"))
        assert "a" in _assign_targets(cfg)

    def test_lambda_builds_a_cfg(self):
        module = ast.parse("g = lambda x: x + 1")
        lam = module.body[0].value
        cfg = cfg_for_function(lam)
        assert len(_all_statements(cfg)) == 1

    def test_comprehension_desugars_to_loop(self):
        module = ast.parse("ys = [f(x) for x in xs if x]")
        comp = module.body[0].value
        cfg = cfg_for_comprehension(comp)
        stmts = _all_statements(cfg)
        assert any(isinstance(s, ast.For) for s in stmts)
        # The if-clause becomes a condition statement in the loop body.
        assert any(isinstance(s, ast.Expr) and isinstance(s.value, ast.Name)
                   and s.value.id == "x" for s in stmts)


# ----------------------------------------------------------------------
# Fixed-point iteration on a synthetic lattice
# ----------------------------------------------------------------------
class _Reaching(ForwardAnalysis):
    """Set-of-assigned-names lattice: join = union (monotone, finite)."""

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, stmt, fact):
        if isinstance(stmt, ast.Assign):
            return fact | {t.id for t in stmt.targets
                           if isinstance(t, ast.Name)}
        return fact


class _Diverging(ForwardAnalysis):
    """Unbounded chain: on a cyclic CFG this must be detected, not spin."""

    max_iterations = 50

    def initial(self):
        return 0

    def join(self, a, b):
        return max(a, b)

    def transfer(self, stmt, fact):
        return fact + 1


class TestFixedPoint:
    def test_loop_converges_and_joins_paths(self):
        cfg = cfg_for_function(_fn(
            "def f(n):\n"
            "    a = 1\n"
            "    while n:\n"
            "        b = 2\n"
            "    c = 3\n"))
        analysis = _Reaching()
        facts = analysis.statement_facts(cfg)
        final = next(s for s in _all_statements(cfg)
                     if isinstance(s, ast.Assign)
                     and s.targets[0].id == "c")
        # 'b' may or may not have executed: a may-analysis keeps it.
        assert facts[id(final)] == frozenset({"a", "b"})

    def test_branch_join_is_union(self):
        cfg = cfg_for_function(_fn(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
            "    d = 3\n"))
        facts = _Reaching().statement_facts(cfg)
        final = next(s for s in _all_statements(cfg)
                     if isinstance(s, ast.Assign)
                     and s.targets[0].id == "d")
        assert facts[id(final)] == frozenset({"a", "b"})

    def test_divergent_lattice_raises_instead_of_spinning(self):
        cfg = cfg_for_function(_fn(
            "def f(n):\n"
            "    while n:\n"
            "        n = n - 1\n"))
        with pytest.raises(RuntimeError, match="converge"):
            _Diverging().run(cfg)


# ----------------------------------------------------------------------
# TagEnv
# ----------------------------------------------------------------------
def _rng_evaluate(expr, env):
    if isinstance(expr, ast.Name):
        return env.get(expr.id, frozenset())
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id == "make_rng":
            return frozenset({"rng"})
        if expr.func.id == "make_set":
            return frozenset({"set"})
    return frozenset()


class TestTagEnv:
    def _facts(self, source):
        cfg = cfg_for_function(_fn(source))
        return cfg, TagEnv(_rng_evaluate).statement_facts(cfg)

    def _fact_at_assign(self, source, name):
        cfg, facts = self._facts(source)
        stmt = next(s for s in _all_statements(cfg)
                    if isinstance(s, ast.Assign)
                    and isinstance(s.targets[0], ast.Name)
                    and s.targets[0].id == name)
        return facts[id(stmt)]

    def test_tags_flow_through_assignment(self):
        env = self._fact_at_assign(
            "def f():\n"
            "    r = make_rng()\n"
            "    s = r\n"
            "    end = 1\n", "end")
        assert env["r"] == frozenset({"rng"})
        assert env["s"] == frozenset({"rng"})

    def test_rebinding_is_a_strong_update(self):
        env = self._fact_at_assign(
            "def f():\n"
            "    r = make_rng()\n"
            "    r = 1\n"
            "    end = 2\n", "end")
        assert "r" not in env

    def test_branch_join_unions_tags(self):
        env = self._fact_at_assign(
            "def f(c):\n"
            "    if c:\n"
            "        x = make_rng()\n"
            "    else:\n"
            "        x = make_set()\n"
            "    end = 1\n", "end")
        assert env["x"] == frozenset({"rng", "set"})

    def test_loop_carried_tag_reaches_after_loop(self):
        env = self._fact_at_assign(
            "def f(xs):\n"
            "    x = 1\n"
            "    for i in xs:\n"
            "        x = make_rng()\n"
            "    end = 1\n", "end")
        assert env["x"] == frozenset({"rng"})

    def test_for_target_strips_container_tags(self):
        env = self._fact_at_assign(
            "def f():\n"
            "    items = make_set()\n"
            "    for item in items:\n"
            "        end = 1\n", "end")
        assert env.get("item", frozenset()) == frozenset()
