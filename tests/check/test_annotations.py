"""Every annotation in the package must actually resolve.

Under ``from __future__ import annotations`` every annotation is a
string, so a missing import (e.g. annotating with ``Tensor`` without
importing it) passes import time and only explodes when something calls
``typing.get_type_hints`` — dataclass tooling, docs, or introspection.
This test resolves every public module's annotations eagerly, turning
that latent NameError into a test failure naming the offender.

Regression for trainer.py annotating ``fused.py`` helpers' return types
with a ``Tensor`` name it never imported.
"""

import importlib
import inspect
import pkgutil
import typing

import pytest

import repro


def _walk_modules():
    names = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


MODULES = _walk_modules()


def _annotated_objects(module):
    """(label, obj) pairs whose annotations should resolve."""
    yield module.__name__, module
    for name, obj in vars(module).items():
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are checked in their home module
        if inspect.isclass(obj):
            yield f"{module.__name__}.{name}", obj
            for mname, member in vars(obj).items():
                if inspect.isfunction(member):
                    yield f"{module.__name__}.{name}.{mname}", member
        elif inspect.isfunction(obj):
            yield f"{module.__name__}.{name}", obj


@pytest.mark.parametrize("module_name", MODULES)
def test_annotations_resolve(module_name):
    module = importlib.import_module(module_name)
    for label, obj in _annotated_objects(module):
        try:
            typing.get_type_hints(obj)
        except NameError as exc:
            pytest.fail(f"unresolvable annotation in {label}: {exc}")


def test_walk_found_the_package():
    # Guard against the parametrisation silently going empty.
    assert "repro.train.trainer" in MODULES
    assert len(MODULES) > 30
