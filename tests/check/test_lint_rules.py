"""Rule-by-rule tests for the repo-specific linter and its waivers."""

import json
import textwrap

import pytest

from repro.check import RULES, run_lint
from repro.check.cli import main, run_check
from repro.check.lint import lint_file


def lint_source(tmp_path, source, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_file(path)


def rules_fired(findings):
    return {f.rule for f in findings}


class TestRules:
    def test_registry_is_populated(self):
        assert {"builtin-hash", "unseeded-rng", "bare-except",
                "mutable-default", "tensor-data-mutation"} <= set(RULES)

    def test_builtin_hash(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def design_seed(name):
                return hash(name) % 10_000
        """)
        assert rules_fired(findings) == {"builtin-hash"}
        assert findings[0].line == 2

    def test_object_hash_method_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import zlib

            def design_seed(name):
                return zlib.crc32(name.encode()) % 10_000
        """)
        assert findings == []

    def test_global_state_rng(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import numpy as np

            def sample():
                np.random.seed(0)
                return np.random.rand(3)
        """)
        assert [f.line for f in findings
                if f.rule == "unseeded-rng"] == [4, 5]

    def test_unseeded_default_rng(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import numpy as np
            from numpy.random import default_rng

            a = np.random.default_rng()
            b = default_rng()
            c = np.random.default_rng(0)
            d = default_rng(seed=3)
        """)
        assert [f.line for f in findings] == [4, 5]
        assert rules_fired(findings) == {"unseeded-rng"}

    def test_generator_annotations_not_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """\
            import numpy as np

            def init(rng: np.random.Generator) -> None:
                rng.standard_normal(3)
        """)
        assert findings == []

    def test_bare_and_broad_except(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def load(path):
                try:
                    return open(path)
                except:
                    return None

            def load2(path):
                try:
                    return open(path)
                except Exception:
                    return None

            def load3(path):
                try:
                    return open(path)
                except (OSError, ValueError):
                    return None
        """)
        assert [f.line for f in findings] == [4, 10]
        assert rules_fired(findings) == {"bare-except"}

    def test_mutable_default(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def a(x, acc=[]):
                acc.append(x)

            def b(x, table={}):
                pass

            def c(x, *, seen=set()):
                pass

            def d(x, names=None, count=0, word="ok"):
                pass
        """)
        assert [f.line for f in findings] == [1, 4, 7]
        assert rules_fired(findings) == {"mutable-default"}

    def test_tensor_data_mutation(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def scale(param):
                param.data *= 0.1
                param.data[...] = 0.0
                param.data = None
                value = param.data + 1.0
        """)
        assert [f.line for f in findings] == [2, 3, 4]
        assert rules_fired(findings) == {"tensor-data-mutation"}

    def test_tensor_data_whitelisted_modules(self, tmp_path):
        nested = tmp_path / "repro" / "nn"
        nested.mkdir(parents=True)
        path = nested / "optim.py"
        path.write_text("def step(p, g, lr):\n    p.data -= lr * g\n")
        assert lint_file(path) == []

    def test_syntax_error_is_reported(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert rules_fired(findings) == {"syntax-error"}


class TestWaivers:
    def test_justified_waiver_suppresses(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def scale(param):
                param.data *= 0.1  # repro-check: disable=tensor-data-mutation -- init-time, outside any graph
        """)
        assert findings == []

    def test_waiver_on_preceding_comment_line(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def scale(param):
                # repro-check: disable=tensor-data-mutation -- init-time, outside any graph
                param.data *= 0.1
        """)
        assert findings == []

    def test_unjustified_waiver_does_not_suppress(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def scale(param):
                param.data *= 0.1  # repro-check: disable=tensor-data-mutation
        """)
        assert rules_fired(findings) == {"tensor-data-mutation",
                                         "waiver-missing-justification"}

    def test_unused_waiver_reported(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def fine():
                return 1  # repro-check: disable=builtin-hash -- historical, nothing here anymore
        """)
        assert rules_fired(findings) == {"unused-waiver"}

    def test_unknown_rule_in_waiver(self, tmp_path):
        findings = lint_source(tmp_path, """\
            x = 1  # repro-check: disable=no-such-rule -- testing the validator
        """)
        assert "unknown-waiver-rule" in rules_fired(findings)

    def test_waiver_only_covers_named_rule(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def seedy(name):
                return hash(name)  # repro-check: disable=bare-except -- wrong rule on purpose
        """)
        fired = rules_fired(findings)
        assert "builtin-hash" in fired
        assert "unused-waiver" in fired

    def test_waiver_string_literal_is_ignored(self, tmp_path):
        findings = lint_source(tmp_path, """\
            PATTERN = "# repro-check: disable=builtin-hash -- not a comment"
        """)
        assert findings == []

    def test_trailing_comment_does_not_waive_next_line(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def two(param):
                x = 1  # repro-check: disable=tensor-data-mutation -- belongs to this line only
                param.data *= x
        """)
        assert "tensor-data-mutation" in rules_fired(findings)

    def test_one_waiver_multiple_rules(self, tmp_path):
        findings = lint_source(tmp_path, """\
            def f(param, name):
                param.data = hash(name)  # repro-check: disable=tensor-data-mutation,builtin-hash -- exercising multi-rule waivers
        """)
        assert findings == []


class TestCli:
    def test_exit_nonzero_on_seeded_violation(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("key = hash('design@7nm')\n")
        status = main([str(bad), "--no-gradcheck"])
        out = capsys.readouterr().out
        assert status == 1
        assert "builtin-hash" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("VALUE = 42\n")
        assert main([str(good), "--no-gradcheck"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_output_shape(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        chunks = []
        status = run_check(paths=[bad], fmt="json", do_gradcheck=False,
                           emit=chunks.append)
        payload = json.loads("\n".join(chunks))
        assert status == 1
        assert payload["summary"]["total"] == 1
        assert payload["summary"]["by_rule"] == {"unseeded-rng": 1}
        (finding,) = payload["findings"]
        assert finding["rule"] == "unseeded-rng"
        assert finding["line"] == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in RULES:
            assert name in out

    def test_run_lint_walks_directories(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = hash('a')\n")
        (pkg / "b.py").write_text("y = 2\n")
        findings = run_lint([pkg])
        assert [f.rule for f in findings] == ["builtin-hash"]

    @pytest.mark.parametrize("argv", [["check", "--list-rules"]])
    def test_top_level_cli_has_check(self, argv, capsys):
        from repro.cli import main as repro_main

        assert repro_main(argv) == 0
        assert "builtin-hash" in capsys.readouterr().out
