"""Package-wide call graph: imports, qualnames, edges, worker sites.

Each test writes a small synthetic package into ``tmp_path`` and
builds a :class:`~repro.check.callgraph.Program` over it, pinning the
resolution rules the whole-program analyses depend on: absolute,
relative and aliased imports; re-export canonicalization through
``__init__``; transitive reachability that expands instantiated
classes; and detection of pool/thread hand-off sites.
"""

from pathlib import Path

from repro.check.callgraph import Program


def _make_package(tmp_path: Path, files) -> Path:
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    if not (root / "__init__.py").exists():
        (root / "__init__.py").write_text("")
    return root


def _build(tmp_path, files) -> Program:
    return Program.build(_make_package(tmp_path, files), "pkg")


# ----------------------------------------------------------------------
# Module and definition indexing
# ----------------------------------------------------------------------
class TestIndexing:
    def test_module_names_and_init_mapping(self, tmp_path):
        program = _build(tmp_path, {
            "__init__.py": "",
            "a.py": "def f():\n    pass\n",
            "sub/__init__.py": "",
            "sub/b.py": "def g():\n    pass\n",
        })
        assert set(program.modules) == {"pkg", "pkg.a", "pkg.sub",
                                        "pkg.sub.b"}

    def test_qualnames_for_functions_methods_and_module(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": ("def f():\n"
                     "    pass\n"
                     "class C:\n"
                     "    def m(self):\n"
                     "        pass\n"),
        })
        assert "pkg.a.f" in program.functions
        assert "pkg.a.C.m" in program.functions
        assert "pkg.a.<module>" in program.functions
        assert program.class_methods["pkg.a.C"] == {"m"}

    def test_global_names_collected(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": "STATE = {}\ndef f():\n    local = 1\n",
        })
        assert "STATE" in program.modules["pkg.a"].global_names
        assert "local" not in program.modules["pkg.a"].global_names


# ----------------------------------------------------------------------
# Import resolution
# ----------------------------------------------------------------------
class TestImports:
    def test_absolute_aliased_and_relative_imports(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": ("import numpy as np\n"
                     "import os.path\n"
                     "from pkg.b import helper\n"
                     "from . import b\n"
                     "from .b import helper as h2\n"),
            "b.py": "def helper():\n    pass\n",
        })
        imports = program.modules["pkg.a"].imports
        assert imports["np"] == "numpy"
        assert imports["os"] == "os"
        assert imports["helper"] == "pkg.b.helper"
        assert imports["b"] == "pkg.b"
        assert imports["h2"] == "pkg.b.helper"

    def test_canonicalize_chases_reexports(self, tmp_path):
        program = _build(tmp_path, {
            "util/__init__.py": "from .timing import reset\n",
            "util/timing.py": "def reset():\n    pass\n",
        })
        assert program.canonicalize("pkg.util.reset") \
            == "pkg.util.timing.reset"
        # Already-canonical names are fixed points.
        assert program.canonicalize("pkg.util.timing.reset") \
            == "pkg.util.timing.reset"


# ----------------------------------------------------------------------
# Call edges and reachability
# ----------------------------------------------------------------------
class TestReachability:
    def test_cross_module_call_edges(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": ("from .b import helper\n"
                     "def caller():\n"
                     "    helper()\n"),
            "b.py": ("def helper():\n"
                     "    leaf()\n"
                     "def leaf():\n"
                     "    pass\n"),
        })
        assert "pkg.b.helper" in program.functions["pkg.a.caller"].calls
        reach = program.reachable(["pkg.a.caller"])
        assert {"pkg.a.caller", "pkg.b.helper", "pkg.b.leaf"} <= reach

    def test_reachability_through_reexport(self, tmp_path):
        program = _build(tmp_path, {
            "util/__init__.py": "from .timing import reset\n",
            "util/timing.py": "def reset():\n    pass\n",
            "a.py": ("from .util import reset\n"
                     "def caller():\n"
                     "    reset()\n"),
        })
        assert "pkg.util.timing.reset" in program.reachable(["pkg.a.caller"])

    def test_instantiating_a_class_reaches_all_methods(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": ("class Flow:\n"
                     "    def __init__(self):\n"
                     "        pass\n"
                     "    def run(self):\n"
                     "        self.step()\n"
                     "    def step(self):\n"
                     "        pass\n"),
            "b.py": ("from .a import Flow\n"
                     "def main():\n"
                     "    Flow().run()\n"),
        })
        reach = program.reachable(["pkg.b.main"])
        assert {"pkg.a.Flow.__init__", "pkg.a.Flow.run",
                "pkg.a.Flow.step"} <= reach

    def test_unresolvable_calls_are_dropped_not_invented(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": ("def caller(cb):\n"
                     "    cb()\n"
                     "    some_external.thing()\n"),
        })
        reach = program.reachable(["pkg.a.caller"])
        assert reach == {"pkg.a.caller"}


# ----------------------------------------------------------------------
# Worker-site detection
# ----------------------------------------------------------------------
class TestWorkerSites:
    def test_process_pool_submit(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": ("from concurrent.futures import ProcessPoolExecutor\n"
                     "def work(x):\n"
                     "    return x\n"
                     "def fan_out(items):\n"
                     "    with ProcessPoolExecutor() as pool:\n"
                     "        return [pool.submit(work, i) for i in items]\n"),
        })
        sites = program.worker_sites()
        assert len(sites) == 1
        site = sites[0]
        assert site.kind == "process"
        assert site.target_qualname == "pkg.a.work"
        assert site.caller == "pkg.a.fan_out"
        assert "pkg.a.work" in program.worker_reachable()

    def test_thread_target_keyword(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": ("import threading\n"
                     "def work():\n"
                     "    pass\n"
                     "def spawn():\n"
                     "    t = threading.Thread(target=work)\n"
                     "    t.start()\n"),
        })
        sites = program.worker_sites()
        assert len(sites) == 1
        assert sites[0].kind == "thread"
        assert sites[0].target_qualname == "pkg.a.work"

    def test_pool_map_on_assigned_executor(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": ("from concurrent.futures import ThreadPoolExecutor\n"
                     "def work(x):\n"
                     "    return x\n"
                     "def fan_out(items):\n"
                     "    pool = ThreadPoolExecutor(4)\n"
                     "    return list(pool.map(work, items))\n"),
        })
        sites = program.worker_sites()
        assert len(sites) == 1
        assert sites[0].kind == "thread"
        assert sites[0].target_qualname == "pkg.a.work"

    def test_mp_context_process_constructor(self, tmp_path):
        """`ctx = get_context(...); ctx.Process(target=...)` — the
        spelling the data-parallel trainer uses — is a process
        hand-off even though `ctx` is an unresolvable local."""
        program = _build(tmp_path, {
            "a.py": ("import multiprocessing\n"
                     "def work(ch):\n"
                     "    pass\n"
                     "def spawn():\n"
                     "    ctx = multiprocessing.get_context('fork')\n"
                     "    p = ctx.Process(target=work, args=(1,))\n"
                     "    p.start()\n"),
        })
        sites = program.worker_sites()
        assert len(sites) == 1
        assert sites[0].kind == "process"
        assert sites[0].target_qualname == "pkg.a.work"
        assert "pkg.a.work" in program.worker_reachable()

    def test_no_false_sites_in_plain_code(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": ("def f(xs):\n"
                     "    return list(map(str, xs))\n"),
        })
        assert program.worker_sites() == []

    def test_real_package_worker_site(self):
        # The repo's process hand-offs: the flow cache's parallel
        # cold-build fan-out and the data-parallel shard fleet.
        import repro

        program = Program.build(Path(repro.__file__).parent, "repro")
        targets = {s.target_qualname for s in program.worker_sites()
                   if s.kind == "process"}
        assert "repro.flow.cache._flow_worker" in targets
        assert "repro.train.worker.shard_worker_main" in targets


# ----------------------------------------------------------------------
# Threaded server handler classes
# ----------------------------------------------------------------------
class TestThreadedHandlers:
    def test_base_http_handler_methods_are_worker_reachable(self,
                                                            tmp_path):
        program = _build(tmp_path, {
            "srv.py": ("from http.server import BaseHTTPRequestHandler\n"
                       "def shared_mutation():\n"
                       "    pass\n"
                       "class Handler(BaseHTTPRequestHandler):\n"
                       "    def do_GET(self):\n"
                       "        shared_mutation()\n"),
        })
        assert program.threaded_handler_classes() == {"pkg.srv.Handler"}
        reach = program.worker_reachable()
        assert "pkg.srv.Handler.do_GET" in reach
        assert "pkg.srv.shared_mutation" in reach

    def test_threading_mixin_subclass_detected(self, tmp_path):
        program = _build(tmp_path, {
            "srv.py": ("import socketserver\n"
                       "class Server(socketserver.ThreadingMixIn,\n"
                       "             socketserver.TCPServer):\n"
                       "    def process(self):\n"
                       "        pass\n"),
        })
        assert program.threaded_handler_classes() == {"pkg.srv.Server"}
        assert "pkg.srv.Server.process" in program.worker_reachable()

    def test_transitive_subclass_within_program(self, tmp_path):
        program = _build(tmp_path, {
            "base.py": ("from http.server import BaseHTTPRequestHandler\n"
                        "class Base(BaseHTTPRequestHandler):\n"
                        "    pass\n"),
            "srv.py": ("from .base import Base\n"
                       "class Handler(Base):\n"
                       "    def do_POST(self):\n"
                       "        pass\n"),
        })
        assert "pkg.srv.Handler" in program.threaded_handler_classes()
        assert "pkg.srv.Handler.do_POST" in program.worker_reachable()

    def test_plain_classes_are_not_flagged(self, tmp_path):
        program = _build(tmp_path, {
            "a.py": ("class Plain:\n"
                     "    def method(self):\n"
                     "        pass\n"),
        })
        assert program.threaded_handler_classes() == set()
        assert "pkg.a.Plain.method" not in program.worker_reachable()

    def test_repo_serve_handler_is_worker_reachable(self):
        import repro

        program = Program.build(Path(repro.__file__).parent, "repro")
        assert "repro.serve.server._Handler" \
            in program.threaded_handler_classes()
        assert "repro.serve.server._Handler.do_POST" \
            in program.worker_reachable()
