"""Tests for the analysis/reporting module."""

import numpy as np
import pytest

from repro.analysis import (
    accuracy_profile,
    compare_models,
    congestion_summary,
    design_summary,
    elmore_baseline_profile,
    full_report,
    slack_histogram,
    timing_summary,
    top_k_overlap,
)
from repro.features import GateVocabulary
from repro.flow import run_flow
from repro.netlist import make_design, map_design
from repro.place import place_design
from repro.route import GlobalRouter, PreRouteEstimator
from repro.sta import run_sta
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def placed():
    lib = make_asap7_library()
    nl = map_design(make_design("arm9"), lib)
    fp = place_design(nl, seed=1)
    return nl, fp


@pytest.fixture(scope="module")
def design_data():
    libraries = {"130nm": make_sky130_library(), "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    return run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                    resolution=16)


class TestDesignSummary:
    def test_counts_match_netlist(self, placed):
        nl, fp = placed
        summary = design_summary(nl, fp)
        assert summary.cells == len(nl.cells)
        assert summary.sequential == len(nl.sequential_cells)
        assert sum(summary.gate_mix.values()) == summary.cells
        assert 0 < summary.utilization < 1.0

    def test_format_mentions_gates(self, placed):
        nl, fp = placed
        text = design_summary(nl, fp).format()
        assert "gate mix" in text
        assert "DFF" in text


class TestTimingSummary:
    def test_histogram_covers_all_endpoints(self, placed):
        nl, _ = placed
        report = run_sta(nl, PreRouteEstimator(nl))
        rows = slack_histogram(report, bins=6)
        assert sum(c for _, _, c in rows) == len(report.slack)

    def test_render(self, placed):
        nl, _ = placed
        report = run_sta(nl, PreRouteEstimator(nl))
        text = timing_summary(report)
        assert "WNS" in text and "slack histogram" in text


class TestCongestionSummary:
    def test_render(self, placed):
        nl, fp = placed
        router = GlobalRouter(nl, fp, seed=0)
        router.run()
        text = congestion_summary(router)
        assert "hot spots" in text
        assert "wirelength" in text

    def test_full_report_sections(self, placed):
        nl, fp = placed
        report = run_sta(nl, PreRouteEstimator(nl))
        router = GlobalRouter(nl, fp, seed=0)
        router.run()
        text = full_report(nl, fp, report, router)
        assert "gate mix" in text and "WNS" in text \
            and "hot spots" in text


class TestAccuracy:
    def test_top_k_overlap_bounds(self):
        truth = np.arange(10.0)
        assert top_k_overlap(truth, truth, 5) == 1.0
        assert top_k_overlap(truth, -truth, 3) == 0.0
        assert top_k_overlap(truth, truth, 100) == 1.0  # clamped k

    def test_perfect_predictor_profile(self, design_data):
        profile = accuracy_profile(design_data, lambda d: d.labels)
        assert profile.r2 == pytest.approx(1.0)
        assert profile.rank_correlation == pytest.approx(1.0)
        assert profile.top_k_overlap[5] == 1.0

    def test_elmore_baseline_profile(self, design_data):
        profile = elmore_baseline_profile(design_data)
        assert np.isfinite(profile.r2)
        assert 0.0 <= profile.optimism_rate <= 1.0
        # The pre-route estimate is optimistic by construction: it
        # misses routing detours, so it mostly under-predicts.
        assert profile.optimism_rate > 0.5

    def test_compare_models_render(self, design_data):
        text = compare_models(
            [design_data],
            {"oracle": lambda d: d.labels,
             "elmore": lambda d: d.pre_route_at},
        )
        assert "oracle" in text and "elmore" in text
