"""Rendering-stability tests: reports must not crash on edge cases."""

import numpy as np
import pytest

from repro.analysis import slack_histogram, timing_summary
from repro.sta import ClockConstraint
from repro.sta.engine import TimingReport


def make_report(slacks):
    return TimingReport(
        arrival={}, slew={},
        slack={i: s for i, s in enumerate(slacks)},
        endpoint_arrivals={},
        clock=ClockConstraint(1.0),
    )


class TestEdgeCases:
    def test_empty_report(self):
        report = make_report([])
        assert slack_histogram(report) == []
        text = timing_summary(report)
        assert "WNS" in text

    def test_single_endpoint(self):
        report = make_report([0.25])
        rows = slack_histogram(report)
        assert rows == [(0.25, 0.25, 1)]

    def test_identical_slacks(self):
        report = make_report([0.5] * 10)
        rows = slack_histogram(report)
        assert rows == [(0.5, 0.5, 10)]

    def test_mixed_signs(self):
        report = make_report([-0.2, -0.1, 0.0, 0.3, 0.7])
        rows = slack_histogram(report, bins=5)
        assert sum(c for _, _, c in rows) == 5
        text = timing_summary(report, bins=5)
        assert "WNS: -0.2000" in text
