"""Tests for the power estimator."""

import numpy as np
import pytest

from repro.analysis import estimate_power
from repro.netlist import make_design, map_design
from repro.place import place_design
from repro.route import PreRouteEstimator
from repro.techlib import make_asap7_library, make_sky130_library


def placed(name, lib):
    nl = map_design(make_design(name), lib)
    place_design(nl, seed=0)
    return nl, PreRouteEstimator(nl)


@pytest.fixture(scope="module")
def asap_setup():
    return placed("arm9", make_asap7_library())


class TestPower:
    def test_components_positive(self, asap_setup):
        nl, est = asap_setup
        report = estimate_power(nl, est)
        assert report.leakage > 0
        assert report.dynamic > 0
        assert report.clock_tree > 0
        assert report.total == pytest.approx(
            report.leakage + report.dynamic + report.clock_tree
        )

    def test_by_function_sums_leakage_and_dynamic(self, asap_setup):
        nl, est = asap_setup
        report = estimate_power(nl, est)
        assert sum(report.by_function.values()) == pytest.approx(
            report.leakage + report.dynamic, rel=1e-9
        )

    def test_zero_activity_kills_dynamic(self, asap_setup):
        nl, est = asap_setup
        report = estimate_power(nl, est, input_activity=0.0)
        assert report.dynamic == pytest.approx(0.0, abs=1e-12)
        assert report.leakage > 0

    def test_activity_scales_dynamic(self, asap_setup):
        nl, est = asap_setup
        low = estimate_power(nl, est, input_activity=0.1)
        high = estimate_power(nl, est, input_activity=0.4)
        assert high.dynamic > low.dynamic
        assert high.leakage == pytest.approx(low.leakage)

    def test_faster_clock_more_dynamic(self, asap_setup):
        nl, est = asap_setup
        slow = estimate_power(nl, est, clock_period=2.0)
        fast = estimate_power(nl, est, clock_period=0.5)
        assert fast.dynamic == pytest.approx(4 * slow.dynamic, rel=1e-6)

    def test_older_node_leaks_more(self):
        nl7, est7 = placed("linkruncca", make_asap7_library())
        nl130, est130 = placed("linkruncca", make_sky130_library())
        p7 = estimate_power(nl7, est7)
        p130 = estimate_power(nl130, est130)
        assert p130.leakage > p7.leakage

    def test_render(self, asap_setup):
        nl, est = asap_setup
        text = estimate_power(nl, est).format()
        assert "total power" in text and "by function" in text
