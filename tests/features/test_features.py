"""Tests for layout images, fanin cones, and pin-graph encoding."""

import numpy as np
import pytest

from repro.features import (
    GateVocabulary,
    all_fanin_cones,
    apply_normalization,
    cell_density_map,
    cone_mask,
    encode_netlist,
    fanin_cone,
    layout_images,
    macro_region_map,
    normalize_features,
)
from repro.netlist import LogicGraph, make_design, map_design
from repro.place import place_design
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def asap():
    return make_asap7_library()


@pytest.fixture(scope="module")
def sky():
    return make_sky130_library()


@pytest.fixture(scope="module")
def vocab(sky, asap):
    return GateVocabulary([sky, asap])


@pytest.fixture(scope="module")
def placed(asap):
    nl = map_design(make_design("arm9"), asap)
    fp = place_design(nl, seed=5)
    return nl, fp


class TestLayoutImages:
    def test_density_integrates_to_cell_area(self, placed):
        nl, fp = placed
        grid = cell_density_map(nl, fp, resolution=16)
        bin_area = (fp.width / 16) * (fp.height / 16)
        total_area = (grid * bin_area).sum()
        assert total_area == pytest.approx(nl.total_cell_area(), rel=1e-6)

    def test_macro_map_binary(self, placed):
        _, fp = placed
        grid = macro_region_map(fp, resolution=16)
        assert set(np.unique(grid)) <= {0.0, 1.0}
        if fp.macros:
            assert grid.sum() > 0

    def test_stacked_images_shape_and_range(self, placed):
        nl, fp = placed
        images = layout_images(nl, fp, resolution=32)
        assert images.shape == (3, 32, 32)
        assert images.min() >= 0.0
        assert images[:2].max() <= 1.0 + 1e-12


class TestFaninCones:
    def test_cone_of_chain(self, asap):
        g = LogicGraph("t")
        a = g.add_input("a")
        x = g.add_gate("INV", (a,))
        y = g.add_gate("INV", (x,))
        g.mark_output(y, "o")
        nl = map_design(g, asap)
        endpoint = nl.primary_outputs[0]
        cone = fanin_cone(nl, endpoint)
        # Port + 2 inverter outputs + 2 inverter inputs + PO pin = 6 pins.
        assert len(cone) == 6

    def test_cone_stops_at_registers(self, asap):
        g = LogicGraph("t")
        a = g.add_input("a")
        x = g.add_gate("INV", (a,))
        r = g.add_register(x)
        y = g.add_gate("INV", (r,))
        g.mark_output(y, "o")
        nl = map_design(g, asap)
        endpoint = nl.primary_outputs[0]
        cone = fanin_cone(nl, endpoint)
        dff = nl.sequential_cells[0]
        assert dff.output_pin.index in cone  # Q is the startpoint
        assert dff.pins["D"].index not in cone  # nothing beyond the flop
        assert nl.ports["a"].index not in cone

    def test_every_endpoint_has_nonempty_cone(self, placed):
        nl, _ = placed
        cones = all_fanin_cones(nl)
        assert len(cones) == len(nl.timing_endpoints())
        for name, cone in cones.items():
            assert len(cone) >= 2, name

    def test_cone_mask_dilation_grows(self, placed):
        nl, fp = placed
        endpoint = nl.timing_endpoints()[0]
        cone = fanin_cone(nl, endpoint)
        small = cone_mask(nl, cone, fp, resolution=32, dilate=0)
        big = cone_mask(nl, cone, fp, resolution=32, dilate=2)
        assert big.sum() >= small.sum()
        assert small.sum() > 0


class TestEncoding:
    def test_vocab_merges_both_nodes(self, sky, asap, vocab):
        assert len(vocab) == len(sky) + len(asap) + 1
        assert vocab.encode(None) == len(vocab) - 1

    def test_feature_shape(self, placed, vocab):
        nl, _ = placed
        graph = encode_netlist(nl, vocab)
        assert graph.features.shape == (graph.num_nodes, 3 + len(vocab))

    def test_onehot_rows_sum_to_one(self, placed, vocab):
        nl, _ = placed
        graph = encode_netlist(nl, vocab)
        onehot = graph.features[:, 3:]
        np.testing.assert_allclose(onehot.sum(axis=1), 1.0)

    def test_edges_match_netlist_counts(self, placed, vocab):
        nl, _ = placed
        graph = encode_netlist(nl, vocab)
        stats = nl.stats()
        assert graph.net_edges.shape[1] == stats["net_edges"]
        assert graph.cell_edges.shape[1] == stats["cell_edges"]

    def test_levels_partition_nodes(self, placed, vocab):
        nl, _ = placed
        graph = encode_netlist(nl, vocab)
        counted = sum(len(lv) for lv in graph.levels)
        assert counted == graph.num_nodes

    def test_levels_topological(self, placed, vocab):
        """Every edge goes from a lower level to a strictly higher one."""
        nl, _ = placed
        graph = encode_netlist(nl, vocab)
        level_of = np.zeros(graph.num_nodes, dtype=int)
        for k, rows in enumerate(graph.levels):
            level_of[rows] = k
        for edges in (graph.net_edges, graph.cell_edges):
            for src, dst in edges.T:
                assert level_of[src] < level_of[dst]

    def test_endpoints_present(self, placed, vocab):
        nl, _ = placed
        graph = encode_netlist(nl, vocab)
        assert len(graph.endpoint_rows) == len(nl.timing_endpoints())
        assert len(graph.endpoint_names) == len(graph.endpoint_rows)

    def test_same_node_same_vocab_slots(self, sky, asap, vocab):
        """The 130nm and 7nm mappings use disjoint one-hot slots."""
        g = make_design("linkruncca")
        nl_sky = map_design(g, sky)
        nl_asap = map_design(g, asap)
        place_design(nl_sky, seed=0)
        place_design(nl_asap, seed=0)
        g_sky = encode_netlist(nl_sky, vocab)
        g_asap = encode_netlist(nl_asap, vocab)
        port_slot = vocab.encode(None)
        used_sky = set(np.nonzero(g_sky.features[:, 3:].sum(axis=0))[0])
        used_asap = set(np.nonzero(g_asap.features[:, 3:].sum(axis=0))[0])
        overlap = used_sky & used_asap
        assert overlap <= {port_slot}

    def test_normalization_roundtrip(self, placed, vocab):
        nl, _ = placed
        graph = encode_netlist(nl, vocab)
        other = encode_netlist(nl, vocab)
        params = normalize_features([graph])
        cols = graph.features[:, :3]
        np.testing.assert_allclose(cols.mean(axis=0), 0.0, atol=1e-9)
        # Applying the same params to an identical graph matches.
        apply_normalization(other, params)
        np.testing.assert_allclose(other.features, graph.features)
