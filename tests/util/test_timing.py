"""Tests for the timing instrumentation registry."""

import time

import pytest

from repro.util import (
    format_timing_table,
    get_timings,
    merge_timings,
    reset_timings,
    timed,
    timing_report,
)


@pytest.fixture(autouse=True)
def clean_registry():
    reset_timings()
    yield
    reset_timings()


class TestContextManager:
    def test_accumulates_calls_and_seconds(self):
        for _ in range(3):
            with timed("phase.a"):
                time.sleep(0.002)
        entry = get_timings()["phase.a"]
        assert entry["calls"] == 3
        assert entry["seconds"] >= 0.005

    def test_separate_names_are_independent(self):
        with timed("x"):
            pass
        with timed("y"):
            pass
        timings = get_timings()
        assert timings["x"]["calls"] == 1
        assert timings["y"]["calls"] == 1

    def test_records_on_exception(self):
        with pytest.raises(RuntimeError):
            with timed("boom"):
                raise RuntimeError("fail")
        assert get_timings()["boom"]["calls"] == 1

    def test_nesting(self):
        with timed("outer"):
            with timed("inner"):
                pass
        timings = get_timings()
        assert timings["outer"]["calls"] == 1
        assert timings["inner"]["calls"] == 1

    def test_shared_instance_reentrancy(self):
        """Regression: one instance entered twice before exiting once.

        The old scalar ``_start`` was overwritten by the inner enter,
        so the outer exit measured only the inner span.
        """
        shared = timed("reentrant")
        with shared:
            time.sleep(0.002)
            with shared:
                time.sleep(0.002)
        entry = get_timings()["reentrant"]
        assert entry["calls"] == 2
        # outer >= 4ms + inner >= 2ms; scalar-start corruption would
        # have recorded two ~2ms spans (~4ms total).
        assert entry["seconds"] >= 0.006


class TestDecorator:
    def test_decorated_function_counts_calls(self):
        @timed("decorated")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert f(2) == 3
        assert get_timings()["decorated"]["calls"] == 2

    def test_decorator_preserves_metadata(self):
        @timed("meta")
        def g():
            """docstring"""

        assert g.__name__ == "g"
        assert g.__doc__ == "docstring"

    def test_recursive_decorated_function(self):
        """A decorated recursive function shares one timed instance."""

        @timed("recursive")
        def fact(n):
            time.sleep(0.001)
            return 1 if n <= 1 else n * fact(n - 1)

        assert fact(4) == 24
        entry = get_timings()["recursive"]
        assert entry["calls"] == 4
        # The outermost call's span covers all four sleeps; with the
        # per-call closure start each span is measured independently
        # and the totals accumulate correctly.
        assert entry["seconds"] >= 0.004


class TestMerge:
    def test_merge_into_empty_registry(self):
        merge_timings({"flow.run": {"calls": 3, "seconds": 1.5}})
        assert get_timings()["flow.run"] == {"calls": 3, "seconds": 1.5}

    def test_merge_accumulates_into_existing(self):
        with timed("shared.phase"):
            pass
        merge_timings({"shared.phase": {"calls": 2, "seconds": 0.5}})
        entry = get_timings()["shared.phase"]
        assert entry["calls"] == 3
        assert entry["seconds"] >= 0.5

    def test_merge_multiple_workers(self):
        for _ in range(2):  # two worker snapshots, same phases
            merge_timings({"flow.route": {"calls": 1, "seconds": 0.25},
                           "flow.place": {"calls": 1, "seconds": 0.125}})
        timings = get_timings()
        assert timings["flow.route"] == {"calls": 2, "seconds": 0.5}
        assert timings["flow.place"] == {"calls": 2, "seconds": 0.25}

    def test_format_timing_table_on_snapshot(self):
        table = format_timing_table(
            {"a.phase": {"calls": 2, "seconds": 1.0}})
        assert "a.phase" in table
        assert "calls" in table
        assert format_timing_table({}) == "(no timings recorded)"


class TestWorkerAttribution:
    """merge_timings(worker=...) — the data-parallel per-shard merge."""

    def test_worker_label_accumulates_by_worker(self):
        merge_timings({"train.fused": {"calls": 1, "seconds": 0.5}},
                      worker="w0")
        merge_timings({"train.fused": {"calls": 1, "seconds": 0.25}},
                      worker="w1")
        merge_timings({"train.fused": {"calls": 1, "seconds": 0.25}},
                      worker="w1")
        entry = get_timings()["train.fused"]
        assert entry["calls"] == 3
        assert entry["seconds"] == 1.0
        assert entry["by_worker"]["w0"] == {"calls": 1, "seconds": 0.5}
        assert entry["by_worker"]["w1"] == {"calls": 2, "seconds": 0.5}

    def test_unlabelled_merge_keeps_aggregate_only(self):
        merge_timings({"plain": {"calls": 1, "seconds": 0.1}})
        assert "by_worker" not in get_timings()["plain"]

    def test_snapshot_detaches_by_worker(self):
        merge_timings({"p": {"calls": 1, "seconds": 1.0}}, worker="w0")
        snap = get_timings()
        snap["p"]["by_worker"]["w0"]["calls"] = 99
        assert get_timings()["p"]["by_worker"]["w0"]["calls"] == 1

    def test_table_adds_worker_column_when_attributed(self):
        merge_timings({"step": {"calls": 2, "seconds": 0.5}}, worker="w0")
        merge_timings({"step": {"calls": 2, "seconds": 0.3}}, worker="w1")
        table = format_timing_table(get_timings())
        lines = table.splitlines()
        assert "worker" in lines[0]
        body = [ln for ln in lines[1:] if ln.strip()]
        # Aggregate row first, then one attribution row per label.
        assert "all" in body[0]
        assert "w0" in body[1]
        assert "w1" in body[2]

    def test_table_has_no_worker_column_without_attribution(self):
        merge_timings({"solo": {"calls": 1, "seconds": 0.1}})
        table = format_timing_table(get_timings())
        assert "worker" not in table.splitlines()[0]


class TestReport:
    def test_empty_report(self):
        assert "no timings" in timing_report()

    def test_report_lists_phases(self):
        with timed("alpha"):
            pass
        report = timing_report()
        assert "alpha" in report
        assert "calls" in report

    def test_reset_clears(self):
        with timed("gone"):
            pass
        reset_timings()
        assert get_timings() == {}
