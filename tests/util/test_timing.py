"""Tests for the timing instrumentation registry."""

import time

import pytest

from repro.util import get_timings, reset_timings, timed, timing_report


@pytest.fixture(autouse=True)
def clean_registry():
    reset_timings()
    yield
    reset_timings()


class TestContextManager:
    def test_accumulates_calls_and_seconds(self):
        for _ in range(3):
            with timed("phase.a"):
                time.sleep(0.002)
        entry = get_timings()["phase.a"]
        assert entry["calls"] == 3
        assert entry["seconds"] >= 0.005

    def test_separate_names_are_independent(self):
        with timed("x"):
            pass
        with timed("y"):
            pass
        timings = get_timings()
        assert timings["x"]["calls"] == 1
        assert timings["y"]["calls"] == 1

    def test_records_on_exception(self):
        with pytest.raises(RuntimeError):
            with timed("boom"):
                raise RuntimeError("fail")
        assert get_timings()["boom"]["calls"] == 1

    def test_nesting(self):
        with timed("outer"):
            with timed("inner"):
                pass
        timings = get_timings()
        assert timings["outer"]["calls"] == 1
        assert timings["inner"]["calls"] == 1


class TestDecorator:
    def test_decorated_function_counts_calls(self):
        @timed("decorated")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert f(2) == 3
        assert get_timings()["decorated"]["calls"] == 2

    def test_decorator_preserves_metadata(self):
        @timed("meta")
        def g():
            """docstring"""

        assert g.__name__ == "g"
        assert g.__doc__ == "docstring"


class TestReport:
    def test_empty_report(self):
        assert "no timings" in timing_report()

    def test_report_lists_phases(self):
        with timed("alpha"):
            pass
        report = timing_report()
        assert "alpha" in report
        assert "calls" in report

    def test_reset_clears(self):
        with timed("gone"):
            pass
        reset_timings()
        assert get_timings() == {}
