"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flow_args(self):
        args = build_parser().parse_args(["flow", "arm9", "7nm"])
        assert args.design == "arm9"
        assert args.node == "7nm"

    def test_invalid_node_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "arm9", "3nm"])

    def test_predict_args(self):
        args = build_parser().parse_args(
            ["predict", "usbf_device", "aes_cipher_top",
             "--uncertainty", "--mc-samples", "8", "--no-cache",
             "--model", "model.npz"])
        assert args.designs == ["usbf_device", "aes_cipher_top"]
        assert args.uncertainty and args.no_cache
        assert args.mc_samples == 8
        assert args.model == "model.npz"

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict", "usbf_device"])
        assert args.model is None
        assert args.mc_samples == 0
        assert not args.uncertainty and not args.no_cache
        assert args.repeat == 1

    def test_predict_requires_a_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict"])

    def test_train_save_model_flag(self):
        args = build_parser().parse_args(
            ["train", "--save-model", "out.npz"])
        assert args.save_model == "out.npz"

    def test_train_checkpoint_flags(self):
        args = build_parser().parse_args(["train"])
        assert args.checkpoint_every == 25
        assert args.resume is None
        args = build_parser().parse_args(
            ["train", "--checkpoint-every", "10",
             "--resume", "runs/x"])
        assert args.checkpoint_every == 10
        assert args.resume == "runs/x"


class TestCommands:
    def test_libs(self, capsys):
        assert main(["libs"]) == 0
        out = capsys.readouterr().out
        assert "sky130_synth" in out and "asap7_synth" in out

    def test_sta_report(self, capsys):
        assert main(["sta", "usbf_device", "7nm", "--paths", "1"]) == 0
        out = capsys.readouterr().out
        assert "WNS" in out and "Startpoint:" in out

    def test_export(self, tmp_path, capsys):
        assert main(["export", "usbf_device", "7nm",
                     str(tmp_path)]) == 0
        assert (tmp_path / "usbf_device.v").exists()
        assert (tmp_path / "usbf_device.def").exists()
        assert (tmp_path / "usbf_device.spef").exists()
        assert (tmp_path / "asap7_synth.lib").exists()

    def test_exported_files_parse_back(self, tmp_path):
        main(["export", "usbf_device", "7nm", str(tmp_path)])
        from repro.io import parse_liberty, parse_verilog

        lib = parse_liberty((tmp_path / "asap7_synth.lib").read_text())
        netlist = parse_verilog(
            (tmp_path / "usbf_device.v").read_text(), lib
        )
        netlist.validate()


class TestReportRunCommand:
    @staticmethod
    def _write_run(run_dir):
        from repro.obs import RunLogger
        from repro.train import TrainConfig

        with RunLogger(run_dir) as logger:
            logger.log_manifest(config=TrainConfig(steps=3),
                                seeds={"train": 0})
            for t in range(3):
                logger.log_step(t, {"lr": 1e-3, "step_seconds": 0.01,
                                    "total": 2.0 - 0.5 * t})
            logger.log_event("final_weights", source="final-iterate")
            logger.log_summary(
                per_design={"usbf_device": {"r2": 0.9}},
                timings={"flow.run": {"calls": 1, "seconds": 1.0}},
                mean_r2=0.9)
        return run_dir

    def test_report_run(self, tmp_path, capsys):
        run_dir = self._write_run(tmp_path / "run")
        assert main(["report-run", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "total  [first" in out
        assert "final weights: final-iterate" in out
        assert "flow.run" in out

    def test_report_run_with_diff(self, tmp_path, capsys):
        run_a = self._write_run(tmp_path / "a")
        run_b = self._write_run(tmp_path / "b")
        assert main(["report-run", str(run_a),
                     "--diff", str(run_b)]) == 0
        out = capsys.readouterr().out
        assert f"manifest diff vs {run_b}" in out

    def test_missing_run_dir_fails(self, tmp_path, capsys):
        assert main(["report-run", str(tmp_path / "absent")]) == 1
        assert "not a run directory" in capsys.readouterr().out


class TestReportCommand:
    def test_report(self, capsys):
        assert main(["report", "usbf_device", "7nm"]) == 0
        out = capsys.readouterr().out
        assert "gate mix" in out
        assert "total power" in out

    def test_report_with_mc(self, capsys):
        assert main(["report", "usbf_device", "7nm",
                     "--mc-samples", "4"]) == 0
        out = capsys.readouterr().out
        assert "statistical STA" in out
