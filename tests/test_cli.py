"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flow_args(self):
        args = build_parser().parse_args(["flow", "arm9", "7nm"])
        assert args.design == "arm9"
        assert args.node == "7nm"

    def test_invalid_node_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "arm9", "3nm"])


class TestCommands:
    def test_libs(self, capsys):
        assert main(["libs"]) == 0
        out = capsys.readouterr().out
        assert "sky130_synth" in out and "asap7_synth" in out

    def test_sta_report(self, capsys):
        assert main(["sta", "usbf_device", "7nm", "--paths", "1"]) == 0
        out = capsys.readouterr().out
        assert "WNS" in out and "Startpoint:" in out

    def test_export(self, tmp_path, capsys):
        assert main(["export", "usbf_device", "7nm",
                     str(tmp_path)]) == 0
        assert (tmp_path / "usbf_device.v").exists()
        assert (tmp_path / "usbf_device.def").exists()
        assert (tmp_path / "usbf_device.spef").exists()
        assert (tmp_path / "asap7_synth.lib").exists()

    def test_exported_files_parse_back(self, tmp_path):
        main(["export", "usbf_device", "7nm", str(tmp_path)])
        from repro.io import parse_liberty, parse_verilog

        lib = parse_liberty((tmp_path / "asap7_synth.lib").read_text())
        netlist = parse_verilog(
            (tmp_path / "usbf_device.v").read_text(), lib
        )
        netlist.validate()


class TestReportCommand:
    def test_report(self, capsys):
        assert main(["report", "usbf_device", "7nm"]) == 0
        out = capsys.readouterr().out
        assert "gate mix" in out
        assert "total power" in out

    def test_report_with_mc(self, capsys):
        assert main(["report", "usbf_device", "7nm",
                     "--mc-samples", "4"]) == 0
        out = capsys.readouterr().out
        assert "statistical STA" in out
