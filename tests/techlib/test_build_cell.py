"""Tests for the parametric cell builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.techlib import build_cell

SLEW = (0.01, 0.05, 0.2)
LOAD = (0.001, 0.01, 0.1)


def make(drive=1.0, **kw):
    defaults = dict(
        name=f"t_x{drive}", function="NAND2", drive=drive, n_inputs=2,
        intrinsic=0.05, unit_drive_res=2.0, input_cap=0.004,
        slew_axis=SLEW, load_axis=LOAD, area=5.0, leakage=1.0,
    )
    defaults.update(kw)
    return build_cell(**defaults)


class TestBuildCell:
    def test_arcs_per_input(self):
        cell = make()
        assert len(cell.arcs) == 2
        assert {a.input_pin for a in cell.arcs} == {"A", "B"}
        assert all(a.output_pin == "Y" for a in cell.arcs)

    def test_sequential_shape(self):
        dff = make(function="DFF", is_sequential=True, setup_time=0.1,
                   clk_to_q=0.2, name="dff")
        assert dff.input_pins == ["D", "CK"]
        assert dff.output_pin == "Q"
        assert len(dff.arcs) == 1
        assert dff.arcs[0].input_pin == "CK"

    def test_drive_scaling_laws(self):
        x1, x4 = make(1.0), make(4.0)
        load, slew = 0.05, 0.05
        assert x4.arcs[0].delay.lookup(slew, load) \
            < x1.arcs[0].delay.lookup(slew, load)
        assert x4.input_cap("A") > x1.input_cap("A")
        assert x4.area > x1.area
        assert x4.leakage > x1.leakage

    @settings(max_examples=25, deadline=None)
    @given(drive=st.floats(0.5, 8.0))
    def test_tables_positive_everywhere(self, drive):
        cell = make(drive)
        for arc in cell.arcs:
            assert (arc.delay.values > 0).all()
            assert (arc.output_slew.values > 0).all()

    @settings(max_examples=25, deadline=None)
    @given(
        intrinsic=st.floats(0.001, 1.0),
        res=st.floats(0.1, 20.0),
    )
    def test_delay_exceeds_intrinsic_floor(self, intrinsic, res):
        cell = make(intrinsic=intrinsic, unit_drive_res=res)
        floor = intrinsic * (0.7 + 0.3 / 1.0)
        min_delay = min(float(a.delay.values.min()) for a in cell.arcs)
        assert min_delay >= floor - 1e-12
