"""Tests for NLDM timing tables: interpolation, clamping, monotonicity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.techlib import TimingTable


def _make_table():
    return TimingTable.from_linear_model(
        slew_axis=(0.01, 0.05, 0.1, 0.5),
        load_axis=(0.001, 0.01, 0.05, 0.1),
        intrinsic=0.05, drive_res=2.0, slew_sensitivity=0.25,
    )


#: Shared read-only table for the hypothesis tests (fixtures interact badly
#: with hypothesis' per-example execution model).
TABLE = _make_table()


@pytest.fixture
def table():
    return TABLE


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TimingTable((0.1, 0.2), (0.1,), np.zeros((2, 2)))

    def test_non_monotone_axis_rejected(self):
        with pytest.raises(ValueError):
            TimingTable((0.2, 0.1), (0.1, 0.2), np.zeros((2, 2)))


class TestLookup:
    def test_exact_grid_points(self, table):
        for i, s in enumerate(table.slew_axis):
            for j, l in enumerate(table.load_axis):
                assert table.lookup(s, l) == pytest.approx(table.values[i, j])

    def test_linear_model_interpolates_exactly(self, table):
        """A bilinear table built from a bilinear model is exact everywhere."""
        s, l = 0.07, 0.03
        expected = 0.05 + 2.0 * l + 0.25 * s
        assert table.lookup(s, l) == pytest.approx(expected)

    def test_clamps_below_and_above(self, table):
        lo = table.lookup(0.0, 0.0)
        assert lo == pytest.approx(table.values[0, 0])
        hi = table.lookup(10.0, 10.0)
        assert hi == pytest.approx(table.values[-1, -1])

    def test_vectorised_lookup(self, table):
        s = np.array([0.01, 0.07, 0.5])
        l = np.array([0.001, 0.03, 0.1])
        out = table.lookup(s, l)
        assert out.shape == (3,)
        for k in range(3):
            assert out[k] == pytest.approx(table.lookup(s[k], l[k]))

    @settings(max_examples=60, deadline=None)
    @given(s=st.floats(0.0, 1.0), l=st.floats(0.0, 0.2))
    def test_lookup_within_table_range(self, s, l):
        """Interpolated values never leave the convex hull of the table."""
        value = TABLE.lookup(s, l)
        assert TABLE.values.min() - 1e-12 <= value <= TABLE.values.max() + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        s1=st.floats(0.01, 0.5), s2=st.floats(0.01, 0.5),
        l=st.floats(0.001, 0.1),
    )
    def test_monotone_in_slew(self, s1, s2, l):
        """Delay grows with input slew for this (positive-slope) model."""
        lo, hi = min(s1, s2), max(s1, s2)
        assert TABLE.lookup(lo, l) <= TABLE.lookup(hi, l) + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        l1=st.floats(0.001, 0.1), l2=st.floats(0.001, 0.1),
        s=st.floats(0.01, 0.5),
    )
    def test_monotone_in_load(self, l1, l2, s):
        """Delay grows with output load."""
        lo, hi = min(l1, l2), max(l1, l2)
        assert TABLE.lookup(s, lo) <= TABLE.lookup(s, hi) + 1e-12
