"""Tests for derived/scaled technology libraries."""

import numpy as np
import pytest

from repro.netlist import make_design, map_design
from repro.techlib import make_sky130_library
from repro.techlib.scaling import make_interpolated_node, scale_library


class TestScaleLibrary:
    def test_invalid_factors_rejected(self):
        sky = make_sky130_library()
        with pytest.raises(ValueError):
            scale_library(sky, "x", 65.0, -1.0, 1.0, 1.0)

    def test_delay_tables_scale(self):
        sky = make_sky130_library()
        half = scale_library(sky, "half_synth", 65.0, 0.5, 1.0, 1.0)
        inv_a = sky.pick("INV", 1.0)
        inv_b = half.pick("INV", 1.0)
        np.testing.assert_allclose(inv_b.arcs[0].delay.values,
                                   0.5 * inv_a.arcs[0].delay.values)
        np.testing.assert_allclose(inv_b.arcs[0].delay.slew_axis,
                                   0.5 * inv_a.arcs[0].delay.slew_axis)

    def test_caps_and_area_scale(self):
        sky = make_sky130_library()
        small = scale_library(sky, "s_synth", 65.0, 1.0, 0.25, 0.1)
        a = sky.pick("NAND2", 2.0)
        b = small.pick("NAND2", 2.0)
        assert b.input_cap("A") == pytest.approx(0.25 * a.input_cap("A"))
        assert b.area == pytest.approx(0.1 * a.area)
        assert b.leakage == pytest.approx(0.1 * a.leakage)

    def test_sequential_constraints_scale(self):
        sky = make_sky130_library()
        fast = scale_library(sky, "f_synth", 65.0, 0.2, 1.0, 1.0)
        dff = fast.pick("DFF", 1.0)
        ref = sky.pick("DFF", 1.0)
        assert dff.setup_time == pytest.approx(0.2 * ref.setup_time)
        assert dff.clk_to_q == pytest.approx(0.2 * ref.clk_to_q)


    def test_cells_actually_renamed(self):
        """Regression: the rename used the library *name* prefix, which
        never matched the ``sky_`` cell prefix, so derived cells kept
        the anchor's names and aliased them in the merged vocabulary."""
        sky = make_sky130_library()
        derived = scale_library(sky, "synth45", 45.0, 0.7, 0.7, 0.7)
        assert not (set(derived.cells) & set(sky.cells))
        assert all(name.startswith("synth45_") for name in derived.cells)
        # Function/drive lookup still works under the new names.
        assert derived.pick("INV", 1.0).name == "synth45_inv_x1"

    def test_alias_prefix_rejected(self):
        sky = make_sky130_library()
        with pytest.raises(ValueError, match="alias"):
            scale_library(sky, "sky_fast", 65.0, 0.5, 1.0, 1.0)

    def test_explicit_cell_prefix_wins(self):
        sky = make_sky130_library()
        derived = scale_library(sky, "whatever", 65.0, 0.5, 1.0, 1.0,
                                cell_prefix="mid")
        assert all(name.startswith("mid_") for name in derived.cells)


class TestInterpolatedNode:
    def test_range_enforced(self):
        with pytest.raises(ValueError):
            make_interpolated_node(3.0)
        with pytest.raises(ValueError):
            make_interpolated_node(180.0)

    def test_anchor_sizes_rejected(self):
        """The open interval (7, 130): a synthetic anchor would silently
        duplicate the real library under a different name."""
        with pytest.raises(ValueError):
            make_interpolated_node(130.0)
        with pytest.raises(ValueError):
            make_interpolated_node(7.0)

    def test_fractional_sizes_get_distinct_names(self):
        """Regression: ``f"synth{nm:.0f}"`` truncated 45.2 and 45.7 to
        the same ``synth45`` name (and identical cell prefixes)."""
        a = make_interpolated_node(45.2)
        b = make_interpolated_node(45.7)
        assert a.name != b.name
        assert a.name == "synth45p2"
        assert not (set(a.cells) & set(b.cells))

    def test_intermediate_node_sits_between_anchors(self):
        from repro.techlib import make_asap7_library

        sky = make_sky130_library()
        asap = make_asap7_library()
        mid = make_interpolated_node(45.0)

        def inv_delay(lib):
            return float(lib.pick("INV", 1.0).arcs[0].delay.values.mean())

        assert inv_delay(asap) < inv_delay(mid) < inv_delay(sky)

    def test_monotone_across_nodes(self):
        delays = []
        for node in (90.0, 45.0, 22.0):
            lib = make_interpolated_node(node)
            delays.append(float(
                lib.pick("INV", 1.0).arcs[0].delay.values.mean()
            ))
        assert delays == sorted(delays, reverse=True)

    def test_derived_library_runs_the_flow(self):
        """A scaled node is a drop-in for mapping, placement and STA."""
        from repro.place import place_design
        from repro.route import PreRouteEstimator
        from repro.sta import run_sta

        lib = make_interpolated_node(45.0)
        nl = map_design(make_design("usbf_device"), lib)
        place_design(nl, seed=0)
        report = run_sta(nl, PreRouteEstimator(nl))
        assert report.endpoint_arrivals
        assert all(v > 0 for v in report.endpoint_arrivals.values())
