"""Tests for the parameterized node ladder."""

import numpy as np
import pytest

from repro.techlib import (
    NodeLadder,
    label_to_nm,
    library_digest,
    make_asap7_library,
    make_sky130_library,
    merged_cell_vocabulary,
    node_label,
)


class TestLabels:
    def test_anchor_labels_match_legacy_node_strings(self):
        assert node_label(130.0) == "130nm"
        assert node_label(7.0) == "7nm"

    def test_fractional_sizes_are_collision_free(self):
        assert node_label(45.2) != node_label(45.7)
        assert node_label(45.2) == "45p2nm"

    def test_label_roundtrip(self):
        for nm in (130.0, 45.0, 45.2, 28.0, 7.0):
            assert label_to_nm(node_label(nm)) == nm

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError):
            label_to_nm("not-a-node")


class TestConstruction:
    def test_sorted_descending_sources_first(self):
        ladder = NodeLadder(node_nms=(7.0, 130.0, 45.0))
        assert ladder.node_labels == ["130nm", "45nm", "7nm"]
        assert ladder.source_labels == ["130nm", "45nm"]
        assert ladder.target_label == "7nm"

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            NodeLadder(node_nms=(45.0,))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            NodeLadder(node_nms=(45.0, 45.0, 7.0))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            NodeLadder(node_nms=(180.0, 7.0))
        with pytest.raises(ValueError):
            NodeLadder(node_nms=(130.0, 3.0))

    def test_spec_roundtrip(self):
        ladder = NodeLadder(node_nms=(130.0, 28.0, 7.0),
                            perturb_gate_mix=True, seed=3)
        rebuilt = NodeLadder.from_spec(ladder.spec)
        assert rebuilt == ladder
        assert rebuilt.digests() == ladder.digests()


class TestLibraries:
    def test_anchor_libraries_are_verbatim(self):
        """[130, 7] ladder == the paper's two-node setting, exactly."""
        ladder = NodeLadder(node_nms=(130.0, 7.0))
        libs = ladder.libraries()
        assert library_digest(libs["130nm"]) == \
            library_digest(make_sky130_library())
        assert library_digest(libs["7nm"]) == \
            library_digest(make_asap7_library())

    def test_cell_names_disjoint_across_nodes(self):
        """Regression for the scale_library rename no-op: every node of
        a chain must contribute its own cell names to the merged
        vocabulary — no cross-node aliasing."""
        ladder = NodeLadder(node_nms=(130.0, 45.0, 28.0, 7.0))
        libs = ladder.libraries()
        names = {label: set(lib.cells) for label, lib in libs.items()}
        labels = list(names)
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                assert not (names[a] & names[b]), (a, b)
        vocab = merged_cell_vocabulary(libs.values())
        assert len(vocab) == sum(len(s) for s in names.values())
        assert ladder.vocabulary() == vocab

    def test_delay_monotone_down_the_chain(self):
        ladder = NodeLadder(node_nms=(130.0, 90.0, 45.0, 14.0, 7.0))

        def inv_delay(lib):
            return float(
                lib.pick("INV", 1.0).arcs[0].delay.values.mean())

        delays = [inv_delay(lib) for lib in ladder.libraries().values()]
        assert delays == sorted(delays, reverse=True)

    def test_describe_lists_every_node_in_order(self):
        ladder = NodeLadder(node_nms=(130.0, 45.0, 7.0))
        records = ladder.describe()
        assert [r["label"] for r in records] == ["130nm", "45nm", "7nm"]
        assert [r["nm"] for r in records] == [130.0, 45.0, 7.0]
        digests = ladder.digests()
        for record in records:
            assert record["digest"] == digests[record["label"]]
            assert record["num_cells"] > 0


class TestGateMixPerturbation:
    def test_deterministic_per_seed(self):
        a = NodeLadder(node_nms=(130.0, 45.0, 7.0),
                       perturb_gate_mix=True, seed=1)
        b = NodeLadder(node_nms=(130.0, 45.0, 7.0),
                       perturb_gate_mix=True, seed=1)
        assert a.digests() == b.digests()

    def test_seed_changes_interpolated_nodes_only(self):
        plain = NodeLadder(node_nms=(130.0, 45.0, 7.0))
        jittered = NodeLadder(node_nms=(130.0, 45.0, 7.0),
                              perturb_gate_mix=True, seed=1)
        assert plain.digests()["130nm"] == jittered.digests()["130nm"]
        assert plain.digests()["7nm"] == jittered.digests()["7nm"]
        # 45nm loses some functions, so its content digest moves.
        assert plain.digests()["45nm"] != jittered.digests()["45nm"]

    def test_protected_functions_survive(self):
        ladder = NodeLadder(node_nms=(130.0, 45.0, 28.0, 14.0, 7.0),
                            perturb_gate_mix=True, seed=0)
        for lib in ladder.libraries().values():
            for fn in ("INV", "BUF", "NAND2", "NOR2", "DFF"):
                assert fn in lib.functions, (lib.name, fn)

    def test_perturbed_chain_digests_differ_across_seeds(self):
        d0 = NodeLadder(node_nms=(130.0, 45.0, 7.0),
                        perturb_gate_mix=True, seed=0).digests()
        d1 = NodeLadder(node_nms=(130.0, 45.0, 7.0),
                        perturb_gate_mix=True, seed=1).digests()
        assert d0["45nm"] != d1["45nm"]
