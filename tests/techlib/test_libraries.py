"""Tests for the synthetic 130nm/7nm libraries and the node gap they encode."""

import numpy as np
import pytest

from repro.techlib import (
    make_asap7_library,
    make_sky130_library,
    merged_cell_vocabulary,
)


@pytest.fixture(scope="module")
def sky():
    return make_sky130_library()


@pytest.fixture(scope="module")
def asap():
    return make_asap7_library()


class TestLibraryStructure:
    def test_basic_counts(self, sky, asap):
        assert len(sky) == 10 * 3 + 2
        assert len(asap) == 11 * 4 + 3

    def test_disjoint_cell_names(self, sky, asap):
        assert not set(sky.cells) & set(asap.cells)

    def test_merged_vocabulary(self, sky, asap):
        vocab = merged_cell_vocabulary([sky, asap])
        assert len(vocab) == len(sky) + len(asap)
        assert vocab == sorted(vocab)

    def test_different_function_mixes(self, sky, asap):
        """Each node has functions the other lacks (forces remapping)."""
        sky_fns, asap_fns = set(sky.functions), set(asap.functions)
        assert "AND2" in sky_fns and "AND2" not in asap_fns
        assert "NAND3" in asap_fns and "NAND3" not in sky_fns

    def test_pick_selects_nearest_drive(self, sky):
        assert sky.pick("INV", 1.0).drive_strength == 1.0
        assert sky.pick("INV", 3.0).drive_strength in (2.0, 4.0)
        assert sky.pick("INV", 100.0).drive_strength == 4.0

    def test_pick_unknown_function_raises(self, asap):
        with pytest.raises(KeyError):
            asap.pick("AND2")

    def test_upsize_downsize_ladder(self, sky):
        x1 = sky.pick("NAND2", 1.0)
        x2 = sky.upsize(x1)
        assert x2.drive_strength == 2.0
        assert sky.downsize(x2) is x1
        top = sky.pick("NAND2", 4.0)
        assert sky.upsize(top) is None
        assert sky.downsize(x1) is None

    def test_sequential_cells(self, sky, asap):
        for lib in (sky, asap):
            dff = lib.pick("DFF", 1.0)
            assert dff.is_sequential
            assert dff.setup_time > 0
            assert dff.clk_to_q > 0
            assert dff.input_pins == ["D", "CK"]
            assert dff.arcs[0].input_pin == "CK"

    def test_stats_keys(self, sky):
        stats = sky.stats()
        assert stats["num_cells"] == len(sky)
        assert stats["mean_input_cap"] > 0


class TestNodeGap:
    """The two nodes must differ by roughly an order of magnitude in speed."""

    def test_inverter_delay_gap(self, sky, asap):
        sky_inv = sky.pick("INV", 1.0)
        asap_inv = asap.pick("INV", 1.0)
        # Evaluate each at a typical fanout-of-4 load for its own node.
        sky_d = sky_inv.arcs[0].delay.lookup(0.05, 4 * sky_inv.input_cap("A"))
        asap_d = asap_inv.arcs[0].delay.lookup(0.008,
                                               4 * asap_inv.input_cap("A"))
        assert sky_d / asap_d > 5.0

    def test_input_cap_gap(self, sky, asap):
        sky_cap = sky.pick("NAND2", 1.0).input_cap("A")
        asap_cap = asap.pick("NAND2", 1.0).input_cap("A")
        assert sky_cap / asap_cap > 4.0

    def test_clock_period_gap(self, sky, asap):
        assert sky.default_clock_period / asap.default_clock_period > 5.0

    def test_area_gap(self, sky, asap):
        assert sky.pick("INV", 1.0).area / asap.pick("INV", 1.0).area > 10.0

    def test_stronger_drive_is_faster_but_bigger(self, sky):
        x1 = sky.pick("NAND2", 1.0)
        x4 = sky.pick("NAND2", 4.0)
        load = 0.05
        d1 = x1.arcs[0].delay.lookup(0.05, load)
        d4 = x4.arcs[0].delay.lookup(0.05, load)
        assert d4 < d1
        assert x4.area > x1.area
        assert x4.input_cap("A") > x1.input_cap("A")

    def test_max_delay_estimate_positive(self, sky):
        for cell in sky.cells.values():
            assert cell.max_delay_estimate > 0
