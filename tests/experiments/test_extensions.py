"""Plumbing tests for the extension experiments."""

import numpy as np
import pytest

from repro.experiments import (
    build_dataset,
    format_calibration,
    format_reverse_transfer,
    run_reverse_transfer,
    run_uncertainty_calibration,
)

FAST_STEPS = 4


@pytest.fixture(scope="module")
def dataset():
    return build_dataset()


class TestUncertaintyCalibration:
    def test_rows_and_format(self, dataset):
        rows = run_uncertainty_calibration(dataset, seed=0,
                                           steps=FAST_STEPS,
                                           mc_samples=8)
        assert len(rows) == len(dataset.test)
        for row in rows:
            assert np.isfinite(row["mean_abs_error"])
            assert row["mean_sigma"] >= 0
        text = format_calibration(rows)
        assert "corr" in text


class TestReverseTransfer:
    def test_runs_and_formats(self):
        results = run_reverse_transfer(seed=0, steps=FAST_STEPS,
                                       resolution=16)
        assert "average" in results
        assert all(np.isfinite(v) for v in results.values())
        text = format_reverse_transfer(results)
        assert "Reverse transfer" in text
