"""Tests for the ladder split and study plumbing (no flow builds)."""

import pytest

from repro.experiments import format_ladder_study, ladder_split
from repro.netlist import TEST_SPLIT, TRAIN_SPLIT
from repro.techlib import NodeLadder


class TestLadderSplit:
    def test_two_anchor_ladder_reproduces_paper_split(self):
        """[130, 7] must degrade to build_dataset's exact split."""
        ladder = NodeLadder(node_nms=(130.0, 7.0))
        train, test = ladder_split(ladder)
        assert train == list(TRAIN_SPLIT.items())
        assert test == [(name, "7nm") for name in TEST_SPLIT]

    def test_sources_round_robin_across_chain(self):
        ladder = NodeLadder(node_nms=(130.0, 45.0, 7.0))
        train, test = ladder_split(ladder)
        by_node = {}
        for name, node in train:
            by_node.setdefault(node, []).append(name)
        # Target-role designs stay on the target node.
        assert by_node["7nm"] == [
            name for name, role in TRAIN_SPLIT.items() if role == "7nm"]
        # The four source-role designs alternate 130 -> 45 -> 130 -> 45.
        sources = [name for name, role in TRAIN_SPLIT.items()
                   if role != "7nm"]
        assert by_node["130nm"] == sources[0::2]
        assert by_node["45nm"] == sources[1::2]
        assert all(node == "7nm" for _, node in test)

    def test_reverse_transfer_target(self):
        ladder = NodeLadder(node_nms=(130.0, 45.0, 7.0))
        train, test = ladder_split(ladder, target_label="130nm")
        assert all(node == "130nm" for _, node in test)
        source_nodes = {node for name, node in train
                        if TRAIN_SPLIT.get(name) != "7nm"}
        assert source_nodes == {"45nm", "7nm"}

    def test_unknown_target_rejected(self):
        ladder = NodeLadder(node_nms=(130.0, 7.0))
        with pytest.raises(ValueError):
            ladder_split(ladder, target_label="45nm")


class TestFormat:
    def test_format_renders_all_sections(self):
        results = {
            "nodes": ["130nm", "45nm", "7nm"],
            "target": "7nm",
            "main": {"average": 0.91, "arm9": 0.9},
            "per_node": {
                "130nm": {"nm": 130.0, "role": "source",
                          "num_cells": 20, "num_train_designs": 2,
                          "loo_average_r2": 0.8, "loo_delta_r2": -0.11},
                "45nm": {"nm": 45.0, "role": "source",
                         "num_cells": 18, "num_train_designs": 2,
                         "loo_average_r2": 0.85, "loo_delta_r2": -0.06},
                "7nm": {"nm": 7.0, "role": "target",
                        "num_cells": 16, "num_train_designs": 1},
            },
            "leave_one_out": {"130nm": {"average": 0.8},
                              "45nm": {"average": 0.85}},
            "reverse": {"target": "130nm", "average": 0.7},
        }
        text = format_ladder_study(results)
        assert "Ladder study" in text
        assert "Leave-one-node-out" in text
        assert "130nm" in text and "45nm" in text
        assert "0.91" in text
        assert "Reverse" in text
