"""Plumbing tests for the experiment drivers.

Training-based experiments run with a handful of steps here: these tests
check wiring, shapes and formatting, not headline accuracy (that is the
benchmark suite's job).
"""

import numpy as np
import pytest

from repro.experiments import (
    SUBSETS,
    build_dataset,
    format_fig1,
    format_fig6,
    format_fig8,
    format_table1,
    format_table2,
    format_table3,
    run_fig1,
    run_fig6,
    run_fig8,
    run_table1,
    run_table2,
    run_table3,
    scale_gap,
    summarize,
)
from repro.netlist import TEST_SPLIT, TRAIN_SPLIT

FAST_STEPS = 4


@pytest.fixture(scope="module")
def dataset():
    return build_dataset()


class TestDataset:
    def test_split_matches_paper(self, dataset):
        assert {d.name for d in dataset.train} == set(TRAIN_SPLIT)
        assert {d.name for d in dataset.test} == set(TEST_SPLIT)
        assert all(d.node == "7nm" for d in dataset.test)
        assert len(dataset.train_source) == 4
        assert len(dataset.train_target) == 1

    def test_normalization_applied(self, dataset):
        stacked = np.concatenate(
            [d.graph.features[:, :3] for d in dataset.train]
        )
        np.testing.assert_allclose(stacked.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(stacked.std(axis=0), 1.0, atol=1e-6)

    def test_by_name(self, dataset):
        assert dataset.by_name("arm9").name == "arm9"
        with pytest.raises(KeyError):
            dataset.by_name("nope")

    def test_subset_train(self, dataset):
        subset = dataset.subset_train(("jpeg",))
        names = {d.name for d in subset}
        assert names == {"smallboom", "jpeg"}

    def test_cache_roundtrip(self, dataset):
        again = build_dataset()
        np.testing.assert_allclose(
            dataset.train[0].labels, again.train[0].labels
        )
        np.testing.assert_allclose(
            dataset.train[0].graph.features,
            again.train[0].graph.features,
        )


class TestTable1:
    def test_rows_and_format(self, dataset):
        rows = run_table1(dataset)
        # 10 designs + 2 average rows.
        assert len(rows) == 12
        text = format_table1(rows)
        assert "smallboom" in text and "Avg train" in text

    def test_averages_are_means(self, dataset):
        rows = run_table1(dataset)
        train_rows = [r for r in rows if r["split"] == "train"
                      and not str(r["benchmark"]).startswith("Avg")]
        avg = next(r for r in rows if r["benchmark"] == "Avg train")
        assert avg["#pin"] == int(np.mean([r["#pin"] for r in train_rows]))


class TestFig6:
    def test_populations_and_gap(self, dataset):
        result = run_fig6(dataset)
        assert scale_gap(result) > 5.0
        text = format_fig6(result)
        assert "scale gap" in text

    def test_density_grids(self, dataset):
        result = run_fig6(dataset)
        for data in result.values():
            assert data["grid"].shape == data["density"].shape
            assert data["density"].min() >= 0


class TestTrainingExperiments:
    def test_table2_plumbing(self, dataset):
        rows = run_table2(dataset, seed=0, steps=FAST_STEPS)
        strategies = {r.strategy for r in rows}
        assert len(strategies) == 5
        assert len(rows) == 5 * len(dataset.test)
        assert all(np.isfinite(r.r2) for r in rows)
        assert all(r.runtime > 0 for r in rows)
        text = format_table2(rows)
        assert "average" in text
        summary = summarize(rows)
        assert set(summary) == strategies

    def test_table3_plumbing(self, dataset):
        rows = run_table3(dataset, seed=0, steps=FAST_STEPS)
        assert len(rows) == len(SUBSETS)
        assert rows[0]["subset"] == ("jpeg",)
        text = format_table3(rows)
        assert "J L S U" in text

    def test_fig1_plumbing(self, dataset):
        panels = run_fig1(dataset, seed=0, steps=FAST_STEPS)
        assert len(panels) == 2
        for data in panels.values():
            assert data["truth"].shape == data["pred"].shape
        text = format_fig1(panels)
        assert "R^2" in text

    def test_fig8_plumbing(self, dataset):
        rows = run_fig8(dataset, seed=0, steps=FAST_STEPS)
        assert [r["variant"] for r in rows] == ["DA only",
                                                "Bayesian only", "Full"]
        text = format_fig8(rows)
        assert "Full" in text
