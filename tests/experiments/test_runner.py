"""Tests for the experiment runner CLI."""

import io

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_all


class TestRunner:
    def test_experiment_registry_complete(self):
        assert {"table1", "table2", "table3",
                "fig1", "fig6", "fig8"} <= set(EXPERIMENTS)

    def test_run_all_subset(self):
        stream = io.StringIO()
        run_all(["table1", "fig6"], stream=stream)
        out = stream.getvalue()
        assert "=== table1" in out
        assert "=== fig6" in out
        assert "table2" not in out

    def test_run_training_experiment_fast(self):
        stream = io.StringIO()
        run_all(["fig8"], steps=3, stream=stream)
        out = stream.getvalue()
        assert "Full" in out

    def test_main_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["not_an_experiment"])
