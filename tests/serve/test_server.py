"""PredictionServer over real sockets: routes, errors, hot-reload.

The hot-reload invariant under test (DESIGN.md §13): a request served
concurrently with a model swap returns the old model's answer or the
new model's answer — never a mixture, never garbage — and a corrupt
checkpoint never takes down the old model."""

import json
import threading

import numpy as np
import pytest

from repro.infer import save_predictor, weight_digest
from repro.serve import (
    PredictionServer,
    ServerConfig,
    ServingClient,
    ServingError,
)
from repro.serve.server import warm_up

ATOL = 1e-10


@pytest.fixture()
def server(designs, model):
    config = ServerConfig(port=0, batch_window_ms=2.0)
    with PredictionServer(designs, model, config=config) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServingClient(server.host, server.port) as c:
        yield c


class TestRoutes:
    def test_healthz(self, client, model):
        body = client.healthz()
        assert body["status"] == "ok"
        assert body["designs"] == 2
        assert body["generation"] == 1
        assert body["digest"] == weight_digest(model)

    def test_predict_matches_seed_path(self, client, designs,
                                       reference):
        for design in designs:
            body = client.predict(design.name)
            assert body["design"] == design.name
            assert body["node"] == design.node
            assert body["num_endpoints"] == design.num_endpoints
            assert body["std"] is None
            assert body["coalesced"] >= 1
            np.testing.assert_allclose(np.asarray(body["mean"]),
                                       reference[design.name],
                                       atol=ATOL)

    def test_predict_with_uncertainty(self, client, designs, model):
        body = client.predict(designs[1].name, mc_samples=16,
                              uncertainty=True)
        ref_mean, ref_std = model.predict_with_uncertainty(
            designs[1], mc_samples=16, seed=0)
        np.testing.assert_allclose(np.asarray(body["mean"]), ref_mean,
                                   atol=ATOL)
        np.testing.assert_allclose(np.asarray(body["std"]), ref_std,
                                   atol=ATOL)

    def test_stats_shape(self, client, designs):
        client.predict(designs[0].name)
        body = client.stats()
        assert body["requests"] >= 1
        assert body["latency"]["count"] >= 1
        assert body["latency"]["p99_ms"] >= body["latency"]["p50_ms"] >= 0
        assert "features" in body["engine"]
        assert "structs" in body["engine"]
        assert body["coalescer"]["requests"] >= 1
        assert body["model"]["generation"] == 1

    def test_window_zero_bypasses_coalescer(self, designs, model,
                                            reference):
        config = ServerConfig(port=0, batch_window_ms=0.0)
        with PredictionServer(designs, model, config=config) as srv:
            with ServingClient(srv.host, srv.port) as c:
                body = c.predict(designs[0].name)
                stats = c.stats()
        assert stats["coalescer"] is None
        assert body["coalesced"] == 1
        np.testing.assert_allclose(np.asarray(body["mean"]),
                                   reference[designs[0].name],
                                   atol=ATOL)


class TestErrors:
    def test_unknown_design_404(self, client):
        with pytest.raises(ServingError) as excinfo:
            client.predict("no_such_design")
        assert excinfo.value.status == 404
        assert "no_such_design" in str(excinfo.value)

    def test_unknown_route_404(self, server):
        with ServingClient(server.host, server.port) as c:
            with pytest.raises(ServingError) as excinfo:
                c._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_bad_json_400(self, server):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            conn.request("POST", "/predict", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "bad request body" in body["error"]

    def test_missing_design_field_400(self, client):
        with pytest.raises(ServingError) as excinfo:
            client._request("POST", "/predict", {"mc_samples": 3})
        assert excinfo.value.status == 400

    def test_reload_without_model_path_400(self, client):
        with pytest.raises(ServingError) as excinfo:
            client.reload()
        assert excinfo.value.status == 400
        assert "without --model" in str(excinfo.value)


class TestHotReload:
    def _serve(self, designs, model, model_file, **config_kwargs):
        config = ServerConfig(port=0, batch_window_ms=2.0,
                              **config_kwargs)
        return PredictionServer(designs, model, model_path=model_file,
                                config=config)

    def test_reload_swaps_to_new_weights(self, designs, model,
                                         other_model, model_file):
        with self._serve(designs, model, model_file) as srv:
            with ServingClient(srv.host, srv.port) as c:
                before = c.predict(designs[0].name)
                save_predictor(other_model, model_file)
                status = c.reload()
                after = c.predict(designs[0].name)
        assert status["reloaded"] is True
        assert status["generation"] == 2
        assert status["digest"] == weight_digest(other_model)
        assert after["generation"] == 2
        ref = other_model.predict(designs[0])
        np.testing.assert_allclose(np.asarray(after["mean"]), ref,
                                   atol=ATOL)
        assert not np.allclose(np.asarray(before["mean"]),
                               np.asarray(after["mean"]))

    def test_corrupt_checkpoint_keeps_old_model(self, designs, model,
                                                model_file, reference):
        with self._serve(designs, model, model_file) as srv:
            with ServingClient(srv.host, srv.port) as c:
                model_file.write_bytes(b"garbage, not a zip archive")
                with pytest.raises(ServingError) as excinfo:
                    c.reload()
                # The old model must still serve, and /stats must
                # report the failure.
                body = c.predict(designs[0].name)
                stats = c.stats()
        assert excinfo.value.status == 500
        assert excinfo.value.body["error_type"] == "CheckpointError"
        assert stats["model"]["failed_reloads"] == 1
        assert stats["model"]["last_reload_error"]
        assert stats["model"]["generation"] == 1
        np.testing.assert_allclose(np.asarray(body["mean"]),
                                   reference[designs[0].name],
                                   atol=ATOL)

    def test_mtime_poll_triggers_reload(self, designs, model,
                                        other_model, model_file):
        import os
        import time

        with self._serve(designs, model, model_file,
                         poll_interval=0.05) as srv:
            with ServingClient(srv.host, srv.port) as c:
                assert c.healthz()["generation"] == 1
                save_predictor(other_model, model_file)
                # Make the mtime change unambiguous on coarse clocks.
                future = time.time() + 5
                os.utime(model_file, (future, future))
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if c.healthz()["generation"] == 2:
                        break
                    time.sleep(0.05)
                assert c.healthz()["generation"] == 2
                assert c.healthz()["digest"] == \
                    weight_digest(other_model)

    def test_reload_mid_traffic_old_or_new_never_garbage(
            self, designs, model, other_model, model_file):
        """Hammer predictions while the model is swapped back and forth;
        every answer must exactly match one of the two models."""
        ref_a = {d.name: model.predict(d) for d in designs}
        ref_b = {d.name: other_model.predict(d) for d in designs}
        errors = []
        stop = threading.Event()

        with self._serve(designs, model, model_file) as srv:
            warm_up(srv.service)

            def hammer(i):
                with ServingClient(srv.host, srv.port,
                                   timeout=60.0) as c:
                    k = 0
                    while not stop.is_set() and k < 200:
                        design = designs[(i + k) % len(designs)]
                        k += 1
                        try:
                            out = np.asarray(
                                c.predict(design.name)["mean"])
                        except ServingError as exc:
                            # A typed, reported failure is acceptable;
                            # garbage is not.
                            errors.append(("http", exc.status))
                            continue
                        ok_a = np.allclose(out, ref_a[design.name],
                                           atol=ATOL)
                        ok_b = np.allclose(out, ref_b[design.name],
                                           atol=ATOL)
                        if not (ok_a or ok_b):
                            errors.append(("garbage", design.name))

            threads = [threading.Thread(target=hammer, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            with ServingClient(srv.host, srv.port, timeout=60.0) as rc:
                for flip in range(6):
                    save_predictor(other_model if flip % 2 == 0
                                   else model, model_file)
                    status = rc.reload()
                    assert status["reloaded"] is True
            stop.set()
            for t in threads:
                t.join()
        assert errors == []


class TestConfigAndLifecycle:
    def test_port_zero_binds_ephemeral(self, server):
        assert server.port > 0

    def test_stop_is_idempotent(self, designs, model):
        srv = PredictionServer(designs, model,
                               config=ServerConfig(port=0))
        srv.start()
        srv.stop()
        srv.stop()

    def test_warm_up_primes_cache(self, designs, model):
        config = ServerConfig(port=0, batch_window_ms=0.0)
        with PredictionServer(designs, model, config=config) as srv:
            warmed = warm_up(srv.service)
            stats = srv.container.engine.cache_stats()
        assert warmed == len(designs)
        assert stats["entries"] == len(designs)
