"""Shared fixtures for the serving tests.

Same two-design cross-node setup as ``tests/infer`` (light
``resolution=16`` flow runs, module scope) plus a trained predictor
saved to disk for the hot-reload tests."""

import numpy as np
import pytest

from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.infer import save_predictor
from repro.model import TimingPredictor
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def designs():
    libraries = {"130nm": make_sky130_library(),
                 "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    out = [
        run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                 resolution=16),
        run_flow("spiMaster", "130nm", libraries, vocab=vocab,
                 resolution=16),
    ]
    normalize_features([d.graph for d in out])
    return out


@pytest.fixture(scope="module")
def model(designs):
    m = TimingPredictor(designs[0].graph.features.shape[1], seed=0)
    m.finalize_node_priors(designs)
    return m


@pytest.fixture()
def other_model(designs):
    """A second predictor with different weights (for hot-reload)."""
    m = TimingPredictor(designs[0].graph.features.shape[1], seed=1)
    m.finalize_node_priors(designs)
    return m


@pytest.fixture()
def model_file(model, tmp_path):
    path = tmp_path / "model.npz"
    save_predictor(model, path)
    return path


@pytest.fixture(scope="module")
def reference(model, designs):
    """Seed-path predictions for every design."""
    return {d.name: model.predict(d) for d in designs}
