"""RequestCoalescer: fusing, grouping, dedupe, shutdown.

The contract (DESIGN.md §13): a fused batch returns exactly what
per-design ``predict`` calls with the same options would have — the
coalescer only changes *when* the engine runs, never *what* it
computes — and no submitter is ever left hanging, including across
shutdown races."""

import threading
import time

import numpy as np
import pytest

from repro.infer import InferenceEngine
from repro.serve import CoalescerClosed, RequestCoalescer


@pytest.fixture()
def engine(model):
    return InferenceEngine(model)


class TestFusing:
    def test_single_request_matches_predict(self, engine, designs,
                                            reference):
        with RequestCoalescer(engine, batch_window_ms=2.0) as co:
            result = co.predict(designs[0], timeout=30.0)
        np.testing.assert_allclose(result.mean,
                                   reference[designs[0].name],
                                   atol=1e-10)

    def test_concurrent_requests_fuse_into_one_batch(self, engine,
                                                     designs):
        engine.predict_many(designs)  # warm so the sweep is fast
        with RequestCoalescer(engine, batch_window_ms=50.0,
                              max_batch=8) as co:
            barrier = threading.Barrier(4)
            handles = [None] * 4

            def submit(i):
                barrier.wait()
                handles[i] = co.submit(designs[i % 2])

            threads = [threading.Thread(target=submit, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            results = [h.wait(timeout=30.0) for h in handles]
            stats = co.stats()
        assert all(r is not None for r in results)
        # All four landed within the window: at least one multi-request
        # batch must have formed (scheduling may split off stragglers).
        assert stats["largest_batch"] >= 2
        assert stats["requests"] == 4

    def test_max_batch_caps_fusion(self, engine, designs):
        with RequestCoalescer(engine, batch_window_ms=200.0,
                              max_batch=2) as co:
            handles = [co.submit(designs[i % 2]) for i in range(4)]
            for h in handles:
                h.wait(timeout=30.0)
            stats = co.stats()
        assert stats["largest_batch"] <= 2
        assert stats["batches"] >= 2

    def test_window_zero_means_single_request_batches(self, engine,
                                                      designs):
        with RequestCoalescer(engine, batch_window_ms=0.0) as co:
            handles = [co.submit(designs[i % 2]) for i in range(3)]
            for h in handles:
                h.wait(timeout=30.0)
            stats = co.stats()
        assert stats["largest_batch"] == 1
        assert stats["batches"] == 3
        assert stats["coalesced_requests"] == 0


class TestGrouping:
    def test_incompatible_options_split_sweeps(self, engine, designs,
                                               model):
        """Requests with different (mc, uncertainty, seed) in one batch
        must not contaminate each other."""
        with RequestCoalescer(engine, batch_window_ms=100.0,
                              max_batch=8) as co:
            plain = co.submit(designs[0])
            mc = co.submit(designs[0], mc_samples=8, seed=7)
            unc = co.submit(designs[1], mc_samples=16,
                            with_uncertainty=True, seed=3)
            plain_out = plain.wait(timeout=30.0)
            mc_out = mc.wait(timeout=30.0)
            unc_out = unc.wait(timeout=30.0)
        np.testing.assert_allclose(plain_out.mean,
                                   model.predict(designs[0]),
                                   atol=1e-10)
        np.testing.assert_allclose(
            mc_out.mean, model.predict(designs[0], mc_samples=8, seed=7),
            atol=1e-10)
        ref_mean, ref_std = model.predict_with_uncertainty(
            designs[1], mc_samples=16, seed=3)
        np.testing.assert_allclose(unc_out.mean, ref_mean, atol=1e-10)
        np.testing.assert_allclose(unc_out.std, ref_std, atol=1e-10)

    def test_duplicate_designs_share_one_sweep_slot(self, engine,
                                                    designs, reference):
        engine.predict_many(designs)  # warm
        calls = []
        original = engine.predict_many

        def spy(batch, **kwargs):
            calls.append(len(batch))
            return original(batch, **kwargs)

        engine.predict_many = spy
        try:
            with RequestCoalescer(engine, batch_window_ms=200.0,
                                  max_batch=8) as co:
                handles = [co.submit(designs[0]) for _ in range(4)]
                results = [h.wait(timeout=30.0) for h in handles]
                stats = co.stats()
        finally:
            engine.predict_many = original
        for r in results:
            np.testing.assert_allclose(r.mean,
                                       reference[designs[0].name],
                                       atol=1e-10)
        # Any sweep serving >1 request must have deduped to one design.
        assert stats["largest_batch"] >= 2
        assert max(calls) == 1


class TestErrorsAndShutdown:
    def test_engine_error_fans_out_to_submitters(self, engine, designs):
        def boom(batch, **kwargs):
            raise RuntimeError("engine exploded")

        engine.predict_many = boom
        with RequestCoalescer(engine, batch_window_ms=50.0) as co:
            h1 = co.submit(designs[0])
            h2 = co.submit(designs[1])
            with pytest.raises(RuntimeError, match="engine exploded"):
                h1.wait(timeout=30.0)
            with pytest.raises(RuntimeError, match="engine exploded"):
                h2.wait(timeout=30.0)

    def test_submit_after_close_raises(self, engine, designs):
        co = RequestCoalescer(engine, batch_window_ms=1.0)
        co.close()
        with pytest.raises(CoalescerClosed):
            co.submit(designs[0])

    def test_pending_requests_fail_on_close_not_hang(self, engine,
                                                     designs):
        slow = threading.Event()

        def stall(batch, **kwargs):
            slow.set()
            time.sleep(0.2)
            raise RuntimeError("interrupted")

        engine.predict_many = stall
        co = RequestCoalescer(engine, batch_window_ms=0.0)
        handle = co.submit(designs[0])
        slow.wait(timeout=5.0)
        late = co.submit(designs[1])   # queued behind the stalled sweep
        co.close(timeout=10.0)
        with pytest.raises((RuntimeError, CoalescerClosed)):
            handle.wait(timeout=10.0)
        with pytest.raises(CoalescerClosed):
            late.wait(timeout=10.0)

    def test_invalid_parameters_rejected(self, engine):
        with pytest.raises(ValueError):
            RequestCoalescer(engine, batch_window_ms=-1.0)
        with pytest.raises(ValueError):
            RequestCoalescer(engine, max_batch=0)

    def test_wait_timeout(self, engine, designs):
        def stall(batch, **kwargs):
            time.sleep(1.0)
            raise RuntimeError("too slow")

        engine.predict_many = stall
        with RequestCoalescer(engine, batch_window_ms=0.0) as co:
            handle = co.submit(designs[0])
            with pytest.raises(TimeoutError):
                handle.wait(timeout=0.05)
