"""Tests for the end-to-end data-generation flow and dataset containers."""

import numpy as np
import pytest

from repro.features import GateVocabulary
from repro.flow import (
    PnRFlow,
    dataset_statistics,
    load_design_data,
    run_flow,
    save_design_data,
)
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def libraries():
    return {"130nm": make_sky130_library(), "7nm": make_asap7_library()}


@pytest.fixture(scope="module")
def vocab(libraries):
    return GateVocabulary(list(libraries.values()))


@pytest.fixture(scope="module")
def arm9_data(libraries, vocab):
    return run_flow("arm9", "7nm", libraries, vocab=vocab, resolution=16)


class TestFlowOutputs:
    def test_shapes_consistent(self, arm9_data):
        d = arm9_data
        k = d.num_endpoints
        assert d.labels.shape == (k,)
        assert d.pre_route_at.shape == (k,)
        assert d.cone_masks.shape == (k, 16, 16)
        assert d.images.shape == (3, 16, 16)
        assert len(d.graph.endpoint_names) == k

    def test_labels_positive(self, arm9_data):
        assert (arm9_data.labels > 0).all()

    def test_labels_generally_above_preroute(self, arm9_data):
        """Signoff includes real routing; on average it is slower."""
        assert arm9_data.labels.mean() > 0.8 * arm9_data.pre_route_at.mean()

    def test_flow_info_populated(self, arm9_data):
        info = arm9_data.flow_info
        assert info["flow_seconds"] > 0
        assert "buffers_inserted" in info

    def test_endpoint_table(self, arm9_data):
        table = arm9_data.endpoint_table()
        assert len(table) == arm9_data.num_endpoints
        assert {"name", "label", "pre_route"} <= set(table[0])

    def test_flow_deterministic(self, libraries, vocab):
        a = run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                     resolution=16, seed=3)
        b = run_flow("usbf_device", "7nm", libraries, vocab=vocab,
                     resolution=16, seed=3)
        np.testing.assert_allclose(a.labels, b.labels)
        np.testing.assert_allclose(a.graph.features, b.graph.features)

    def test_node_scale_gap_in_labels(self, libraries, vocab):
        """Figure 6's premise: 130nm arrival times are ~10x larger."""
        d7 = run_flow("linkruncca", "7nm", libraries, vocab=vocab,
                      resolution=16)
        d130 = run_flow("linkruncca", "130nm", libraries, vocab=vocab,
                        resolution=16)
        assert d130.labels.mean() > 5.0 * d7.labels.mean()

    def test_same_design_same_endpoint_count_across_nodes(self, libraries,
                                                          vocab):
        """Functionality is node-independent: endpoints match."""
        d7 = run_flow("linkruncca", "7nm", libraries, vocab=vocab,
                      resolution=16)
        d130 = run_flow("linkruncca", "130nm", libraries, vocab=vocab,
                        resolution=16)
        assert d7.num_endpoints == d130.num_endpoints


class TestDatasetContainer:
    def test_stats_keys(self, arm9_data):
        stats = arm9_data.stats()
        assert stats["tech node"] == "7nm"
        assert stats["#edp"] == arm9_data.num_endpoints

    def test_dataset_statistics_rows(self, arm9_data):
        rows = dataset_statistics([arm9_data])
        assert rows[0]["benchmark"] == "arm9"

    def test_save_load_roundtrip(self, arm9_data, tmp_path):
        path = tmp_path / "arm9.npz"
        save_design_data(arm9_data, path)
        loaded = load_design_data(path)
        assert loaded.name == arm9_data.name
        assert loaded.node == arm9_data.node
        np.testing.assert_allclose(loaded.labels, arm9_data.labels)
        np.testing.assert_allclose(loaded.graph.features,
                                   arm9_data.graph.features)
        assert len(loaded.graph.levels) == len(arm9_data.graph.levels)
        for a, b in zip(loaded.graph.levels, arm9_data.graph.levels):
            np.testing.assert_array_equal(a, b)
        assert loaded.graph.endpoint_names == arm9_data.graph.endpoint_names
