"""FlowCache / build_designs correctness.

A cache hit must reproduce the flow output exactly; keys must change
with every parameter; ``use_cache=False`` must bypass the store; and a
corrupt entry must be discarded and rebuilt, never served.
"""

import numpy as np
import pytest

from repro.flow import FlowBuildError, FlowCache, build_designs, run_flow
from repro.flow.cache import library_set_digest
from repro.techlib import (make_asap7_library, make_sky130_library,
                           scale_library)
from repro.util import get_timings, reset_timings

NAMES = [("usbf_device", "7nm")]

#: The library-set digest build_designs keys on for the default
#: two-node libraries.
DIGEST = library_set_digest(
    {"130nm": make_sky130_library(), "7nm": make_asap7_library()})


@pytest.fixture(scope="module")
def fresh():
    libraries = {"130nm": make_sky130_library(), "7nm": make_asap7_library()}
    return run_flow("usbf_device", "7nm", libraries, resolution=16)


def _assert_identical(a, b):
    assert a.name == b.name and a.node == b.node
    np.testing.assert_array_equal(a.graph.features, b.graph.features)
    np.testing.assert_array_equal(a.graph.net_edges, b.graph.net_edges)
    np.testing.assert_array_equal(a.graph.cell_edges, b.graph.cell_edges)
    np.testing.assert_array_equal(a.graph.endpoint_rows,
                                  b.graph.endpoint_rows)
    assert a.graph.endpoint_names == b.graph.endpoint_names
    assert len(a.graph.levels) == len(b.graph.levels)
    for la, lb in zip(a.graph.levels, b.graph.levels):
        np.testing.assert_array_equal(la, lb)
    np.testing.assert_array_equal(a.images, b.images)
    np.testing.assert_array_equal(a.cone_masks, b.cone_masks)
    np.testing.assert_array_equal(a.labels, b.labels)
    np.testing.assert_array_equal(a.pre_route_at, b.pre_route_at)
    assert a.clock_period == b.clock_period


class TestCacheHit:
    def test_hit_returns_exact_arrays(self, tmp_path, fresh):
        (cold,) = build_designs(NAMES, resolution=16, cache_dir=tmp_path)
        (warm,) = build_designs(NAMES, resolution=16, cache_dir=tmp_path)
        _assert_identical(cold, fresh)
        _assert_identical(warm, cold)

    def test_hit_does_not_rerun_flow(self, tmp_path):
        build_designs(NAMES, resolution=16, cache_dir=tmp_path)
        cache = FlowCache(tmp_path)
        path = cache.path("usbf_device", "7nm", 1.0, 16, 0, DIGEST)
        mtime = path.stat().st_mtime_ns
        build_designs(NAMES, resolution=16, cache_dir=tmp_path)
        assert path.stat().st_mtime_ns == mtime


class TestCacheKey:
    def test_key_changes_per_parameter(self):
        cache = FlowCache("/tmp/unused")
        base = cache.key("jpeg", "7nm", 1.0, 32, 0)
        assert cache.key("jpeg", "130nm", 1.0, 32, 0) != base
        assert cache.key("jpeg", "7nm", 2.0, 32, 0) != base
        assert cache.key("jpeg", "7nm", 1.0, 16, 0) != base
        assert cache.key("jpeg", "7nm", 1.0, 32, 7) != base
        assert cache.key("spiMaster", "7nm", 1.0, 32, 0) != base

    def test_key_canonicalizes_numerically_equal_params(self):
        """Regression: ``repr`` typing leaked into the key (s1.0 vs s1),
        so int-vs-float call sites missed each other's entries."""
        cache = FlowCache("/tmp/unused")
        base = cache.key("jpeg", "7nm", 1.0, 32, 0)
        assert cache.key("jpeg", "7nm", 1, 32, 0) == base
        assert cache.key("jpeg", "7nm", np.float64(1.0), 32, 0) == base
        assert cache.key("jpeg", "7nm", 1.0, np.int64(32),
                         np.int32(0)) == base
        # Distinct values still produce distinct keys.
        assert cache.key("jpeg", "7nm", 1.5, 32, 0) != base

    def test_int_and_float_scale_share_cache_entries(self, tmp_path):
        cache = FlowCache(tmp_path)
        assert cache.path("jpeg", "7nm", 1, 16, 0) == \
            cache.path("jpeg", "7nm", 1.0, 16, np.int64(0))

    def test_scale_and_seed_miss_the_cache(self, tmp_path):
        build_designs(NAMES, resolution=16, cache_dir=tmp_path)
        cache = FlowCache(tmp_path)
        assert cache.load("usbf_device", "7nm", 1.0, 16, 0,
                          DIGEST) is not None
        assert cache.load("usbf_device", "7nm", 1.0, 16, 1, DIGEST) is None
        assert cache.load("usbf_device", "7nm", 0.5, 16, 0, DIGEST) is None
        assert cache.load("usbf_device", "7nm", 1.0, 32, 0, DIGEST) is None
        # The node string alone is not enough: without the library-set
        # digest the entry built against the real libraries must miss.
        assert cache.load("usbf_device", "7nm", 1.0, 16, 0) is None


class TestBypassAndCorruption:
    def test_no_cache_writes_nothing(self, tmp_path):
        build_designs(NAMES, resolution=16, use_cache=False,
                      cache_dir=tmp_path)
        assert not list(tmp_path.rglob("*.npz"))

    def test_no_cache_ignores_existing_entries(self, tmp_path, fresh):
        build_designs(NAMES, resolution=16, cache_dir=tmp_path)
        cache = FlowCache(tmp_path)
        path = cache.path("usbf_device", "7nm", 1.0, 16, 0, DIGEST)
        path.write_bytes(b"poisoned")  # would crash if loaded
        (rebuilt,) = build_designs(NAMES, resolution=16, use_cache=False,
                                   cache_dir=tmp_path)
        _assert_identical(rebuilt, fresh)
        assert path.read_bytes() == b"poisoned"  # bypass never touched it

    def test_corrupt_entry_discarded_and_rebuilt(self, tmp_path, fresh):
        build_designs(NAMES, resolution=16, cache_dir=tmp_path)
        cache = FlowCache(tmp_path)
        path = cache.path("usbf_device", "7nm", 1.0, 16, 0, DIGEST)
        path.write_bytes(b"\x00" * 64)
        (rebuilt,) = build_designs(NAMES, resolution=16,
                                   cache_dir=tmp_path)
        _assert_identical(rebuilt, fresh)
        assert cache.load("usbf_device", "7nm", 1.0, 16, 0,
                          DIGEST) is not None


class TestParallelBuild:
    def test_workers_match_serial(self, tmp_path, fresh):
        names = [("usbf_device", "7nm"), ("spiMaster", "130nm")]
        serial = build_designs(names, resolution=16, use_cache=False)
        parallel = build_designs(names, resolution=16, workers=2,
                                 use_cache=False)
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)
        _assert_identical(serial[0], fresh)

    def test_worker_timings_merge_into_parent(self):
        reset_timings()
        build_designs([("usbf_device", "7nm"), ("spiMaster", "130nm")],
                      resolution=16, workers=2, use_cache=False)
        timings = get_timings()
        # Flow phases ran only inside worker processes; seeing them in
        # the parent registry proves the snapshots were merged back.
        assert timings["flow.run"]["calls"] == 2
        assert timings["flow.run"]["seconds"] > 0.0
        for phase in ("flow.synthesize", "flow.place", "flow.route",
                      "flow.signoff"):
            assert timings[phase]["calls"] == 2
        reset_timings()


class TestBuildFailures:
    def test_serial_failure_names_designs(self):
        with pytest.raises(FlowBuildError) as excinfo:
            build_designs([("usbf_device", "7nm"), ("no_such_design", "7nm"),
                           ("also_missing", "130nm")],
                          resolution=16, use_cache=False,
                          retry_backoff=0.0)
        failures = excinfo.value.failures
        assert [(n, node) for n, node, _ in failures] == \
            [("no_such_design", "7nm"), ("also_missing", "130nm")]
        assert all(isinstance(exc, KeyError) for _, _, exc in failures)
        assert "no_such_design@7nm" in str(excinfo.value)
        assert "also_missing@130nm" in str(excinfo.value)

    def test_parallel_failure_names_designs(self):
        with pytest.raises(FlowBuildError) as excinfo:
            build_designs([("usbf_device", "7nm"),
                           ("no_such_design", "7nm")],
                          resolution=16, workers=2, use_cache=False,
                          retry_backoff=0.0)
        assert [(n, node) for n, node, _ in excinfo.value.failures] == \
            [("no_such_design", "7nm")]

    def test_pool_failure_recovered_by_serial_retry(self, monkeypatch,
                                                    fresh):
        """A pool-level failure (e.g. a worker OOM-killed) must fall back
        to a serial rebuild of exactly the failed designs."""
        from repro.flow import cache as cache_mod

        calls = {}

        def broken_pool(tasks, workers):
            calls["tasks"] = dict(tasks)
            return {}, {i: RuntimeError("worker died")
                        for i in tasks}

        monkeypatch.setattr(cache_mod, "_run_parallel", broken_pool)
        (built,) = build_designs(NAMES, resolution=16, workers=2,
                                 use_cache=False)
        assert calls["tasks"] == {
            0: ("usbf_device", "7nm", 1.0, 16, 0, None)}
        _assert_identical(built, fresh)


class TestRetryBackoff:
    """Transient build failures ride out on retry-with-backoff."""

    @pytest.fixture
    def sleeps(self, monkeypatch):
        from repro.flow import cache as cache_mod

        recorded = []
        monkeypatch.setattr(cache_mod, "_sleep", recorded.append)
        return recorded

    @pytest.fixture
    def flaky_run(self, monkeypatch):
        """Make PnRFlow.run fail ``flaky_run.failures_left`` times."""
        from repro.flow.pnr import PnRFlow

        original = PnRFlow.run
        state = type("State", (), {"failures_left": 0, "calls": 0})()

        def wrapped(self, name, node):
            state.calls += 1
            if state.failures_left > 0:
                state.failures_left -= 1
                raise RuntimeError("transient build failure")
            return original(self, name, node)

        monkeypatch.setattr(PnRFlow, "run", wrapped)
        return state

    def test_transient_failure_recovered(self, sleeps, flaky_run, fresh):
        flaky_run.failures_left = 2
        (built,) = build_designs(NAMES, resolution=16, use_cache=False,
                                 retries=2, retry_backoff=0.5)
        _assert_identical(built, fresh)
        assert flaky_run.calls == 3
        assert sleeps == [0.5, 1.0]  # exponential: base, base*2

    def test_exhausted_retries_raise(self, sleeps, flaky_run):
        flaky_run.failures_left = 99
        with pytest.raises(FlowBuildError) as excinfo:
            build_designs(NAMES, resolution=16, use_cache=False,
                          retries=1, retry_backoff=0.25)
        assert flaky_run.calls == 2  # first attempt + one retry
        assert sleeps == [0.25]
        ((name, node, exc),) = excinfo.value.failures
        assert (name, node) == ("usbf_device", "7nm")
        assert "transient" in str(exc)

    def test_retries_zero_fails_fast(self, sleeps, flaky_run):
        flaky_run.failures_left = 1
        with pytest.raises(FlowBuildError):
            build_designs(NAMES, resolution=16, use_cache=False,
                          retries=0)
        assert flaky_run.calls == 1
        assert sleeps == []

    def test_zero_backoff_never_sleeps(self, sleeps, flaky_run, fresh):
        flaky_run.failures_left = 1
        (built,) = build_designs(NAMES, resolution=16, use_cache=False,
                                 retries=2, retry_backoff=0.0)
        _assert_identical(built, fresh)
        assert sleeps == []

    def test_pool_failure_counts_as_first_attempt(self, monkeypatch,
                                                  sleeps, fresh):
        """A design that failed in the pool has used one attempt: the
        serial fallback backs off before touching it again."""
        from repro.flow import cache as cache_mod

        def broken_pool(tasks, workers):
            return {}, {i: RuntimeError("worker died") for i in tasks}

        monkeypatch.setattr(cache_mod, "_run_parallel", broken_pool)
        (built,) = build_designs(NAMES, resolution=16, workers=2,
                                 use_cache=False, retries=2,
                                 retry_backoff=0.5)
        _assert_identical(built, fresh)
        assert sleeps == [0.5]  # one backoff before the serial recovery


class TestLibraryContentKeying:
    """Regression: cache keys used to include only the *node label*, so
    two same-named but differently-scaled libraries collided — a run
    against a rescaled "7nm" silently served designs built against the
    real one."""

    def test_same_label_different_content_digests_apart(self):
        base = {"130nm": make_sky130_library(),
                "7nm": make_asap7_library()}
        asap = base["7nm"]
        rescaled = dict(base)
        rescaled["7nm"] = scale_library(
            asap, name=asap.name, node_nm=asap.node_nm,
            delay_factor=0.5, cap_factor=1.0, area_factor=1.0,
            cell_prefix="fast")
        assert library_set_digest(rescaled) != library_set_digest(base)

    def test_key_separates_same_label_library_sets(self, tmp_path):
        asap = make_asap7_library()
        rescaled = scale_library(
            asap, name=asap.name, node_nm=asap.node_nm,
            delay_factor=0.5, cap_factor=1.0, area_factor=1.0,
            cell_prefix="fast")
        d_base = library_set_digest({"7nm": asap})
        d_fast = library_set_digest({"7nm": rescaled})
        cache = FlowCache(tmp_path)
        assert cache.key("jpeg", "7nm", 1.0, 16, 0, d_base) != \
            cache.key("jpeg", "7nm", 1.0, 16, 0, d_fast)

    def test_build_designs_misses_on_changed_libraries(self, tmp_path):
        """An entry built against the default libraries must not be
        served for the same (name, node) under different libraries."""
        build_designs(NAMES, resolution=16, cache_dir=tmp_path)
        base = {"130nm": make_sky130_library(),
                "7nm": make_asap7_library()}
        asap = base["7nm"]
        rescaled = dict(base)
        rescaled["7nm"] = scale_library(
            asap, name=asap.name, node_nm=asap.node_nm,
            delay_factor=0.5, cap_factor=1.0, area_factor=1.0,
            cell_prefix="fast")
        cache = FlowCache(tmp_path)
        assert cache.load("usbf_device", "7nm", 1.0, 16, 0,
                          library_set_digest(base)) is not None
        assert cache.load("usbf_device", "7nm", 1.0, 16, 0,
                          library_set_digest(rescaled)) is None


class TestAtomicStore:
    """Regression: ``save_design_data`` used to call a raw
    ``np.savez_compressed`` straight at the target, so a crash
    mid-write could leave a torn archive (detected only later, as a
    discard-and-rebuild cache miss).  It now stages next to the target
    and renames into place."""

    def test_crash_mid_write_leaves_previous_entry_intact(
            self, tmp_path, fresh, monkeypatch):
        from repro.flow.dataset import load_design_data, save_design_data
        from repro.nn import serialization

        target = tmp_path / "design.npz"
        save_design_data(fresh, target)
        good = target.read_bytes()

        def torn_write(path, **arrays):
            with open(str(path), "wb") as handle:
                handle.write(b"torn")
            raise OSError("disk full")

        monkeypatch.setattr(serialization.np, "savez_compressed",
                            torn_write)
        with pytest.raises(OSError, match="disk full"):
            save_design_data(fresh, target)
        # The previous entry survives byte-for-byte, the stage file is
        # cleaned up, and the entry still loads.
        assert target.read_bytes() == good
        assert sorted(p.name for p in tmp_path.iterdir()) == ["design.npz"]
        _assert_identical(load_design_data(target), fresh)

    def test_store_leaves_no_stage_files(self, tmp_path, fresh):
        cache = FlowCache(tmp_path / "designs")
        path = cache.store(fresh, scale=1.0, resolution=16, seed=0)
        assert path.is_file()
        assert sorted(p.name for p in path.parent.iterdir()) == [path.name]
        _assert_identical(cache.load(fresh.name, fresh.node, 1.0, 16, 0),
                          fresh)
