"""Tests for floorplanning and quadratic placement."""

import numpy as np
import pytest

from repro.netlist import make_design, map_design
from repro.place import (
    Floorplan,
    MacroRegion,
    make_floorplan,
    place_design,
    total_hpwl,
)
from repro.techlib import make_asap7_library


@pytest.fixture(scope="module")
def asap():
    return make_asap7_library()


@pytest.fixture(scope="module")
def placed(asap):
    nl = map_design(make_design("arm9"), asap)
    fp = place_design(nl, seed=3)
    return nl, fp


class TestFloorplan:
    def test_die_fits_cells(self, asap):
        nl = map_design(make_design("chacha"), asap)
        fp = make_floorplan(nl, utilization=0.65)
        assert fp.core_area * 1.01 >= nl.total_cell_area() / 0.65

    def test_rows_match_site(self, asap):
        nl = map_design(make_design("arm9"), asap)
        fp = make_floorplan(nl)
        assert fp.row_height == asap.site[1]
        assert fp.num_rows >= 1
        assert fp.height == pytest.approx(fp.num_rows * fp.row_height)

    def test_macros_inside_die(self, asap):
        nl = map_design(make_design("arm9"), asap)
        fp = make_floorplan(nl, n_macros=2, seed=5)
        assert len(fp.macros) == 2
        for m in fp.macros:
            assert 0 <= m.x and m.x + m.width <= fp.width + 1e-9
            assert 0 <= m.y and m.y + m.height <= fp.height + 1e-9

    def test_zero_macros(self, asap):
        nl = map_design(make_design("arm9"), asap)
        fp = make_floorplan(nl, n_macros=0)
        assert fp.macros == []

    def test_macro_region_contains(self):
        m = MacroRegion(1.0, 2.0, 3.0, 4.0)
        assert m.contains(2.0, 3.0)
        assert not m.contains(0.5, 3.0)
        assert m.area == 12.0

    def test_clamp(self):
        fp = Floorplan(10.0, 8.0, 1.0, 0.2)
        assert fp.clamp(-1.0, 20.0) == (0.0, 8.0)
        assert fp.clamp(5.0, 4.0) == (5.0, 4.0)


class TestPlacement:
    def test_all_cells_inside_die(self, placed):
        nl, fp = placed
        for cell in nl.cells.values():
            assert -1e-6 <= cell.x <= fp.width + 1e-6
            assert -1e-6 <= cell.y <= fp.height + 1e-6

    def test_cells_on_rows(self, placed):
        nl, fp = placed
        for cell in nl.cells.values():
            row = round(cell.y / fp.row_height - 0.5)
            assert cell.y == pytest.approx(fp.row_y(int(row)))

    def test_ports_on_boundary(self, placed):
        nl, fp = placed
        for port in nl.ports.values():
            on_edge = (
                abs(port.x) < 1e-6 or abs(port.x - fp.width) < 1e-6
                or abs(port.y) < 1e-6 or abs(port.y - fp.height) < 1e-6
            )
            assert on_edge, port.name

    def test_pins_follow_cells(self, placed):
        nl, _ = placed
        for cell in nl.cells.values():
            for pin in cell.pins.values():
                assert abs(pin.x - cell.x) < 0.5
                assert pin.y == pytest.approx(cell.y)

    def test_deterministic_given_seed(self, asap):
        a = map_design(make_design("linkruncca"), asap)
        b = map_design(make_design("linkruncca"), asap)
        place_design(a, seed=7)
        place_design(b, seed=7)
        for name in a.cells:
            assert a.cells[name].x == pytest.approx(b.cells[name].x)

    def test_placement_beats_random_hpwl(self, asap):
        """Quadratic placement should easily beat a random shuffle."""
        nl = map_design(make_design("chacha"), asap)
        fp = place_design(nl, seed=0)
        placed_hpwl = total_hpwl(nl)
        rng = np.random.default_rng(0)
        for cell in nl.cells.values():
            cell.x = rng.uniform(0, fp.width)
            cell.y = rng.uniform(0, fp.height)
            for pin in cell.pins.values():
                pin.x, pin.y = cell.x, cell.y
        random_hpwl = total_hpwl(nl)
        assert placed_hpwl < 0.8 * random_hpwl

    def test_connected_cells_are_near(self, placed):
        """Cells sharing a net should be much closer than the die size."""
        nl, fp = placed
        dists = []
        for net in nl.nets.values():
            if net.driver is None or net.driver.cell is None or net.is_clock:
                continue
            for sink in net.sinks:
                if sink.cell is not None:
                    dists.append(abs(net.driver.x - sink.x)
                                 + abs(net.driver.y - sink.y))
        assert np.mean(dists) < 0.5 * (fp.width + fp.height)

    def test_empty_netlist_places(self, asap):
        from repro.netlist import Netlist
        nl = Netlist("empty", asap)
        nl.add_port("a", "input")
        fp = make_floorplan(nl)
        from repro.place import QuadraticPlacer
        QuadraticPlacer(nl, fp).run()  # must not crash
