"""Quickstart: predict post-routing arrival times before routing exists.

Builds a small two-design dataset through the synthetic PnR flow, trains
the paper's transfer-learning timing predictor for a few steps, and
compares its predictions on held-out endpoints against the signoff STA
ground truth.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.features import GateVocabulary, normalize_features
from repro.flow import run_flow
from repro.model import TimingPredictor
from repro.techlib import make_asap7_library, make_sky130_library
from repro.train import OursTrainer, TrainConfig, r2_score


def main() -> None:
    # 1. Two synthetic technology nodes (the PDK substitute).
    libraries = {"130nm": make_sky130_library(),
                 "7nm": make_asap7_library()}
    vocab = GateVocabulary(list(libraries.values()))
    print(f"libraries: {libraries['130nm']} / {libraries['7nm']}")

    # 2. Run designs through synthesis -> place -> optimize -> route ->
    #    signoff STA.  The model sees the pre-route snapshot; labels are
    #    signoff arrival times.
    print("running the PnR flow (this builds the dataset) ...")
    train = [
        run_flow("smallboom", "7nm", libraries, vocab=vocab),
        run_flow("jpeg", "130nm", libraries, vocab=vocab),
        run_flow("linkruncca", "130nm", libraries, vocab=vocab),
    ]
    test = run_flow("chacha", "7nm", libraries, vocab=vocab)
    normalize_features([d.graph for d in train + [test]])
    for d in train:
        print(f"  {d.name:>10} @{d.node}: {d.num_endpoints} endpoints, "
              f"mean signoff AT {d.labels.mean():.3f} ns")

    # 3. Train the disentangle-align-generalize model.
    print("training the timing predictor ...")
    model = TimingPredictor(train[0].graph.features.shape[1], seed=0)
    trainer = OursTrainer(model, train, TrainConfig(steps=150, seed=0))
    history = trainer.fit()
    # The first 30% of steps are regression-only warmup; compare within
    # the full-objective regime.
    start = int(0.3 * len(history))
    print(f"  loss {history[start]['total']:.2f} -> "
          f"{history[-1]['total']:.2f}")

    # 4. Predict on an unseen 7nm design.
    pred = model.predict(test)
    print(f"test design {test.name}: R^2 = "
          f"{r2_score(test.labels, pred):.3f}")
    worst = np.argsort(-test.labels)[:5]
    print("  five most critical endpoints (truth vs predicted, ns):")
    for k in worst:
        name = test.graph.endpoint_names[k]
        print(f"    {name:>14}: {test.labels[k]:.3f} vs {pred[k]:.3f}")


if __name__ == "__main__":
    main()
