"""Build your own benchmark from the block library and analyse it.

Shows the substrate as a user-extensible toolkit: assemble a custom
design from functional blocks, push it through both technology nodes,
compare the mapped netlists, verify functional equivalence by
simulation, and profile how far the classical pre-route Elmore estimate
is from signoff.

Run:
    python examples/custom_design.py
"""

import numpy as np

from repro.analysis import design_summary, elmore_baseline_profile
from repro.features import GateVocabulary
from repro.flow import PnRFlow
from repro.netlist import LogicGraph, blocks, equivalent_behaviour, map_design
from repro.netlist.designs import _mark_word, _word
from repro.techlib import make_asap7_library, make_sky130_library


def make_mac_filter(taps: int = 3, width: int = 5) -> LogicGraph:
    """A custom FIR-like multiply-accumulate filter with a saturator."""
    g = LogicGraph("mac_filter")
    xs = [_word(g, f"x{i}", width) for i in range(taps)]
    cs = [_word(g, f"c{i}", width) for i in range(taps)]
    acc = blocks.array_multiplier(g, xs[0], cs[0])[: 2 * width]
    for x, c in zip(xs[1:], cs[1:]):
        prod = blocks.array_multiplier(g, x, c)[: 2 * width]
        acc = blocks.ripple_adder(g, acc, prod)[: 2 * width]
    # Saturate: if any high bit is set, clamp outputs high.
    overflow = blocks.or_reduce(g, acc[width:])
    ones = [g.add_gate("OR2", (bit, overflow)) for bit in acc[:width]]
    regs = blocks.register_word(g, ones)
    _mark_word(g, regs, "y")
    g.validate()
    return g


def main() -> None:
    graph = make_mac_filter()
    print(f"custom design: {graph}")

    sky, asap = make_sky130_library(), make_asap7_library()
    nl_sky = map_design(graph, sky)
    nl_asap = map_design(graph, asap)
    print(design_summary(nl_sky).format())
    print()
    print(design_summary(nl_asap).format())

    # Prove the two mappings implement the same function.
    rng = np.random.default_rng(0)
    names = [graph.nodes[i].name for i in graph.inputs]
    stimulus = [{n: bool(rng.integers(2)) for n in names}
                for _ in range(5)]
    ok = equivalent_behaviour(graph, [nl_sky, nl_asap], stimulus)
    print(f"\nfunctional equivalence across nodes: "
          f"{'PASS' if ok else 'FAIL'}")

    # Run the full flow at 7nm and profile the classical estimate.
    libraries = {"130nm": sky, "7nm": asap}
    flow = PnRFlow(libraries, vocab=GateVocabulary([sky, asap]))
    from repro.netlist.designs import DESIGN_GENERATORS

    DESIGN_GENERATORS["mac_filter"] = lambda scale=1.0: make_mac_filter()
    data = flow.run("mac_filter", "7nm")
    profile = elmore_baseline_profile(data)
    print(f"\nElmore pre-route baseline on this design:")
    print("  " + profile.format())


if __name__ == "__main__":
    main()
