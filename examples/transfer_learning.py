"""The paper's headline experiment, in miniature: why transfer?

Trains the previous-SOTA model on limited 7nm data only (DAC23-AdvOnly)
and the paper's disentangle-align-generalize model on 7nm + 130nm data,
then compares their accuracy on unseen 7nm designs — the Figure 1
story.  Uses the cached full dataset, so the first run is the slowest.

Run:
    python examples/transfer_learning.py [--steps N]
"""

import argparse

import numpy as np

from repro.experiments import build_dataset
from repro.model import TimingPredictor
from repro.train import (
    OursTrainer,
    TrainConfig,
    r2_score,
    train_adv_only,
)


def main(steps: int = 120) -> None:
    dataset = build_dataset()
    print(f"train: {[d.name + '@' + d.node for d in dataset.train]}")
    print(f"test:  {[d.name for d in dataset.test]} (all 7nm)\n")

    print(f"training DAC23-AdvOnly (7nm data only, {steps} steps) ...")
    adv = train_adv_only(dataset.train, dataset.in_features,
                         TrainConfig(steps=steps, lr=2e-3, seed=0))

    print(f"training Ours (7nm + 130nm transfer, {steps} steps) ...")
    ours = TimingPredictor(dataset.in_features, seed=0)
    OursTrainer(ours, dataset.train,
                TrainConfig(steps=steps, lr=2e-3, seed=0,
                            gamma1=1.0, gamma2=30.0)).fit()

    print(f"\n{'design':>10} | {'AdvOnly R^2':>12} | {'Ours R^2':>10}")
    print("-" * 40)
    adv_scores, ours_scores = [], []
    for design in dataset.test:
        a = r2_score(design.labels, adv.predict(design))
        o = r2_score(design.labels, ours.predict(design))
        adv_scores.append(a)
        ours_scores.append(o)
        print(f"{design.name:>10} | {a:>12.3f} | {o:>10.3f}")
    print("-" * 40)
    print(f"{'average':>10} | {np.mean(adv_scores):>12.3f} | "
          f"{np.mean(ours_scores):>10.3f}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--steps", type=int, default=120)
    main(parser.parse_args().steps)
