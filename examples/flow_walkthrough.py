"""Walk one design through the entire synthetic implementation flow.

Shows every stage a real chip goes through in the paper's data-generation
pipeline — logic generation, technology mapping (on BOTH nodes, to show
the node-dependence), placement, timing optimization, routing, and
signoff STA — printing the intermediate state after each stage.

Run:
    python examples/flow_walkthrough.py [design]
"""

import sys

import numpy as np

from repro.netlist import DESIGN_GENERATORS, make_design, map_design
from repro.opt import optimize_design
from repro.place import place_design, total_hpwl
from repro.route import GlobalRouter, PreRouteEstimator, RoutedParasitics
from repro.sta import derive_constraints, run_sta
from repro.techlib import make_asap7_library, make_sky130_library


def main(design_name: str = "arm9") -> None:
    print(f"=== {design_name}: from RTL-level logic to signoff ===\n")

    # --- Logic synthesis front-end: a technology-independent graph. ---
    graph = make_design(design_name)
    stats = graph.stats()
    print(f"[logic]      {stats['gates']} generic gates, "
          f"{stats['registers']} registers, depth {stats['depth']}")

    # --- Technology mapping onto both nodes (Genus stand-in). ---
    sky, asap = make_sky130_library(), make_asap7_library()
    nl130 = map_design(graph, sky)
    nl7 = map_design(graph, asap)
    print(f"[map 130nm]  {len(nl130.cells)} cells, "
          f"area {nl130.total_cell_area():.0f} um^2")
    print(f"[map   7nm]  {len(nl7.cells)} cells, "
          f"area {nl7.total_cell_area():.2f} um^2  "
          f"(same function, different structure)")

    # Continue at 7nm, like the paper's target node.
    netlist = nl7

    # --- Placement. ---
    floorplan = place_design(netlist, seed=1)
    print(f"[place]      die {floorplan.width:.1f} x "
          f"{floorplan.height:.1f} um, {floorplan.num_rows} rows, "
          f"HPWL {total_hpwl(netlist):.0f} um, "
          f"{len(floorplan.macros)} macro blockages")

    # --- Pre-route STA (what the predictor's world looks like). ---
    clock = derive_constraints(netlist)
    pre = run_sta(netlist, PreRouteEstimator(netlist), clock)
    print(f"[pre-route]  clock {clock.period:.3f} ns, "
          f"WNS {pre.wns:+.3f} ns, "
          f"worst endpoint AT {max(pre.endpoint_arrivals.values()):.3f} ns")

    # --- Timing optimization (netlist restructuring). ---
    result = optimize_design(netlist, floorplan, clock)
    print(f"[optimize]   {result.cells_upsized} cells upsized, "
          f"{result.buffers_inserted} buffers inserted, "
          f"WNS {result.wns_before:+.3f} -> {result.wns_after:+.3f} ns")

    # --- Routing (with congestion-driven detours). ---
    router = GlobalRouter(netlist, floorplan, seed=1)
    router.run()
    routed_len = sum(router.routed_length.values())
    print(f"[route]      total wirelength {routed_len:.0f} um, "
          f"peak congestion {router.grid.max_utilization:.2f}")

    # --- Signoff STA on routed parasitics: the labels. ---
    signoff = run_sta(netlist, RoutedParasitics(router), clock)
    ats = np.array(list(signoff.endpoint_arrivals.values()))
    print(f"[signoff]    WNS {signoff.wns:+.3f} ns, "
          f"endpoint AT mean {ats.mean():.3f} / max {ats.max():.3f} ns")
    print("\nmost critical endpoints:")
    for name, at in signoff.critical_endpoints(5):
        print(f"  {name:>16}: {at:.3f} ns "
              f"(slack {signoff.clock.period - at:+.3f})")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "arm9"
    if name not in DESIGN_GENERATORS:
        raise SystemExit(f"unknown design {name!r}; "
                         f"choose from {sorted(DESIGN_GENERATORS)}")
    main(name)
