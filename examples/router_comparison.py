"""Compare the two routing backends: statistical MST vs maze search.

The MST router models congestion detours statistically; the maze router
actually negotiates around congestion bin by bin.  This example routes
the same placed design with both, then compares wirelength, congestion,
and the signoff timing each one produces.

Run:
    python examples/router_comparison.py [design]
"""

import sys

import numpy as np

from repro.analysis import congestion_summary
from repro.netlist import DESIGN_GENERATORS, make_design, map_design
from repro.place import place_design
from repro.route import GlobalRouter, MazeRouter, RoutedParasitics
from repro.sta import run_sta
from repro.techlib import make_asap7_library


def main(design_name: str = "chacha") -> None:
    lib = make_asap7_library()
    netlist = map_design(make_design(design_name), lib)
    floorplan = place_design(netlist, seed=2)
    print(f"{design_name}: {len(netlist.cells)} cells on a "
          f"{floorplan.width:.1f} x {floorplan.height:.1f} um die\n")

    mst = GlobalRouter(netlist, floorplan, seed=2)
    mst.run()
    maze = MazeRouter(netlist, floorplan)
    maze.run()

    for name, router in (("MST + statistical detours", mst),
                         ("maze (congestion-negotiated)", maze)):
        report = run_sta(netlist, RoutedParasitics(router))
        ats = np.array(list(report.endpoint_arrivals.values()))
        total = sum(router.routed_length.values())
        print(f"== {name} ==")
        print(f"  wirelength {total:.0f} um, "
              f"worst AT {ats.max():.4f} ns, WNS {report.wns:+.4f} ns")
        if isinstance(router, GlobalRouter):
            print(congestion_summary(router, top=3))
        else:
            usage = router.grid.usage
            print(f"  peak bin usage {usage.max():.0f} nets, "
                  f"mean {usage.mean():.2f}")
        print()


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "chacha"
    if name not in DESIGN_GENERATORS:
        raise SystemExit(f"unknown design {name!r}")
    main(name)
