"""Beyond two nodes: a scaled intermediate technology (paper extension).

The paper transfers 130nm -> 7nm. The library's scaling module can
synthesise intermediate nodes, so the same flow runs a three-node
study: map one design at 130nm, 45nm (interpolated) and 7nm, and watch
area, delay, and power scale across generations.

Run:
    python examples/multi_node.py
"""

from repro.analysis import estimate_power
from repro.netlist import make_design, map_design
from repro.place import place_design
from repro.route import PreRouteEstimator
from repro.sta import run_sta
from repro.techlib import (
    make_asap7_library,
    make_interpolated_node,
    make_sky130_library,
)


def main(design_name: str = "linkruncca") -> None:
    nodes = [
        make_sky130_library(),
        make_interpolated_node(45.0),
        make_asap7_library(),
    ]
    graph = make_design(design_name)
    print(f"{design_name} across technology nodes:\n")
    print(f"{'node':>14} | {'cells':>6} | {'area um^2':>10} | "
          f"{'worst AT ns':>11} | {'power':>8}")
    print("-" * 62)
    for lib in nodes:
        netlist = map_design(graph, lib)
        place_design(netlist, seed=1)
        est = PreRouteEstimator(netlist)
        report = run_sta(netlist, est)
        power = estimate_power(netlist, est,
                               clock_period=report.clock.period)
        worst = max(report.endpoint_arrivals.values())
        print(f"{lib.name:>14} | {len(netlist.cells):>6} | "
              f"{netlist.total_cell_area():>10.2f} | {worst:>11.4f} | "
              f"{power.total:>8.3g}")
    print("\nEach generation shrinks area and delay coherently — the "
          "scaling\nmodule derives fully usable libraries, so transfer "
          "chains like\n130nm -> 45nm -> 7nm are one library swap away.")


if __name__ == "__main__":
    main()
