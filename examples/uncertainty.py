"""Predictive uncertainty from the Bayesian readout (paper extension).

The Bayesian head gives a predictive distribution per endpoint for free;
the paper never evaluates it.  This example trains the model, samples
the readout weight distribution, and checks whether the predictive
standard deviation is informative: endpoints with larger predicted
uncertainty should have larger actual errors.

Run:
    python examples/uncertainty.py
"""

import numpy as np

from repro.experiments import build_dataset
from repro.model import TimingPredictor
from repro.train import OursTrainer, TrainConfig


def main() -> None:
    dataset = build_dataset()
    print("training ...")
    model = TimingPredictor(dataset.in_features, seed=0)
    OursTrainer(model, dataset.train,
                TrainConfig(steps=120, lr=2e-3, seed=0,
                            gamma1=1.0, gamma2=30.0)).fit()

    print(f"\n{'design':>10} | {'mean |err|':>10} | {'mean sigma':>10} | "
          f"{'corr(sigma,|err|)':>18}")
    print("-" * 58)
    for design in dataset.test:
        mean, std = model.predict_with_uncertainty(design, mc_samples=32)
        err = np.abs(mean - design.labels)
        corr = float(np.corrcoef(std, err)[0, 1]) if std.std() > 0 else 0.0
        print(f"{design.name:>10} | {err.mean():>10.4f} | "
              f"{std.mean():>10.4f} | {corr:>18.3f}")

    print("\npositive correlation = the model knows what it doesn't know.")


if __name__ == "__main__":
    main()
