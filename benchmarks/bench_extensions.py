"""Benchmarks for the extension studies (beyond the paper's evaluation).

- Reverse transfer (7nm -> 130nm): the framework is node-symmetric.
- Uncertainty calibration: the Bayesian head's sigma should carry
  information about the actual error.
"""

import numpy as np

from repro.experiments.extensions import (
    format_calibration,
    format_reverse_transfer,
    run_reverse_transfer,
    run_uncertainty_calibration,
)

from .conftest import bench_seed, bench_steps, record


def test_reverse_transfer(benchmark, results_dir):
    results = benchmark.pedantic(
        run_reverse_transfer,
        kwargs={"seed": bench_seed(), "steps": bench_steps()},
        rounds=1, iterations=1,
    )
    record(results_dir, "ext_reverse_transfer",
           format_reverse_transfer(results))
    # The model must at least generalize somewhere in the reverse
    # direction and produce finite scores everywhere.
    assert all(np.isfinite(v) for v in results.values())
    assert max(v for k, v in results.items() if k != "average") > 0.0


def test_uncertainty_calibration(benchmark, dataset, results_dir):
    rows = benchmark.pedantic(
        run_uncertainty_calibration,
        kwargs={"dataset": dataset, "seed": bench_seed(),
                "steps": bench_steps()},
        rounds=1, iterations=1,
    )
    record(results_dir, "ext_uncertainty", format_calibration(rows))
    assert len(rows) == len(dataset.test)
    # Uncertainty must be non-degenerate on most designs.
    assert sum(1 for r in rows if r["mean_sigma"] > 0) >= 4
