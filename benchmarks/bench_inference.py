"""Inference-engine micro-benchmarks (the serving path).

Measures the three claims of the fast inference architecture
(DESIGN.md §9) against the seed ``TimingPredictor.predict`` path:

- **feature cache** — warm (cache-hit) single-design prediction vs the
  cold first call (>= 3x);
- **no-grad forward** — a full uncached engine prediction vs the
  graph-recording autograd ``predict()`` (same work, no bookkeeping);
- **fused batching** — one ``predict_many`` over all test designs vs
  a per-design autograd ``predict()`` loop (>= 1.5x).

Every timed variant is also checked for numerical equivalence with the
seed path (atol 1e-10) — a fast wrong answer is not a speedup.

Measured numbers land in ``benchmarks/BENCH_inference.json`` (schema:
``repro.obs.schema.validate_bench_inference``; the committed copy is
the recorded baseline).  ``REPRO_BENCH_SMOKE=1`` shrinks repeat counts
for CI, where only the schema and equivalence — not the ratios — are
asserted (shared runners make ratio floors flaky).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.infer import InferenceEngine
from repro.model import TimingPredictor
from repro.util import reset_timings

from .conftest import bench_seed, record

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_inference.json"

ATOL = 1e-10


def smoke_mode() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def repeats() -> int:
    return 5 if smoke_mode() else 30


def _best(fn, n):
    """Minimum wall-clock over ``n`` calls (robust on noisy runners)."""
    times = []
    for _ in range(n):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


@pytest.fixture(scope="module")
def model(dataset):
    m = TimingPredictor(dataset.in_features, seed=bench_seed())
    m.finalize_node_priors(dataset.train)
    return m


@pytest.fixture(scope="module")
def measurements(dataset, model):
    reset_timings()
    designs = dataset.test
    target = max(designs, key=lambda d: d.num_endpoints)
    n = repeats()

    # -- single design: cold (fresh engine, first call) vs warm ------
    # One throwaway prediction first so BLAS/threadpool init is not
    # billed to the cold call.
    InferenceEngine(model).predict(min(designs,
                                       key=lambda d: d.num_endpoints))
    engine = InferenceEngine(model)
    start = time.perf_counter()
    cold_pred = engine.predict(target)
    cold = time.perf_counter() - start
    warm = _best(lambda: engine.predict(target), n)
    warm_pred = engine.predict(target)

    # -- forward: autograd predict() vs uncached no-grad engine ------
    bare = InferenceEngine(model, use_cache=False)
    auto_s, nograd_s = [], []
    for _ in range(max(3, n // 3)):  # interleave: same noise windows
        start = time.perf_counter()
        auto_pred = model.predict(target)
        auto_s.append(time.perf_counter() - start)
        start = time.perf_counter()
        nograd_pred = bare.predict(target)
        nograd_s.append(time.perf_counter() - start)

    # -- batched no-grad predict_many vs looped autograd predict -----
    loop_s, fused_s = [], []
    for _ in range(max(3, n // 3)):
        start = time.perf_counter()
        loop_preds = {d.name: model.predict(d) for d in designs}
        loop_s.append(time.perf_counter() - start)
        start = time.perf_counter()
        fused_preds = bare.predict_many(designs)
        fused_s.append(time.perf_counter() - start)

    total_endpoints = int(sum(d.num_endpoints for d in designs))
    warm_many = _best(lambda: engine.predict_many(designs), n)

    diffs = [np.max(np.abs(cold_pred - auto_pred)),
             np.max(np.abs(warm_pred - auto_pred)),
             np.max(np.abs(nograd_pred - auto_pred))]
    diffs += [np.max(np.abs(fused_preds[name].mean - pred))
              for name, pred in loop_preds.items()]

    return {
        "single_design": {
            "design": target.name,
            "num_endpoints": int(target.num_endpoints),
            "cold_seconds": cold,
            "warm_seconds": warm,
            "speedup": cold / warm,
            "repeats": n,
            "statistic": "min",
        },
        "forward": {
            "autograd_seconds": min(auto_s),
            "nograd_seconds": min(nograd_s),
            "speedup": min(auto_s) / min(nograd_s),
        },
        "batched": {
            "looped_autograd_seconds": min(loop_s),
            "fused_nograd_seconds": min(fused_s),
            "speedup": min(loop_s) / min(fused_s),
            "num_designs": len(designs),
            "num_endpoints": total_endpoints,
        },
        "throughput": {
            "endpoints_per_second_warm": total_endpoints / warm_many,
            "endpoints_per_second_cold": total_endpoints / min(fused_s),
        },
        "equivalence": {
            "max_abs_diff": float(max(diffs)),
            "atol": ATOL,
        },
        "machine": {"cpu_count": os.cpu_count()},
        "smoke": smoke_mode(),
    }


def test_engine_matches_seed_path(measurements):
    assert measurements["equivalence"]["max_abs_diff"] <= ATOL


def test_payload_matches_schema_and_is_recorded(measurements,
                                                results_dir):
    from repro.obs import validate_bench_inference

    assert validate_bench_inference(measurements) == []
    s = measurements["single_design"]
    f = measurements["forward"]
    b = measurements["batched"]
    t = measurements["throughput"]
    text = "\n".join([
        f"single design ({s['design']}, {s['num_endpoints']} endpoints, "
        f"min over {s['repeats']})",
        f"  cold    {s['cold_seconds'] * 1e3:.2f} ms",
        f"  warm    {s['warm_seconds'] * 1e3:.3f} ms",
        f"  speedup {s['speedup']:.1f}x",
        "forward (uncached engine vs autograd predict)",
        f"  autograd {f['autograd_seconds'] * 1e3:.2f} ms",
        f"  no-grad  {f['nograd_seconds'] * 1e3:.2f} ms",
        f"  speedup  {f['speedup']:.2f}x",
        f"batched ({b['num_designs']} designs, "
        f"{b['num_endpoints']} endpoints)",
        f"  looped  {b['looped_autograd_seconds'] * 1e3:.2f} ms",
        f"  fused   {b['fused_nograd_seconds'] * 1e3:.2f} ms",
        f"  speedup {b['speedup']:.2f}x",
        "throughput",
        f"  warm  {t['endpoints_per_second_warm']:,.0f} endpoints/s",
        f"  cold  {t['endpoints_per_second_cold']:,.0f} endpoints/s",
    ])
    record(results_dir, "bench_inference", text)
    BENCH_JSON.write_text(json.dumps(measurements, indent=2) + "\n")


def test_warm_cache_beats_cold(measurements):
    if measurements["smoke"]:
        pytest.skip("ratio floors are asserted on full runs only")
    assert measurements["single_design"]["speedup"] >= 3.0


def test_fused_nograd_beats_looped_autograd(measurements):
    if measurements["smoke"]:
        pytest.skip("ratio floors are asserted on full runs only")
    assert measurements["batched"]["speedup"] >= 1.5


def test_nograd_forward_not_slower(measurements):
    if measurements["smoke"]:
        pytest.skip("ratio floors are asserted on full runs only")
    # Same compute minus graph bookkeeping: must not regress.
    assert measurements["forward"]["speedup"] >= 1.0
