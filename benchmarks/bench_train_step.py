"""Training-step and dataset-pipeline micro-benchmarks.

Measures the headline optimisations of the performance architecture
(DESIGN.md):

- fused cross-design step (one union-graph GNN sweep + one stacked CNN
  forward) vs. the legacy per-design loop, at the default dataset scale;
- the graph-compiled step (trace once, replay a flat preallocated numpy
  schedule — DESIGN.md §11) vs. the eager fused step, in float64
  (bit-exact) and float32;
- warm (cache-hit) vs. cold dataset construction.

Besides the usual rendered table under ``results/``, the measured
numbers are written to ``benchmarks/BENCH_train.json`` (override the
path with ``REPRO_BENCH_TRAIN_JSON``) — the committed copy is the
recorded baseline that the CI regression gate
(``benchmarks/regression_gate.py``) compares fresh runs against.

``REPRO_BENCH_SMOKE=1`` shrinks the timed-step count and relaxes the
speedup assertions to smoke thresholds (CI runs in this mode; the
recorded baselines come from full runs).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import build_dataset
from repro.model import TimingPredictor
from repro.train import OursTrainer, ParallelTrainer, TrainConfig

from .conftest import bench_seed, record

BENCH_JSON = Path(
    os.environ.get("REPRO_BENCH_TRAIN_JSON")
    or Path(__file__).resolve().parent / "BENCH_train.json"
)


def smoke_mode() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def timed_steps() -> int:
    """Steps timed per variant (after untimed warm-up steps).

    The warm-up steps pay the one-off costs: union-graph construction,
    level-plan memoisation, and — for the compiled variants — the
    trace+compile of the warmup and main step programs.

    Two statistics are recorded per variant because they answer
    different questions.  The per-step MINIMUM is the pure-compute
    floor — robust against neighbour noise on shared runners, and the
    machine-stable quantity the regression gate compares.  The MEAN is
    what time-to-train actually scales with: the eager step's cost is
    bimodal (a ~0.13 s compute floor plus frequent multi-second
    allocator/GC storms from building and tearing down the ~60k-node
    autograd graph every step, CPU-time-visible and present at the
    seed revision too), so a min-of-N would silently discard exactly
    the cost the compile layer removes.

    Smoke mode still times 8 steps: the regression gate compares the
    eager variants' min against the committed floor, and with fewer
    windows a run can miss a storm-free step entirely.
    """
    return 8 if smoke_mode() else 10


def compile_speedup_floor() -> float:
    """Required compiled-f64 mean-step speedup over the eager fused step.

    Smoke mode only sanity-checks the ordering: tight ratios are flaky
    when CI neighbours steal the CPU mid-window.
    """
    return 1.3 if smoke_mode() else 2.0


#: (variant key, TrainConfig overrides) — timed interleaved, one step
#: of each per round, so every variant sees the same noise windows and
#: the ratios stay meaningful when a neighbour steals the CPU.
VARIANTS = (
    ("looped", {"fused": False, "compile": False}),
    ("fused", {"fused": True, "compile": False}),
    ("compiled", {"fused": True, "compile": True, "dtype": "float64"}),
    ("compiled_f32", {"fused": True, "compile": True, "dtype": "float32"}),
)


def _blas_vendor() -> str:
    """Name of the BLAS numpy was built against (from build metadata)."""
    try:
        config = np.show_config(mode="dicts")
        return str(config["Build Dependencies"]["blas"]["name"])
    except Exception:
        return "unknown"


def _step_measurements(dataset):
    """Per-variant step-time stats + compiled-vs-eager loss deviation."""
    trainers = {}
    for key, overrides in VARIANTS:
        model = TimingPredictor(dataset.in_features, seed=bench_seed())
        cfg = TrainConfig(seed=bench_seed(), holdout_fraction=0.0,
                          **overrides)
        trainers[key] = OursTrainer(model, dataset.train, cfg)
        trainers[key].step(warmup=True)
        trainers[key].step()
    times = {key: [] for key, _ in VARIANTS}
    losses = {key: [] for key, _ in VARIANTS}
    for _ in range(timed_steps()):
        for key, _ in VARIANTS:
            rec = trainers[key].step()
            times[key].append(rec["step_seconds"])
            losses[key].append(rec["total"])

    stats = {}
    for key, _ in VARIANTS:
        stats[f"{key}_seconds"] = min(times[key])
        stats[f"{key}_mean"] = float(np.mean(times[key]))
        stats[f"{key}_std"] = float(np.std(times[key]))
    stats["speedup"] = stats["looped_seconds"] / stats["fused_seconds"]
    # Mean-based: the eager graph's per-step allocation cost (the thing
    # the compiled schedule removes) lands on typical steps, not the
    # luckiest one — see timed_steps().  The min-based ratio is kept
    # alongside for the compute-floor comparison.
    stats["compile_speedup"] = (stats["fused_mean"]
                                / stats["compiled_mean"])
    stats["compile_speedup_min"] = (stats["fused_seconds"]
                                    / stats["compiled_seconds"])
    stats["compile_f32_speedup"] = (stats["fused_mean"]
                                    / stats["compiled_f32_mean"])
    # All variants share seed and step math, so they walk the same loss
    # trajectory; the compiled float64 one must match the eager fused
    # one bit for bit (the replay contract), and the float32 deviation
    # is recorded as the documented tolerance.
    stats["max_abs_loss_dev_compiled"] = float(max(
        abs(a - b) for a, b in zip(losses["compiled"], losses["fused"])))
    stats["max_rel_loss_dev_f32"] = float(max(
        abs(a - b) / max(abs(b), 1e-12)
        for a, b in zip(losses["compiled_f32"], losses["fused"])))
    stats["timed_steps"] = timed_steps()
    stats["statistic"] = "min"
    return stats


#: Worker counts recorded in the parallel-scaling section.
PARALLEL_WORKERS = (1, 2, 4)


def _parallel_measurements(dataset):
    """Shard-scaling stats for the data-parallel trainer.

    The paper's train split has a single 7nm design, which caps the
    usable shard count at one (every shard needs designs from both
    nodes), so the scaling section runs over the train+test union —
    4 source / 6 target designs — purely as a wall-clock workload.
    ``single`` is the compiled single-process step on the same union;
    the ``workers=1`` fleet must reproduce its loss stream bit for bit
    (the lockstep contract), and the recorded N > 1 deviations document
    the sharded objective's approximation (DESIGN.md §14).
    """
    designs = list(dataset.train) + list(dataset.test)
    n_source = sum(1 for d in designs if d.node == "130nm")
    n_target = len(designs) - n_source

    def make(cls, **kwargs):
        model = TimingPredictor(dataset.in_features, seed=bench_seed())
        cfg = TrainConfig(seed=bench_seed(), holdout_fraction=0.0,
                          fused=True, compile=True, dtype="float64")
        return cls(model, designs, cfg, **kwargs)

    trainers = {"single": make(OursTrainer)}
    for w in PARALLEL_WORKERS:
        trainers[f"w{w}"] = make(ParallelTrainer, workers=w)
    times = {key: [] for key in trainers}
    losses = {key: [] for key in trainers}
    try:
        for trainer in trainers.values():
            trainer.step(warmup=True)
            trainer.step()
        for _ in range(timed_steps()):
            # Interleaved like _step_measurements, so all fleet sizes
            # see the same noise windows.
            for key, trainer in trainers.items():
                rec = trainer.step()
                times[key].append(rec["step_seconds"])
                losses[key].append(rec["total"])
    finally:
        for trainer in trainers.values():
            if isinstance(trainer, ParallelTrainer):
                trainer.shutdown()

    stats = {
        "n_source": n_source,
        "n_target": n_target,
        "timed_steps": timed_steps(),
        "single_seconds": min(times["single"]),
        "single_mean": float(np.mean(times["single"])),
        "single_std": float(np.std(times["single"])),
        "workers": {},
    }
    for w in PARALLEL_WORKERS:
        key = f"w{w}"
        mean = float(np.mean(times[key]))
        best = min(times[key])
        stats["workers"][str(w)] = {
            "requested": w,
            "effective": trainers[key].workers,
            "seconds": best,
            "mean": mean,
            "std": float(np.std(times[key])),
            "speedup_min": stats["single_seconds"] / best,
            "speedup_mean": stats["single_mean"] / mean,
            "max_abs_loss_dev": float(max(
                abs(a - b)
                for a, b in zip(losses[key], losses["single"]))),
        }
    return stats


@pytest.fixture(scope="module")
def measurements(dataset, tmp_path_factory):
    train_step = _step_measurements(dataset)
    parallel_scaling = _parallel_measurements(dataset)

    cache_dir = tmp_path_factory.mktemp("bench-cache")
    start = time.perf_counter()
    build_dataset(use_cache=True, cache_dir=cache_dir)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    build_dataset(use_cache=True, cache_dir=cache_dir)
    warm = time.perf_counter() - start

    return {
        "train_step": train_step,
        "parallel_scaling": parallel_scaling,
        "dataset_build": {
            "cold_seconds": cold,
            "warm_seconds": warm,
            "speedup": cold / warm,
        },
        "machine": {
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "blas": _blas_vendor(),
        },
    }


def _render(measurements) -> str:
    m = measurements["train_step"]
    d = measurements["dataset_build"]
    mach = measurements["machine"]
    lines = [
        "train step (default scale, min over "
        f"{m['timed_steps']} interleaved steps)",
    ]
    for key, _ in VARIANTS:
        lines.append(
            f"  {key:13s} {m[key + '_seconds']:.3f} s/step "
            f"(mean {m[key + '_mean']:.3f} +- {m[key + '_std']:.3f})")
    lines += [
        f"  fused vs looped        {m['speedup']:.2f}x (min)",
        f"  compiled vs fused      {m['compile_speedup']:.2f}x (mean), "
        f"{m['compile_speedup_min']:.2f}x (min)",
        f"  compiled-f32 vs fused  {m['compile_f32_speedup']:.2f}x (mean)",
        "  compiled loss dev      "
        f"{m['max_abs_loss_dev_compiled']:.1e} abs (f64), "
        f"{m['max_rel_loss_dev_f32']:.1e} rel (f32)",
    ]
    p = measurements["parallel_scaling"]
    lines.append(
        f"parallel scaling ({p['n_source']} source + {p['n_target']} "
        f"target designs, vs compiled single-process)")
    lines.append(
        f"  single        {p['single_seconds']:.3f} s/step "
        f"(mean {p['single_mean']:.3f} +- {p['single_std']:.3f})")
    for w, entry in sorted(p["workers"].items(), key=lambda kv: int(kv[0])):
        lines.append(
            f"  workers={w:<4s} {entry['seconds']:.3f} s/step "
            f"(mean {entry['mean']:.3f})  "
            f"{entry['speedup_mean']:.2f}x mean  "
            f"loss dev {entry['max_abs_loss_dev']:.1e}")
    lines += [
        "dataset build",
        f"  cold    {d['cold_seconds']:.2f} s",
        f"  warm    {d['warm_seconds']:.3f} s",
        f"  speedup {d['speedup']:.1f}x",
        "machine",
        f"  cpus {mach['cpu_count']}, numpy {mach['numpy']}, "
        f"blas {mach['blas']}",
    ]
    return "\n".join(lines)


def test_fused_step_beats_looped(measurements, results_dir):
    record(results_dir, "bench_train", _render(measurements))
    BENCH_JSON.write_text(json.dumps(measurements, indent=2) + "\n")
    assert measurements["train_step"]["speedup"] >= 2.0


def test_compiled_step_beats_fused(measurements):
    assert (measurements["train_step"]["compile_speedup"]
            >= compile_speedup_floor())


def test_compiled_step_is_bit_exact(measurements):
    """The compiled float64 loss stream must equal eager's exactly."""
    assert measurements["train_step"]["max_abs_loss_dev_compiled"] <= 1e-12


def test_warm_dataset_build_beats_cold(measurements):
    assert measurements["dataset_build"]["speedup"] >= 5.0


def test_parallel_one_worker_is_bit_exact(measurements):
    """A one-worker fleet must reproduce the single-process loss stream
    exactly — the lockstep contract the parallel trainer is built on."""
    scaling = measurements["parallel_scaling"]
    assert scaling["workers"]["1"]["max_abs_loss_dev"] == 0.0


def test_parallel_deviation_is_bounded(measurements):
    """N > 1 shards approximate the coupled terms; the deviation must
    be finite and stay in the same ballpark as the loss itself."""
    scaling = measurements["parallel_scaling"]
    for entry in scaling["workers"].values():
        assert np.isfinite(entry["max_abs_loss_dev"])


def test_parallel_scaling_on_capable_machines(measurements):
    """Speedup floors apply only where the cores exist to deliver them:
    on a 1-CPU box the shards serialize and the honest numbers show it
    (the regression gate conditions on cpu_count the same way)."""
    cores = os.cpu_count() or 1
    scaling = measurements["parallel_scaling"]["workers"]
    if cores >= 4:
        floor = 1.2 if smoke_mode() else 1.7
        assert scaling["4"]["speedup_mean"] >= floor
    elif cores >= 2:
        floor = 1.05 if smoke_mode() else 1.3
        assert scaling["2"]["speedup_mean"] >= floor
    else:
        pytest.skip("single CPU: shard workers serialize, no speedup "
                    "to assert")


def test_fused_training_preserves_accuracy(dataset):
    """Guard: the fast paths must not change what the model learns.

    A short fused training run reaches a sane positive R^2 on the 7nm
    test designs (the Table-2 shape; full-length runs are the table
    benches' job).
    """
    from repro.train import r2_score

    model = TimingPredictor(dataset.in_features, seed=bench_seed())
    cfg = TrainConfig(steps=60, seed=bench_seed(), fused=True)
    OursTrainer(model, dataset.train, cfg).fit()
    scores = [r2_score(d.labels, model.predict(d)) for d in dataset.test]
    assert np.mean(scores) > 0.0
