"""Training-step and dataset-pipeline micro-benchmarks.

Measures the two headline optimisations of the performance
architecture (DESIGN.md):

- fused cross-design step (one union-graph GNN sweep + one stacked CNN
  forward) vs. the legacy per-design loop, at the default dataset scale;
- warm (cache-hit) vs. cold dataset construction.

Besides the usual rendered table under ``results/``, the measured
numbers are written to ``benchmarks/BENCH_train.json`` — the committed
copy is the recorded baseline for regression comparisons (see
README.md).
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import build_dataset
from repro.model import TimingPredictor
from repro.train import OursTrainer, TrainConfig

from .conftest import bench_seed, record

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_train.json"

#: Steps timed per variant (after one untimed warm-up step that pays
#: one-off costs: union-graph construction, level-plan memoisation).
#: The reported statistic is the per-step MINIMUM — robust against the
#: neighbour noise of shared CI runners, unlike the mean.
TIMED_STEPS = 10


def _paired_step_seconds(dataset):
    """(fused, looped) per-step minima, steps interleaved.

    Alternating the variants step by step exposes both to the same
    noise windows, so the ratio stays meaningful even when a neighbour
    steals the CPU for part of the measurement.
    """
    trainers = {}
    for fused in (True, False):
        model = TimingPredictor(dataset.in_features, seed=bench_seed())
        cfg = TrainConfig(seed=bench_seed(), fused=fused,
                          holdout_fraction=0.0)
        trainers[fused] = OursTrainer(model, dataset.train, cfg)
        trainers[fused].step(warmup=True)
    times = {True: [], False: []}
    for _ in range(TIMED_STEPS):
        for fused in (True, False):
            times[fused].append(trainers[fused].step()["step_seconds"])
    return min(times[True]), min(times[False])


@pytest.fixture(scope="module")
def measurements(dataset, tmp_path_factory):
    fused, looped = _paired_step_seconds(dataset)

    cache_dir = tmp_path_factory.mktemp("bench-cache")
    start = time.perf_counter()
    build_dataset(use_cache=True, cache_dir=cache_dir)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    build_dataset(use_cache=True, cache_dir=cache_dir)
    warm = time.perf_counter() - start

    return {
        "train_step": {
            "fused_seconds": fused,
            "looped_seconds": looped,
            "speedup": looped / fused,
            "timed_steps": TIMED_STEPS,
            "statistic": "min",
        },
        "dataset_build": {
            "cold_seconds": cold,
            "warm_seconds": warm,
            "speedup": cold / warm,
        },
        "machine": {"cpu_count": os.cpu_count()},
    }


def test_fused_step_beats_looped(measurements, results_dir):
    m = measurements["train_step"]
    d = measurements["dataset_build"]
    text = "\n".join([
        "train step (default scale, min over "
        f"{m['timed_steps']} steps)",
        f"  fused   {m['fused_seconds']:.3f} s/step",
        f"  looped  {m['looped_seconds']:.3f} s/step",
        f"  speedup {m['speedup']:.2f}x",
        "dataset build",
        f"  cold    {d['cold_seconds']:.2f} s",
        f"  warm    {d['warm_seconds']:.3f} s",
        f"  speedup {d['speedup']:.1f}x",
    ])
    record(results_dir, "bench_train", text)
    BENCH_JSON.write_text(json.dumps(measurements, indent=2) + "\n")
    assert m["speedup"] >= 2.0


def test_warm_dataset_build_beats_cold(measurements):
    assert measurements["dataset_build"]["speedup"] >= 5.0


def test_fused_training_preserves_accuracy(dataset):
    """Guard: the fast path must not change what the model learns.

    A short fused training run reaches a sane positive R^2 on the 7nm
    test designs (the Table-2 shape; full-length runs are the table
    benches' job).
    """
    from repro.train import r2_score

    model = TimingPredictor(dataset.in_features, seed=bench_seed())
    cfg = TrainConfig(steps=60, seed=bench_seed(), fused=True)
    OursTrainer(model, dataset.train, cfg).fit()
    scores = [r2_score(d.labels, model.predict(d)) for d in dataset.test]
    assert np.mean(scores) > 0.0
