"""Benchmark: regenerate Figure 6 (arrival-time KDEs).

Computes kernel density estimates of the arrival-time populations
(130nm train / 7nm train / 7nm test) and checks the figure's premise:
an order-of-magnitude scale gap between the nodes.
"""

from repro.experiments import format_fig6, run_fig6, scale_gap

from .conftest import record


def test_fig6(benchmark, dataset, results_dir):
    result = benchmark(run_fig6, dataset)
    text = format_fig6(result)
    record(results_dir, "fig6", text)

    assert set(result) == {"130nm train", "7nm train", "7nm test"}
    for data in result.values():
        assert data["density"].min() >= 0.0
        assert data["count"] > 0
    # The headline: 130nm arrival times sit about an order of magnitude
    # above 7nm (the reason SimpleMerge fails).
    assert scale_gap(result) > 5.0
    # Train and test 7nm populations overlap but are not identical
    # (the generalization gap of Figure 6's discussion).
    assert result["7nm test"]["mean"] != result["7nm train"]["mean"]
