"""Serving benchmark: request coalescing vs per-request dispatch.

Starts two in-process :class:`~repro.serve.PredictionServer` instances
over the same trained predictor — one with the coalescing window open,
one at window 0 (every handler thread calls the engine directly) — and
hammers each with the same concurrent client fleet over persistent
HTTP/1.1 connections.  The claim under test (DESIGN.md §13): fusing the
requests that land within a few-millisecond window into one
``predict_many`` union-graph sweep beats dispatching them individually,
because the window's worth of requests pays one weight-digest check and
one fused sweep instead of one each — and duplicate requests for the
same design collapse onto a single slot in the sweep.

The workload models the paper's serving pattern: an optimisation loop
hammering uncertainty-aware timing queries (``mc_samples`` Monte-Carlo
draws) against a small hot set of designs.  Both servers are warmed
first (feature cache primed), so the benchmark measures steady-state
serving, and every served prediction is checked bit-for-bit against
the direct in-process engine answer — a fast wrong answer is not a
speedup.

Measured numbers land in ``benchmarks/BENCH_serving.json`` (schema:
``repro.obs.schema.validate_bench_serving``; the committed copy is the
recorded baseline).  ``REPRO_BENCH_SMOKE=1`` shrinks the request
counts for CI, where only the schema and equivalence — not the >=2x
throughput ratio — are asserted (shared runners make ratio floors
flaky).
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.infer import InferenceEngine
from repro.model import TimingPredictor
from repro.serve import PredictionServer, ServerConfig, ServingClient
from repro.serve.server import warm_up

from .conftest import bench_seed, record

BENCH_JSON = Path(__file__).resolve().parent / "BENCH_serving.json"

ATOL = 1e-10
CLIENTS = 12
WINDOW_MS = 5.0
MC_SAMPLES = 256
HOT_DESIGNS = 2          # requests cycle over the N largest designs


def smoke_mode() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def requests_per_client() -> int:
    return 5 if smoke_mode() else 25


def hammer_repeats() -> int:
    """Hammer rounds per server; the best round is recorded (the
    repo's min-wall-clock robust statistic)."""
    return 1 if smoke_mode() else 3


@pytest.fixture(scope="module")
def model(dataset):
    m = TimingPredictor(dataset.in_features, seed=bench_seed())
    m.finalize_node_priors(dataset.train)
    return m


def _hammer(server, designs, clients, per_client):
    """``clients`` threads, each firing ``per_client`` uncertainty
    requests over one persistent connection, cycling the designs.
    Returns wall-clock seconds, per-request latencies, and the
    collected predictions."""
    barrier = threading.Barrier(clients + 1)
    latencies = [[] for _ in range(clients)]
    answers = [[] for _ in range(clients)]

    def run(i):
        client = ServingClient(server.host, server.port, timeout=60.0)
        try:
            client.healthz()   # open the connection before the clock
            barrier.wait()
            for k in range(per_client):
                design = designs[(i + k) % len(designs)]
                start = time.perf_counter()
                out = client.predict(design.name,
                                     mc_samples=MC_SAMPLES,
                                     uncertainty=True)
                latencies[i].append(time.perf_counter() - start)
                answers[i].append((design.name, out["mean"],
                                   out["std"]))
        finally:
            client.close()

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    flat = [lat for per in latencies for lat in per]
    preds = [entry for per in answers for entry in per]
    return elapsed, flat, preds


@pytest.fixture(scope="module")
def measurements(dataset, model):
    designs = sorted(dataset.test, key=lambda d: -d.num_endpoints)
    hot = designs[:HOT_DESIGNS]
    clients = CLIENTS
    per_client = requests_per_client()
    total = clients * per_client

    reference = InferenceEngine(model)
    ref = {}
    for d in dataset.test:
        reference.predict(d)   # warm every design the server serves
    for d in hot:
        ref[d.name] = reference.predict_with_uncertainty(
            d, mc_samples=MC_SAMPLES, seed=0)

    results = {}
    stats = {}
    for label, window in (("uncoalesced", 0.0), ("coalesced", WINDOW_MS)):
        config = ServerConfig(port=0, batch_window_ms=window,
                              max_batch=clients)
        with PredictionServer(dataset.test, model,
                              config=config) as server:
            warm_up(server.service)
            best = None
            for _ in range(hammer_repeats()):
                run = _hammer(server, hot, clients, per_client)
                if best is None or run[0] < best[0]:
                    best = run
            results[label] = best
            stats[label] = server.service.coalescer.stats() \
                if server.service.coalescer is not None else {}

    diffs = []
    for label in results:
        for name, mean, std in results[label][2]:
            ref_mean, ref_std = ref[name]
            diffs.append(np.max(np.abs(np.asarray(mean) - ref_mean)))
            diffs.append(np.max(np.abs(np.asarray(std) - ref_std)))

    def block(label):
        elapsed, latencies, _ = results[label]
        lat = np.asarray(latencies)
        return {
            "requests_per_second": total / elapsed,
            "p50_ms": float(np.percentile(lat, 50)) * 1e3,
            "p99_ms": float(np.percentile(lat, 99)) * 1e3,
            "clients": clients,
            "requests": total,
        }

    coalesced = block("coalesced")
    coalesced["batch_window_ms"] = WINDOW_MS
    coalesced["max_batch"] = clients
    coalesced["mean_batch_size"] = stats["coalesced"]["mean_batch_size"]
    uncoalesced = block("uncoalesced")
    return {
        "coalesced": coalesced,
        "uncoalesced": uncoalesced,
        "speedup": {
            "throughput_ratio": coalesced["requests_per_second"]
            / uncoalesced["requests_per_second"],
        },
        "equivalence": {
            "max_abs_diff": float(max(diffs)),
            "atol": ATOL,
        },
        "workload": {
            "mc_samples": MC_SAMPLES,
            "uncertainty": True,
            "hot_designs": [d.name for d in hot],
            "hammer_repeats": hammer_repeats(),
            "statistic": "min wall-clock",
        },
        "machine": {"cpu_count": os.cpu_count()},
        "smoke": smoke_mode(),
    }


def test_served_predictions_match_engine(measurements):
    assert measurements["equivalence"]["max_abs_diff"] <= ATOL


def test_payload_matches_schema_and_is_recorded(measurements,
                                                results_dir):
    from repro.obs import validate_bench_serving

    assert validate_bench_serving(measurements) == []
    c = measurements["coalesced"]
    u = measurements["uncoalesced"]
    s = measurements["speedup"]
    w = measurements["workload"]
    text = "\n".join([
        f"serving ({c['clients']} concurrent clients, "
        f"{c['requests']} requests, mc={w['mc_samples']} uncertainty "
        f"over {'/'.join(w['hot_designs'])})",
        f"  uncoalesced  {u['requests_per_second']:,.0f} req/s   "
        f"p50 {u['p50_ms']:.2f} ms   p99 {u['p99_ms']:.2f} ms",
        f"  coalesced    {c['requests_per_second']:,.0f} req/s   "
        f"p50 {c['p50_ms']:.2f} ms   p99 {c['p99_ms']:.2f} ms   "
        f"(window {c['batch_window_ms']} ms, "
        f"mean batch {c['mean_batch_size']:.1f})",
        f"  throughput ratio {s['throughput_ratio']:.2f}x",
    ])
    record(results_dir, "bench_serving", text)
    BENCH_JSON.write_text(json.dumps(measurements, indent=2) + "\n")


def test_coalescing_beats_per_request_dispatch(measurements):
    if measurements["smoke"]:
        pytest.skip("ratio floors are asserted on full runs only")
    assert measurements["speedup"]["throughput_ratio"] >= 2.0
