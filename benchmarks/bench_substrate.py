"""Micro-benchmarks for the EDA substrate and model forward passes.

These are classic pytest-benchmark timing benches (auto-calibrated
rounds): STA throughput, placement, routing, GNN/CNN forwards.  They
back the runtime column of Table 2 and document where the flow spends
its time.
"""

import numpy as np
import pytest

from repro.features import GateVocabulary, encode_netlist
from repro.model import TimingPredictor
from repro.netlist import make_design, map_design
from repro.place import QuadraticPlacer, make_floorplan, place_design
from repro.route import GlobalRouter, PreRouteEstimator, route_design
from repro.sta import run_sta
from repro.techlib import make_asap7_library, make_sky130_library


@pytest.fixture(scope="module")
def placed_arm9():
    lib = make_asap7_library()
    nl = map_design(make_design("arm9"), lib)
    fp = place_design(nl, seed=0)
    return nl, fp


def test_sta_preroute_throughput(benchmark, placed_arm9):
    nl, _ = placed_arm9
    report = benchmark(lambda: run_sta(nl, PreRouteEstimator(nl)))
    assert report.endpoint_arrivals


def test_sta_signoff_throughput(benchmark, placed_arm9):
    nl, fp = placed_arm9
    parasitics = route_design(nl, fp, seed=0)
    report = benchmark(lambda: run_sta(nl, parasitics))
    assert report.endpoint_arrivals


def test_placement_runtime(benchmark):
    lib = make_asap7_library()
    nl = map_design(make_design("arm9"), lib)
    fp = make_floorplan(nl)

    def place():
        QuadraticPlacer(nl, fp, seed=0).run()

    benchmark(place)


def test_routing_runtime(benchmark, placed_arm9):
    nl, fp = placed_arm9

    def route():
        router = GlobalRouter(nl, fp, seed=0)
        router.run()
        return router

    router = benchmark(route)
    assert router.trees


def test_mapping_runtime(benchmark):
    lib = make_sky130_library()
    graph = make_design("arm9")
    nl = benchmark(lambda: map_design(graph, lib))
    assert len(nl.cells) > 0


def test_model_inference_runtime(benchmark, placed_arm9):
    """The Table-2 runtime column: full model forward on one design."""
    from repro.experiments import build_dataset

    dataset = build_dataset()
    model = TimingPredictor(dataset.in_features, seed=0)
    model.finalize_node_priors(dataset.train)
    design = dataset.test[0]
    pred = benchmark(lambda: model.predict(design))
    assert pred.shape == (design.num_endpoints,)


def test_gnn_forward_runtime(benchmark, placed_arm9):
    nl, _ = placed_arm9
    vocab = GateVocabulary([make_sky130_library(), make_asap7_library()])
    graph = encode_netlist(nl, vocab)
    from repro.model import TimingGNN

    gnn = TimingGNN(graph.features.shape[1], 32, 24,
                    np.random.default_rng(0))
    out = benchmark(lambda: gnn(graph))
    assert out.shape[0] == len(graph.endpoint_rows)
