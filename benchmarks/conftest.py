"""Shared fixtures for the benchmark suite.

The experiment dataset is built once per session (and cached on disk by
``repro.experiments.datasets``), so individual benches measure their own
work, not dataset construction.

Environment knobs:

- ``REPRO_BENCH_STEPS`` — training steps for the learning benches
  (default 150, matching the headline configuration).
- ``REPRO_BENCH_SEED`` — seed for every learning bench (default 0).
- ``REPRO_BENCH_WORKERS`` — processes for cold dataset builds
  (default 1; cache hits make this moot on warm runs).
- ``REPRO_BENCH_NO_CACHE`` — set to 1 to bypass the design cache.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import build_dataset

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_steps() -> int:
    return int(os.environ.get("REPRO_BENCH_STEPS", "150"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def bench_workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def bench_use_cache() -> bool:
    return os.environ.get("REPRO_BENCH_NO_CACHE", "0") != "1"


@pytest.fixture(scope="session")
def dataset():
    return build_dataset(workers=bench_workers(),
                         use_cache=bench_use_cache())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    print(f"\n{text}")
    (results_dir / f"{name}.txt").write_text(text + "\n")
