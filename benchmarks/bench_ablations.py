"""Design-choice ablations beyond the paper's own (DESIGN.md section 6).

Sweeps the CMD moment order, the contrastive temperature, and the number
of Monte-Carlo samples, recording average test R^2 for each setting.
These are accuracy studies wrapped as one-shot benches; rendered tables
land in ``benchmarks/results/``.
"""

import numpy as np

from repro.model import TimingPredictor
from repro.train import OursTrainer, TrainConfig, r2_score

from .conftest import bench_seed, record

#: Shorter than the headline config: sweeps multiply training runs.
SWEEP_STEPS = 60


def _train_and_score(dataset, config_kwargs, model_kwargs=None):
    model_kwargs = model_kwargs or {}
    model = TimingPredictor(dataset.in_features, seed=bench_seed(),
                            **model_kwargs)
    cfg = TrainConfig(steps=SWEEP_STEPS, lr=2e-3, seed=bench_seed(),
                      gamma1=1.0, gamma2=30.0, **config_kwargs)
    OursTrainer(model, dataset.train, cfg).fit()
    scores = [r2_score(d.labels, model.predict(d)) for d in dataset.test]
    return float(np.mean(scores))


def test_cmd_order_sweep(benchmark, dataset, results_dir):
    """Effect of the CMD maximum moment order (paper uses 5)."""

    def sweep():
        return {order: _train_and_score(dataset, {"cmd_order": order})
                for order in (1, 3, 5)}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "CMD order sweep (avg test R^2):\n" + "\n".join(
        f"  order {k}: {v:.3f}" for k, v in result.items()
    )
    record(results_dir, "ablation_cmd_order", text)
    assert set(result) == {1, 3, 5}


def test_contrastive_temperature_sweep(benchmark, dataset, results_dir):
    """Effect of the contrastive temperature tau."""

    def sweep():
        return {tau: _train_and_score(dataset, {"temperature": tau})
                for tau in (0.1, 0.5, 2.0)}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "Contrastive temperature sweep (avg test R^2):\n" + "\n".join(
        f"  tau {k}: {v:.3f}" for k, v in result.items()
    )
    record(results_dir, "ablation_temperature", text)
    assert len(result) == 3


def test_mc_samples_sweep(benchmark, dataset, results_dir):
    """Effect of the number of Monte-Carlo samples K in the ELBO."""

    def sweep():
        return {k: _train_and_score(dataset, {},
                                    model_kwargs={"mc_samples": k})
                for k in (1, 4, 8)}

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "MC samples sweep (avg test R^2):\n" + "\n".join(
        f"  K={k}: {v:.3f}" for k, v in result.items()
    )
    record(results_dir, "ablation_mc_samples", text)
    assert len(result) == 3
