"""Benchmark: regenerate Figure 8 (module ablation).

Shape target: the full model beats both single-module variants on
average (each module contributes), as in the paper's ablation.
"""

from repro.experiments import format_fig8, run_fig8

from .conftest import bench_seed, bench_steps, record


def test_fig8(benchmark, dataset, results_dir):
    rows = benchmark.pedantic(
        run_fig8,
        kwargs={"dataset": dataset, "seed": bench_seed(),
                "steps": bench_steps()},
        rounds=1, iterations=1,
    )
    text = format_fig8(rows)
    record(results_dir, "fig8", text)

    by_variant = {row["variant"]: row["average"] for row in rows}
    assert set(by_variant) == {"DA only", "Bayesian only", "Full"}
    # The full model is the best variant on average.
    assert by_variant["Full"] >= max(by_variant["DA only"],
                                     by_variant["Bayesian only"]) - 0.05
