"""Benchmark: regenerate Table 3 (number of 130nm designs ablation).

Trains the paper's model with the four nested 130nm subsets (J, JL,
JLS, JLSU) and records per-design R^2 on the 7nm test set.  Shape
target: more 130nm data helps — the full set beats the jpeg-only row.
"""

from repro.experiments import format_table3, run_table3

from .conftest import bench_seed, bench_steps, record


def test_table3(benchmark, dataset, results_dir):
    rows = benchmark.pedantic(
        run_table3,
        kwargs={"dataset": dataset, "seed": bench_seed(),
                "steps": bench_steps()},
        rounds=1, iterations=1,
    )
    text = format_table3(rows)
    record(results_dir, "table3", text)

    assert len(rows) == 4
    averages = [row["average"] for row in rows]
    # Paper shape: the full 130nm set is the best of the four rows, and
    # clearly better than the single-design row.
    assert averages[-1] == max(averages)
    assert averages[-1] > averages[0]
