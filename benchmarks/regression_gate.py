"""Benchmark regression gate: compare a fresh bench run to the baseline.

Usage::

    python benchmarks/regression_gate.py BASELINE.json CANDIDATE.json \\
        [--tolerance 0.25]

Both files follow the ``BENCH_train.json`` schema written by
``benchmarks/bench_train_step.py``.  Absolute seconds are not
comparable across machines or load conditions (the committed baseline
comes from a different box/moment than the CI runner), so the gate
compares *within-run interleaved ratios*: the bench steps all variants
through the same noise windows, so each run's ratios isolate the code
from the machine.

Checks, each printed with a PASS/FAIL verdict:

- ``train_step.speedup`` (fused vs looped, per-step minima) must stay
  above ``baseline * (1 - tolerance)`` — a breach means the fused
  step regressed relative to the per-design loop;
- ``train_step.compile_speedup_min`` (compiled vs fused pure-compute
  floors; ~1.0 by construction, since the compiled step runs the same
  numpy math minus the graph bookkeeping) must stay above
  ``baseline * (1 - tolerance)`` — a breach means the compiled
  kernels themselves got slower than the eager math they replace;
- ``train_step.max_abs_loss_dev_compiled`` must stay <= 1e-12: the
  compiled step's bit-for-bit contract is enforced here too, so the
  gate catches equivalence breakage even if the bench's own assert is
  ever relaxed;
- ``parallel_scaling.workers.1.max_abs_loss_dev`` must stay <= 1e-12
  unconditionally — a one-worker fleet that drifts from the
  single-process step broke the data-parallel lockstep contract;
- ``parallel_scaling.workers.N.speedup_mean`` is compared against the
  baseline only when both machines report at least N CPUs (a 1-CPU
  box serializes the shards, so its "speedup" measures nothing).

The mean-based ``compile_speedup`` headline (which includes the eager
allocator/GC storms the compile layer removes) is deliberately *not*
gated: storm intensity varies with machine/load, so it only flags how
big the win was, not whether the code regressed.  Absolute seconds of
both runs are printed as context.

Exit status 0 when every check passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Within-run ratio fields gated against the baseline (higher = better).
GATED_RATIOS = ("speedup", "compile_speedup_min")

#: Hard ceiling on the compiled-vs-eager float64 loss deviation.
MAX_LOSS_DEV = 1e-12

#: Printed for context (never gated — machine/load dependent).
CONTEXT_FIELDS = ("fused_seconds", "compiled_seconds",
                  "compile_speedup")


def load_payload(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "train_step" not in payload:
        raise SystemExit(f"{path}: not a BENCH_train payload "
                         "(missing 'train_step')")
    return payload


def load_train_step(path: str) -> dict:
    return load_payload(path)["train_step"]


def _cpu_count(payload: dict) -> int:
    machine = payload.get("machine") or {}
    count = machine.get("cpu_count")
    return int(count) if isinstance(count, (int, float)) and count else 1


def check_parallel(baseline: dict, candidate: dict,
                   tolerance: float) -> list:
    """Verdicts for the ``parallel_scaling`` section.

    The ``workers=1`` bit-exactness contract is machine-independent and
    gated unconditionally.  Scaling ratios are only meaningful where
    the cores exist to deliver them, so a worker count's speedup is
    compared against the baseline only when *both* machines have at
    least that many CPUs; otherwise the entry is reported as
    informational.  A candidate without the section fails outright —
    that's the regression the gate exists to catch.
    """
    verdicts = []
    cand_section = candidate.get("parallel_scaling")
    if not isinstance(cand_section, dict):
        return [(False, "parallel_scaling: missing from candidate")]
    base_section = baseline.get("parallel_scaling")
    if not isinstance(base_section, dict):
        # Baseline predates the section: enforce the exactness contract
        # on the candidate alone.
        base_section = {}

    dev = (cand_section.get("workers", {}).get("1", {})
           .get("max_abs_loss_dev"))
    if not isinstance(dev, (int, float)):
        verdicts.append((False, "parallel_scaling workers=1 "
                                "max_abs_loss_dev: missing from "
                                "candidate"))
    else:
        verdicts.append((dev <= MAX_LOSS_DEV,
                         f"parallel_scaling workers=1 loss dev: "
                         f"{dev:.1e} (ceiling {MAX_LOSS_DEV:.0e})"))

    base_cpus = _cpu_count(baseline)
    cand_cpus = _cpu_count(candidate)
    base_workers = base_section.get("workers", {})
    for count, cand_entry in sorted(cand_section.get("workers", {})
                                    .items(), key=lambda kv: int(kv[0])):
        if int(count) < 2:
            # workers=1 exists for the exactness contract above; its
            # mean-based "speedup" only measures how many allocator
            # storms the single-process reference happened to absorb,
            # so it is as ungated as compile_speedup.
            continue
        base_entry = base_workers.get(count)
        cand_speedup = cand_entry.get("speedup_mean")
        if base_entry is None \
                or not isinstance(base_entry.get("speedup_mean"),
                                  (int, float)):
            continue
        if min(base_cpus, cand_cpus) < int(count):
            print(f"[info] parallel_scaling workers={count}: not gated "
                  f"(needs {count} CPUs; baseline has {base_cpus}, "
                  f"candidate {cand_cpus}); candidate "
                  f"{cand_speedup if isinstance(cand_speedup, (int, float)) else float('nan'):.2f}x")
            continue
        base_speedup = base_entry["speedup_mean"]
        if not isinstance(cand_speedup, (int, float)):
            verdicts.append((False, f"parallel_scaling workers={count} "
                                    "speedup_mean: missing from "
                                    "candidate"))
            continue
        floor = base_speedup * (1.0 - tolerance)
        verdicts.append(
            (cand_speedup >= floor,
             f"parallel_scaling workers={count} speedup: "
             f"{cand_speedup:.2f}x vs baseline {base_speedup:.2f}x "
             f"(floor {floor:.2f}x)"))
    return verdicts


def check(baseline: dict, candidate: dict, tolerance: float) -> list:
    """List of ``(ok, message)`` verdicts for every gated field."""
    verdicts = []
    for field in GATED_RATIOS:
        base = baseline.get(field)
        cand = candidate.get(field)
        if not isinstance(base, (int, float)):
            verdicts.append((False, f"{field}: missing from baseline"))
            continue
        if not isinstance(cand, (int, float)):
            verdicts.append((False, f"{field}: missing from candidate"))
            continue
        floor = base * (1.0 - tolerance)
        ok = cand >= floor
        verdicts.append((ok, f"{field}: {cand:.2f}x vs baseline "
                             f"{base:.2f}x (floor {floor:.2f}x)"))
    dev = candidate.get("max_abs_loss_dev_compiled")
    if not isinstance(dev, (int, float)):
        verdicts.append((False, "max_abs_loss_dev_compiled: missing "
                                "from candidate"))
    else:
        verdicts.append((dev <= MAX_LOSS_DEV,
                         f"max_abs_loss_dev_compiled: {dev:.1e} "
                         f"(ceiling {MAX_LOSS_DEV:.0e})"))
    return verdicts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a bench run regresses past the "
                    "tolerance band vs the committed baseline")
    parser.add_argument("baseline", help="committed BENCH_train.json")
    parser.add_argument("candidate", help="freshly measured bench JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional ratio drop "
                             "(default 0.25 = 25%%)")
    args = parser.parse_args(argv)

    baseline_payload = load_payload(args.baseline)
    candidate_payload = load_payload(args.candidate)
    baseline = baseline_payload["train_step"]
    candidate = candidate_payload["train_step"]
    for field in CONTEXT_FIELDS:
        print(f"[info] {field}: candidate "
              f"{candidate.get(field, float('nan')):.4f}, baseline "
              f"{baseline.get(field, float('nan')):.4f}")
    verdicts = check(baseline, candidate, args.tolerance)
    verdicts += check_parallel(baseline_payload, candidate_payload,
                               args.tolerance)
    failed = False
    for ok, message in verdicts:
        print(f"[{'PASS' if ok else 'FAIL'}] {message}")
        failed = failed or not ok
    print("regression gate:", "FAILED" if failed else "passed",
          f"(tolerance {args.tolerance:.0%})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
