"""Benchmark: regenerate Figure 1 (scatter, AdvOnly vs transfer).

Shape target: the transfer panel's pooled R^2 beats the AdvOnly panel's
(the paper's motivating figure).
"""

from repro.experiments import format_fig1, run_fig1

from .conftest import bench_seed, bench_steps, record


def test_fig1(benchmark, dataset, results_dir):
    panels = benchmark.pedantic(
        run_fig1,
        kwargs={"dataset": dataset, "seed": bench_seed(),
                "steps": bench_steps()},
        rounds=1, iterations=1,
    )
    text = format_fig1(panels)
    record(results_dir, "fig1", text)

    adv = panels["(a) 7nm only"]
    ours = panels["(b) 7nm + 130nm transfer"]
    assert len(adv["truth"]) == len(adv["pred"])
    assert ours["r2"] > adv["r2"]
