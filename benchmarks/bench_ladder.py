"""Benchmark for the K-node ladder transfer study.

Trains the K-source -> 1-target model on a 3-node ladder
(130 -> 45 -> 7 nm) with leave-one-node-out retrains, and records the
rendered study table.  ``REPRO_BENCH_SMOKE=1`` shrinks the dataset
resolution and skips leave-one-out so the bench finishes in seconds.

Not part of the regression gate: ladder scores have no recorded
baseline yet — the assertions only pin sanity (finite, and the joint
K-source model beats a constant predictor on average).
"""

import os

import numpy as np

from repro.experiments import format_ladder_study, run_ladder_study
from repro.techlib import NodeLadder

from .conftest import (
    bench_seed,
    bench_steps,
    bench_use_cache,
    bench_workers,
    record,
)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def test_ladder_study(benchmark, results_dir):
    smoke = _smoke()
    ladder = NodeLadder(node_nms=(130.0, 45.0, 7.0))
    results = benchmark.pedantic(
        run_ladder_study,
        kwargs={
            "ladder": ladder,
            "steps": 8 if smoke else bench_steps(),
            "seed": bench_seed(),
            "resolution": 16 if smoke else None,
            "workers": bench_workers(),
            "use_cache": bench_use_cache(),
            "include_loo": not smoke,
        },
        rounds=1, iterations=1,
    )
    record(results_dir, "ladder_study", format_ladder_study(results))
    assert results["nodes"] == ["130nm", "45nm", "7nm"]
    scores = [v for k, v in results["main"].items() if k != "average"]
    assert all(np.isfinite(v) for v in scores)
    if not smoke:
        assert results["main"]["average"] > 0.0
        for loo in results["leave_one_out"].values():
            assert np.isfinite(loo["average"])
