"""Benchmark: regenerate Table 2 (main results).

Trains all five strategies (four DAC23 baselines + ours) and evaluates
R^2 / inference runtime on the five 7nm test designs.  Rendered table
goes to ``benchmarks/results/table2.txt``.

The assertions check the *shape* of the paper's Table 2 rather than its
absolute values: SimpleMerge collapses below zero, every transfer
strategy beats AdvOnly-or-SimpleMerge, and ours is the best overall.
"""

import numpy as np

from repro.experiments import format_table2, run_table2, summarize

from .conftest import bench_seed, bench_steps, record


def test_table2(benchmark, dataset, results_dir):
    rows = benchmark.pedantic(
        run_table2,
        kwargs={"dataset": dataset, "seed": bench_seed(),
                "steps": bench_steps()},
        rounds=1, iterations=1,
    )
    text = format_table2(rows)
    record(results_dir, "table2", text)

    summary = summarize(rows)
    r2 = {k: v["r2"] for k, v in summary.items()}

    # Paper shape: naive merging is catastrophic (negative R^2) ...
    assert r2["DAC23-SimpleMerge"] < 0.0
    # ... genuine transfer strategies beat it decisively ...
    for strategy in ("DAC23-ParamShare", "DAC23-PT-FT", "Ours"):
        assert r2[strategy] > r2["DAC23-SimpleMerge"] + 0.5
    # ... and ours is the best strategy overall.
    best_baseline = max(v for k, v in r2.items() if k != "Ours")
    assert r2["Ours"] >= best_baseline - 0.05, r2

    # Runtime: ours pays only a small inference overhead (paper: ~4%).
    rt = {k: v["runtime"] for k, v in summarize(rows).items()}
    assert rt["Ours"] < 2.0 * rt["DAC23-PT-FT"]
