"""Benchmark: regenerate Table 1 (dataset statistics).

Measures the statistics pass itself; the rendered table is written to
``benchmarks/results/table1.txt``.
"""

from repro.experiments import format_table1, run_table1

from .conftest import record


def test_table1(benchmark, dataset, results_dir):
    rows = benchmark(run_table1, dataset)
    text = format_table1(rows)
    record(results_dir, "table1", text)

    # Shape assertions mirroring the paper's Table 1.
    by_name = {r["benchmark"]: r for r in rows}
    assert by_name["smallboom"]["tech node"] == "7nm"
    assert by_name["jpeg"]["tech node"] == "130nm"
    train_130 = [r for r in rows if r["split"] == "train"
                 and r["tech node"] == "130nm"]
    assert len(train_130) == 4
    # jpeg is the largest training design; or1200 is endpoint-heaviest.
    assert by_name["jpeg"]["#pin"] == max(r["#pin"] for r in train_130)
    test_rows = [r for r in rows if r["split"] == "test"
                 and not str(r["benchmark"]).startswith("Avg")]
    assert by_name["or1200"]["#edp"] == max(r["#edp"] for r in test_rows)
