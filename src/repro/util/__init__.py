"""Small cross-cutting utilities (timing, legacy-kernel switch)."""

from .legacy import is_legacy, legacy_mode
from .timing import (
    get_timings,
    reset_timings,
    timed,
    timing_report,
)

__all__ = [
    "get_timings",
    "is_legacy",
    "legacy_mode",
    "reset_timings",
    "timed",
    "timing_report",
]
