"""Small cross-cutting utilities (timing, concurrency, legacy switch)."""

from .concurrency import RWLock
from .legacy import is_legacy, legacy_mode
from .timing import (
    format_timing_table,
    get_timings,
    merge_timings,
    reset_timings,
    timed,
    timing_report,
)

__all__ = [
    "RWLock",
    "format_timing_table",
    "get_timings",
    "is_legacy",
    "legacy_mode",
    "merge_timings",
    "reset_timings",
    "timed",
    "timing_report",
]
