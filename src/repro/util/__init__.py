"""Small cross-cutting utilities (timing, legacy-kernel switch)."""

from .legacy import is_legacy, legacy_mode
from .timing import (
    format_timing_table,
    get_timings,
    merge_timings,
    reset_timings,
    timed,
    timing_report,
)

__all__ = [
    "format_timing_table",
    "get_timings",
    "is_legacy",
    "legacy_mode",
    "merge_timings",
    "reset_timings",
    "timed",
    "timing_report",
]
