"""Process-global switch selecting the pre-fusion reference kernels.

The performance work (DESIGN.md, "Performance architecture") replaced
several inner kernels — the per-level autograd GNN sweep, the einsum
convolution, per-step cone masking — with fused/BLAS equivalents.  The
originals are kept behind this flag as a numerics oracle and as the
benchmark baseline: ``legacy_mode()`` makes every dual-implementation
kernel run its original form, so equivalence tests and the
fused-vs-looped benchmark compare against the seed implementation
rather than against already-optimised pieces.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["is_legacy", "legacy_mode"]

_LEGACY = False


def is_legacy() -> bool:
    """True while inside a :func:`legacy_mode` block."""
    return _LEGACY


@contextmanager
def legacy_mode():
    """Run dual-implementation kernels in their original (seed) form."""
    global _LEGACY
    previous = _LEGACY
    _LEGACY = True
    try:
        yield
    finally:
        _LEGACY = previous
