"""Reader/writer lock for resident serving (`repro.serve`).

The serving engine has one writer — a model hot-reload swapping the
predictor — and many readers: handler threads running predictions.
A plain mutex would serialize every prediction to protect against an
event that happens once per deploy; :class:`RWLock` lets readers
overlap (numpy releases the GIL inside the BLAS calls that dominate a
prediction) while a swap gets true exclusivity, so no request can ever
observe a half-swapped model.

Writer preference: once a writer is waiting, new read acquisitions
block, so a reload cannot be starved by a steady stream of requests.
Read acquisition is *reentrant per thread* (the engine's public entry
points call each other); write acquisition is not, and acquiring write
while holding read on the same thread deadlocks by design — the engine
never does that, and a lock sophisticated enough to upgrade would cost
more than the event it guards.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["RWLock"]


class RWLock:
    """Many concurrent readers, one exclusive writer, writer-preferring."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        # Per-thread read-hold depth, for reentrant read acquisition.
        self._local = threading.local()

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @contextmanager
    def read(self) -> Iterator[None]:
        """Shared acquisition; reentrant on the same thread."""
        if self._depth() > 0:
            # Already holding read on this thread: don't wait on a
            # pending writer, or the outer hold would deadlock it.
            self._local.depth += 1
            try:
                yield
            finally:
                self._local.depth -= 1
            return
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        self._local.depth = 1
        try:
            yield
        finally:
            self._local.depth = 0
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Exclusive acquisition (not reentrant)."""
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()
