"""Lightweight wall-clock instrumentation with a process-global registry.

``timed`` is both a context manager and a decorator::

    with timed("gnn.sweep"):
        ...

    @timed("flow.run")
    def run(...):
        ...

Every enter/exit pair adds one call and its elapsed seconds to the named
accumulator.  The registry is a plain module-level dict (the repro stack
is single-threaded); ``timing_report()`` renders it as a table sorted by
total time so perf work can see where steps spend their time, and
``reset_timings()`` clears it between measurements.

A single ``timed`` instance keeps its start times on a stack, so one
shared instance (e.g. a module-level decorator applied to a recursive
function, or a context manager re-entered from within itself) measures
every nesting level correctly instead of overwriting the outer start.

Worker processes have their own registry; they snapshot it with
:func:`get_timings` and ship it back to the parent, which folds it in
with :func:`merge_timings` (see ``repro.flow.cache.build_designs``).

The overhead per timed block is two ``perf_counter`` calls and a dict
update (~1 microsecond), so instrumenting once-per-step phases is free;
avoid wrapping per-element inner loops.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, List, Mapping

#: name -> {"calls": int, "seconds": float}
_REGISTRY: Dict[str, Dict[str, float]] = {}


class timed:
    """Accumulate wall-clock time under ``name`` (context manager/decorator)."""

    __slots__ = ("name", "_starts")

    def __init__(self, name: str) -> None:
        self.name = name
        # Stack, not a scalar: the same instance may be entered again
        # before it exits (recursion through a decorated function,
        # nested ``with`` on a shared instance).
        self._starts: List[float] = []

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "timed":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        record(self.name, time.perf_counter() - self._starts.pop())

    # -- decorator ------------------------------------------------------
    def __call__(self, func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                record(self.name, time.perf_counter() - start)

        return wrapper


def record(name: str, seconds: float) -> None:
    """Add one observation to the named accumulator."""
    entry = _REGISTRY.get(name)
    if entry is None:
        # repro-check: disable=parallel-safety -- each process owns its registry; workers snapshot via get_timings and the parent folds them in with merge_timings
        entry = _REGISTRY[name] = {"calls": 0, "seconds": 0.0}
    entry["calls"] += 1
    entry["seconds"] += seconds


def get_timings() -> Dict[str, Dict[str, float]]:
    """Snapshot of the registry: ``{name: {"calls", "seconds"}}``."""
    return {name: dict(entry) for name, entry in _REGISTRY.items()}


def merge_timings(timings: Mapping[str, Mapping[str, float]]) -> None:
    """Fold another registry snapshot into this process's registry.

    Used by the parent process to absorb the per-phase accumulators
    worker processes report back, so subprocess work shows up in the
    same ``timing_report()`` as in-process work.
    """
    for name, entry in timings.items():
        acc = _REGISTRY.get(name)
        if acc is None:
            acc = _REGISTRY[name] = {"calls": 0, "seconds": 0.0}
        acc["calls"] += int(entry.get("calls", 0))
        acc["seconds"] += float(entry.get("seconds", 0.0))


def reset_timings() -> None:
    """Clear every accumulator (start of a measurement window)."""
    # repro-check: disable=parallel-safety -- clears this process's own registry; workers reset their private copy at task start by design
    _REGISTRY.clear()


def format_timing_table(timings: Mapping[str, Mapping[str, float]]) -> str:
    """Render any registry snapshot as an aligned table (total-sorted)."""
    if not timings:
        return "(no timings recorded)"
    rows = sorted(timings.items(), key=lambda kv: -kv[1]["seconds"])
    width = max(len(name) for name, _ in rows)
    lines = [f"{'phase':<{width}}  {'calls':>7}  {'total s':>9}  "
             f"{'mean ms':>9}"]
    for name, entry in rows:
        calls = int(entry["calls"])
        total = entry["seconds"]
        mean_ms = 1e3 * total / max(calls, 1)
        lines.append(f"{name:<{width}}  {calls:>7d}  {total:>9.3f}  "
                     f"{mean_ms:>9.3f}")
    return "\n".join(lines)


def timing_report() -> str:
    """Render this process's registry as an aligned table."""
    return format_timing_table(_REGISTRY)
