"""Lightweight wall-clock instrumentation with a process-global registry.

``timed`` is both a context manager and a decorator::

    with timed("gnn.sweep"):
        ...

    @timed("flow.run")
    def run(...):
        ...

Every enter/exit pair adds one call and its elapsed seconds to the named
accumulator.  The registry is a plain module-level dict (the repro stack
is single-threaded); ``timing_report()`` renders it as a table sorted by
total time so perf work can see where steps spend their time, and
``reset_timings()`` clears it between measurements.

The overhead per timed block is two ``perf_counter`` calls and a dict
update (~1 microsecond), so instrumenting once-per-step phases is free;
avoid wrapping per-element inner loops.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, Optional

#: name -> {"calls": int, "seconds": float}
_REGISTRY: Dict[str, Dict[str, float]] = {}


class timed:
    """Accumulate wall-clock time under ``name`` (context manager/decorator)."""

    __slots__ = ("name", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self._start: Optional[float] = None

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        record(self.name, time.perf_counter() - self._start)

    # -- decorator ------------------------------------------------------
    def __call__(self, func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                record(self.name, time.perf_counter() - start)

        return wrapper


def record(name: str, seconds: float) -> None:
    """Add one observation to the named accumulator."""
    entry = _REGISTRY.get(name)
    if entry is None:
        entry = _REGISTRY[name] = {"calls": 0, "seconds": 0.0}
    entry["calls"] += 1
    entry["seconds"] += seconds


def get_timings() -> Dict[str, Dict[str, float]]:
    """Snapshot of the registry: ``{name: {"calls", "seconds"}}``."""
    return {name: dict(entry) for name, entry in _REGISTRY.items()}


def reset_timings() -> None:
    """Clear every accumulator (start of a measurement window)."""
    _REGISTRY.clear()


def timing_report() -> str:
    """Render the registry as an aligned table, sorted by total seconds."""
    if not _REGISTRY:
        return "(no timings recorded)"
    rows = sorted(_REGISTRY.items(), key=lambda kv: -kv[1]["seconds"])
    width = max(len(name) for name, _ in rows)
    lines = [f"{'phase':<{width}}  {'calls':>7}  {'total s':>9}  "
             f"{'mean ms':>9}"]
    for name, entry in rows:
        calls = int(entry["calls"])
        total = entry["seconds"]
        mean_ms = 1e3 * total / max(calls, 1)
        lines.append(f"{name:<{width}}  {calls:>7d}  {total:>9.3f}  "
                     f"{mean_ms:>9.3f}")
    return "\n".join(lines)
