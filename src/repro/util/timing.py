"""Lightweight wall-clock instrumentation with a process-global registry.

``timed`` is both a context manager and a decorator::

    with timed("gnn.sweep"):
        ...

    @timed("flow.run")
    def run(...):
        ...

Every enter/exit pair adds one call and its elapsed seconds to the named
accumulator.  The registry is a plain module-level dict (the repro stack
is single-threaded); ``timing_report()`` renders it as a table sorted by
total time so perf work can see where steps spend their time, and
``reset_timings()`` clears it between measurements.

A single ``timed`` instance keeps its start times on a stack, so one
shared instance (e.g. a module-level decorator applied to a recursive
function, or a context manager re-entered from within itself) measures
every nesting level correctly instead of overwriting the outer start.

Worker processes have their own registry; they snapshot it with
:func:`get_timings` and ship it back to the parent, which folds it in
with :func:`merge_timings` (see ``repro.flow.cache.build_designs``).

The overhead per timed block is two ``perf_counter`` calls and a dict
update (~1 microsecond), so instrumenting once-per-step phases is free;
avoid wrapping per-element inner loops.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, List, Mapping, Optional

#: name -> {"calls": int, "seconds": float}
_REGISTRY: Dict[str, Dict[str, float]] = {}


class timed:
    """Accumulate wall-clock time under ``name`` (context manager/decorator)."""

    __slots__ = ("name", "_starts")

    def __init__(self, name: str) -> None:
        self.name = name
        # Stack, not a scalar: the same instance may be entered again
        # before it exits (recursion through a decorated function,
        # nested ``with`` on a shared instance).
        self._starts: List[float] = []

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "timed":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        record(self.name, time.perf_counter() - self._starts.pop())

    # -- decorator ------------------------------------------------------
    def __call__(self, func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                record(self.name, time.perf_counter() - start)

        return wrapper


def record(name: str, seconds: float) -> None:
    """Add one observation to the named accumulator."""
    entry = _REGISTRY.get(name)
    if entry is None:
        # repro-check: disable=parallel-safety -- each process owns its registry; workers snapshot via get_timings and the parent folds them in with merge_timings
        entry = _REGISTRY[name] = {"calls": 0, "seconds": 0.0}
    entry["calls"] += 1
    entry["seconds"] += seconds


def get_timings() -> Dict[str, Dict[str, float]]:
    """Deep snapshot of the registry: ``{name: {"calls", "seconds"}}``.

    Entries that absorbed worker snapshots (see :func:`merge_timings`)
    also carry a ``"by_worker"`` sub-dict; the snapshot is fully
    detached, so callers may keep it across a :func:`reset_timings`.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name, entry in _REGISTRY.items():
        copied: Dict[str, float] = {"calls": entry["calls"],
                                    "seconds": entry["seconds"]}
        if "by_worker" in entry:
            copied["by_worker"] = {label: dict(slot) for label, slot
                                   in entry["by_worker"].items()}
        out[name] = copied
    return out


def merge_timings(timings: Mapping[str, Mapping[str, float]],
                  worker: Optional[str] = None) -> None:
    """Fold another registry snapshot into this process's registry.

    Used by the parent process to absorb the per-phase accumulators
    worker processes report back, so subprocess work shows up in the
    same ``timing_report()`` as in-process work.  With ``worker=``
    (a label like ``"w0"``), the contribution is *also* accumulated
    under the entry's ``"by_worker"`` sub-dict, which
    :func:`format_timing_table` renders as a per-worker attribution
    column — the data-parallel trainer merges every shard's snapshot
    each step under its shard label.
    """
    for name, entry in timings.items():
        acc = _REGISTRY.get(name)
        if acc is None:
            acc = _REGISTRY[name] = {"calls": 0, "seconds": 0.0}
        calls = int(entry.get("calls", 0))
        seconds = float(entry.get("seconds", 0.0))
        acc["calls"] += calls
        acc["seconds"] += seconds
        if worker is not None:
            by = acc.setdefault("by_worker", {})
            slot = by.setdefault(worker, {"calls": 0, "seconds": 0.0})
            slot["calls"] += calls
            slot["seconds"] += seconds


def reset_timings() -> None:
    """Clear every accumulator (start of a measurement window)."""
    # repro-check: disable=parallel-safety -- clears this process's own registry; workers reset their private copy at task start by design
    _REGISTRY.clear()


def format_timing_table(timings: Mapping[str, Mapping[str, float]]) -> str:
    """Render any registry snapshot as an aligned table (total-sorted).

    When any entry carries a ``"by_worker"`` sub-dict (snapshots from
    a multi-process run, see :func:`merge_timings`), a ``worker``
    column appears: each phase's aggregate row is tagged ``all`` and is
    followed by one attribution row per worker label.
    """
    if not timings:
        return "(no timings recorded)"
    rows = sorted(timings.items(), key=lambda kv: -kv[1]["seconds"])
    has_workers = any(entry.get("by_worker") for _, entry in rows)
    width = max(len(name) for name, _ in rows)
    wwidth = max([len("worker"), len("all")]
                 + [len(label) for _, entry in rows
                    for label in entry.get("by_worker", {})]) \
        if has_workers else 0

    def _line(name: str, label: str, entry: Mapping[str, float]) -> str:
        calls = int(entry["calls"])
        total = entry["seconds"]
        mean_ms = 1e3 * total / max(calls, 1)
        cell = f"{label:<{wwidth}}  " if has_workers else ""
        return (f"{name:<{width}}  {cell}{calls:>7d}  {total:>9.3f}  "
                f"{mean_ms:>9.3f}")

    header_cell = f"{'worker':<{wwidth}}  " if has_workers else ""
    lines = [f"{'phase':<{width}}  {header_cell}{'calls':>7}  "
             f"{'total s':>9}  {'mean ms':>9}"]
    for name, entry in rows:
        lines.append(_line(name, "all", entry))
        for label in sorted(entry.get("by_worker", {})):
            lines.append(_line(name, label, entry["by_worker"][label]))
    return "\n".join(lines)


def timing_report() -> str:
    """Render this process's registry as an aligned table."""
    return format_timing_table(_REGISTRY)
