"""Feature extraction: layout images, fanin cones, pin-graph encoding."""

from .encode import (
    GateVocabulary,
    PinGraph,
    apply_normalization,
    encode_netlist,
    normalize_features,
)
from .layout import cell_density_map, layout_images, macro_region_map
from .paths import all_fanin_cones, cone_mask, fanin_cone

__all__ = [
    "GateVocabulary",
    "PinGraph",
    "all_fanin_cones",
    "apply_normalization",
    "cell_density_map",
    "cone_mask",
    "encode_netlist",
    "fanin_cone",
    "layout_images",
    "macro_region_map",
    "normalize_features",
]
