"""Layout image generation (the CNN's input modality).

The paper's layout image set X has three channels: cell density map,
rectangular uniform wire density (RUDY) map, and macro-region map.  All
are rasterised on a ``resolution x resolution`` grid over the die, row 0
at the bottom.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Netlist
from ..place import Floorplan
from ..route import rudy_map


def cell_density_map(netlist: Netlist, floorplan: Floorplan,
                     resolution: int = 32) -> np.ndarray:
    """Fraction of each bin's area occupied by standard cells."""
    grid = np.zeros((resolution, resolution))
    w = max(floorplan.width, 1e-9)
    h = max(floorplan.height, 1e-9)
    bin_area = (w / resolution) * (h / resolution)
    for cell in netlist.cells.values():
        j = min(resolution - 1, max(0, int(cell.x / w * resolution)))
        i = min(resolution - 1, max(0, int(cell.y / h * resolution)))
        grid[i, j] += cell.area / bin_area
    return grid


def macro_region_map(floorplan: Floorplan,
                     resolution: int = 32) -> np.ndarray:
    """Binary mask of macro blockage coverage."""
    grid = np.zeros((resolution, resolution))
    w = max(floorplan.width, 1e-9)
    h = max(floorplan.height, 1e-9)
    for macro in floorplan.macros:
        j0 = min(resolution - 1, max(0, int(macro.x / w * resolution)))
        j1 = min(resolution - 1,
                 max(0, int((macro.x + macro.width) / w * resolution)))
        i0 = min(resolution - 1, max(0, int(macro.y / h * resolution)))
        i1 = min(resolution - 1,
                 max(0, int((macro.y + macro.height) / h * resolution)))
        grid[i0:i1 + 1, j0:j1 + 1] = 1.0
    return grid


def layout_images(netlist: Netlist, floorplan: Floorplan,
                  resolution: int = 32) -> np.ndarray:
    """Stack the three channels into a ``(3, R, R)`` image.

    Channel order: cell density, RUDY, macro region.  The first two are
    normalised to [0, 1] by their own maximum so both nodes' images live
    on comparable scales.
    """
    density = cell_density_map(netlist, floorplan, resolution)
    rudy = rudy_map(netlist, floorplan, resolution)
    macro = macro_region_map(floorplan, resolution)
    for channel in (density, rudy):
        peak = channel.max()
        if peak > 0:
            channel /= peak
    return np.stack([density, rudy, macro]).astype(np.float64)
