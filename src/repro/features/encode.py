"""Encoding a placed netlist as arrays for the GNN.

Produces the heterogeneous pin graph of the paper: nodes are pins, edges
are *net edges* (net driver -> sink) and *cell edges* (combinational cell
input -> output).  Node features follow Section 3.1: net distance, cell
driving strength, gate type (one-hot over the *merged* gate set of all
technology nodes), and pin capacitance.

The encoder also levelises the graph so the GNN can propagate from the
primary inputs to the endpoints in topological sweeps, mirroring the STA
engine's PERT traversal.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netlist import Netlist, Pin
from ..route import manhattan
from ..techlib import TechLibrary, merged_cell_vocabulary

#: Extra one-hot slot used for top-level ports (they have no cell type).
PORT_TYPE = "__port__"


class GateVocabulary:
    """The merged one-hot gate vocabulary across technology nodes.

    The paper: "we use one-hot representation for the gate type and merge
    all the gates in different technology nodes as the total gate set."
    """

    def __init__(self, libraries: Sequence[TechLibrary]) -> None:
        names = merged_cell_vocabulary(libraries) + [PORT_TYPE]
        self.index: Dict[str, int] = {n: i for i, n in enumerate(names)}

    def __len__(self) -> int:
        return len(self.index)

    def encode(self, cell_name: Optional[str]) -> int:
        """Vocabulary slot for a cell type (None = port)."""
        return self.index[cell_name if cell_name is not None else PORT_TYPE]


@dataclass
class PinGraph:
    """Array view of a placed netlist's timing graph.

    Attributes
    ----------
    features:
        ``(N, F)`` float array; F = 3 numeric features + |vocab| one-hot.
    net_edges / cell_edges:
        ``(2, E)`` int arrays of (source row, destination row).
    levels:
        ``levels[k]`` lists the rows whose value becomes final at sweep k
        (level 0 = timing startpoints).
    row_of_pin:
        Maps netlist pin index -> graph row.
    endpoint_rows / endpoint_names:
        Rows and stable names of the design's timing endpoints.
    """

    features: np.ndarray
    net_edges: np.ndarray
    cell_edges: np.ndarray
    levels: List[np.ndarray]
    row_of_pin: Dict[int, int]
    endpoint_rows: np.ndarray
    endpoint_names: List[str]

    @property
    def num_nodes(self) -> int:
        return self.features.shape[0]

    def stats(self) -> Dict[str, int]:
        return {
            "pins": self.num_nodes,
            "endpoints": len(self.endpoint_rows),
            "net_edges": self.net_edges.shape[1],
            "cell_edges": self.cell_edges.shape[1],
            "levels": len(self.levels),
        }


def encode_netlist(netlist: Netlist, vocab: GateVocabulary) -> PinGraph:
    """Encode a placed netlist into a :class:`PinGraph`."""
    pins = _connected_pins(netlist)
    row_of_pin = {pin.index: row for row, pin in enumerate(pins)}

    features = _node_features(netlist, pins, vocab)
    net_edges, cell_edges = _edges(netlist, row_of_pin)
    levels = _levelize(len(pins), net_edges, cell_edges)

    endpoints = netlist.timing_endpoints()
    endpoint_rows = np.array([row_of_pin[p.index] for p in endpoints],
                             dtype=np.int64)
    endpoint_names = [p.full_name for p in endpoints]
    return PinGraph(
        features=features,
        net_edges=net_edges,
        cell_edges=cell_edges,
        levels=levels,
        row_of_pin=row_of_pin,
        endpoint_rows=endpoint_rows,
        endpoint_names=endpoint_names,
    )


def _connected_pins(netlist: Netlist) -> List[Pin]:
    """Pins participating in the signal graph (clock pins excluded)."""
    out = []
    for pin in netlist.pins:
        net = pin.net
        if net is None or net.is_clock:
            continue
        out.append(pin)
    return out


def _node_features(netlist: Netlist, pins: List[Pin],
                   vocab: GateVocabulary) -> np.ndarray:
    n = len(pins)
    numeric = np.zeros((n, 3))
    onehot = np.zeros((n, len(vocab)))
    for row, pin in enumerate(pins):
        # Net distance: Manhattan length from the net's driver (0 at the
        # driver itself).
        net = pin.net
        if net is not None and net.driver is not None \
                and net.driver is not pin:
            numeric[row, 0] = manhattan(net.driver, pin)
        # Cell driving strength (ports get 0).
        if pin.cell is not None:
            numeric[row, 1] = pin.cell.ref.drive_strength
            onehot[row, vocab.encode(pin.cell.ref.name)] = 1.0
        else:
            onehot[row, vocab.encode(None)] = 1.0
        # Pin capacitance.
        numeric[row, 2] = pin.cap
    return np.concatenate([numeric, onehot], axis=1)


def _edges(netlist: Netlist,
           row_of_pin: Dict[int, int]) -> Tuple[np.ndarray, np.ndarray]:
    net_src, net_dst = [], []
    for driver, sink in netlist.net_edges():
        if driver.index in row_of_pin and sink.index in row_of_pin:
            net_src.append(row_of_pin[driver.index])
            net_dst.append(row_of_pin[sink.index])
    cell_src, cell_dst = [], []
    for in_pin, out_pin in netlist.cell_edges():
        if in_pin.index in row_of_pin and out_pin.index in row_of_pin:
            cell_src.append(row_of_pin[in_pin.index])
            cell_dst.append(row_of_pin[out_pin.index])
    net_edges = np.array([net_src, net_dst], dtype=np.int64) \
        if net_src else np.zeros((2, 0), dtype=np.int64)
    cell_edges = np.array([cell_src, cell_dst], dtype=np.int64) \
        if cell_src else np.zeros((2, 0), dtype=np.int64)
    return net_edges, cell_edges


def _levelize(num_nodes: int, net_edges: np.ndarray,
              cell_edges: np.ndarray) -> List[np.ndarray]:
    """Group rows into topological levels over the combined edge set."""
    indegree = np.zeros(num_nodes, dtype=np.int64)
    adjacency: Dict[int, List[int]] = {}
    for edges in (net_edges, cell_edges):
        for src, dst in edges.T:
            indegree[dst] += 1
            adjacency.setdefault(int(src), []).append(int(dst))

    level = np.zeros(num_nodes, dtype=np.int64)
    queue = deque(np.nonzero(indegree == 0)[0].tolist())
    seen = 0
    while queue:
        node = queue.popleft()
        seen += 1
        for nxt in adjacency.get(int(node), []):
            level[nxt] = max(level[nxt], level[node] + 1)
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)
    if seen != num_nodes:
        raise ValueError("pin graph contains a cycle; check register "
                         "handling in the netlist")
    levels = []
    for k in range(int(level.max()) + 1 if num_nodes else 0):
        levels.append(np.nonzero(level == k)[0])
    return levels


def normalize_features(graphs: Sequence[PinGraph],
                       numeric_columns: int = 3) -> Dict[str, np.ndarray]:
    """Standardise numeric feature columns *jointly* across graphs.

    One shared affine transform is fit on the union of all training
    graphs and applied in place.  Sharing the transform preserves the
    between-node distribution shift (the thing the paper's model must
    cope with) while keeping gradients well-scaled.

    Returns the ``{"mean": ..., "std": ...}`` parameters so test graphs
    can be transformed consistently via :func:`apply_normalization`.
    """
    stacked = np.concatenate(
        [g.features[:, :numeric_columns] for g in graphs], axis=0
    )
    mean = stacked.mean(axis=0)
    std = stacked.std(axis=0)
    std[std < 1e-12] = 1.0
    params = {"mean": mean, "std": std}
    for g in graphs:
        apply_normalization(g, params, numeric_columns)
    return params


def apply_normalization(graph: PinGraph, params: Dict[str, np.ndarray],
                        numeric_columns: int = 3) -> None:
    """Apply a fitted normalisation to one graph (in place)."""
    cols = graph.features[:, :numeric_columns]
    graph.features[:, :numeric_columns] = (cols - params["mean"]) \
        / params["std"]
