"""Timing path (fanin cone) extraction.

A timing path G' in the paper is the whole fanin cone of an endpoint: the
sub-graph of all pins that can reach the endpoint without crossing a
register boundary.  Cones provide (a) the pin set whose GNN embedding is
read out at the endpoint and (b) the spatial mask applied to the layout
images before the CNN.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Set

import numpy as np

from ..netlist import Netlist, Pin
from ..place import Floorplan


def fanin_cone(netlist: Netlist, endpoint: Pin) -> Set[int]:
    """Pin indices of the endpoint's fanin cone (endpoint included).

    Walks backwards across net edges (sink -> driver) and combinational
    cell edges (output -> inputs); stops at primary inputs and flop Q
    pins, which are timing startpoints.
    """
    seen: Set[int] = {endpoint.index}
    queue = deque([endpoint])
    while queue:
        pin = queue.popleft()
        # Cross the net backwards: sink -> driver.  Sinks are cell input
        # pins and primary-output port pins, both direction "input".
        if pin.direction == "input":
            net = pin.net
            if net is None or net.is_clock or net.driver is None:
                continue
            driver = net.driver
            if driver.index not in seen:
                seen.add(driver.index)
                queue.append(driver)
        elif pin.cell is not None and not pin.cell.is_sequential:
            # Cross the cell backwards: output -> inputs.
            for in_pin in pin.cell.input_pins:
                if in_pin.index not in seen:
                    seen.add(in_pin.index)
                    queue.append(in_pin)
    return seen


def all_fanin_cones(netlist: Netlist) -> Dict[str, Set[int]]:
    """Fanin cones for every timing endpoint, keyed by endpoint name."""
    return {pin.full_name: fanin_cone(netlist, pin)
            for pin in netlist.timing_endpoints()}


def cone_mask(netlist: Netlist, cone: Set[int], floorplan: Floorplan,
              resolution: int = 32, dilate: int = 1) -> np.ndarray:
    """Rasterise a cone's pin locations into a binary mask.

    Parameters
    ----------
    dilate:
        Number of 4-neighbourhood dilation steps applied so that a cone
        covers a visible region rather than isolated pixels (the paper
        masks images "with the pin locations on the layout image").
    """
    grid = np.zeros((resolution, resolution), dtype=bool)
    w = max(floorplan.width, 1e-9)
    h = max(floorplan.height, 1e-9)
    for idx in cone:
        pin = netlist.pins[idx]
        j = min(resolution - 1, max(0, int(pin.x / w * resolution)))
        i = min(resolution - 1, max(0, int(pin.y / h * resolution)))
        grid[i, j] = True
    for _ in range(dilate):
        shifted = grid.copy()
        shifted[1:, :] |= grid[:-1, :]
        shifted[:-1, :] |= grid[1:, :]
        shifted[:, 1:] |= grid[:, :-1]
        shifted[:, :-1] |= grid[:, 1:]
        grid = shifted
    return grid.astype(np.float64)
