"""Resident multi-threaded HTTP prediction server (`repro serve`).

One process keeps one warm :class:`~repro.infer.InferenceEngine` (and
its feature cache) per loaded model and serves it over plain stdlib
HTTP — no new dependencies:

``POST /predict``
    ``{"design": name, "mc_samples": 0, "seed": 0,
    "uncertainty": false}`` -> per-endpoint predictions.  Concurrent
    requests landing within the coalescing window are fused into one
    ``predict_many`` union-graph sweep (see
    :mod:`repro.serve.coalescer`); the response reports how many
    requests shared the sweep.

``GET /healthz`` / ``GET /stats``
    Liveness (model digest, generation) and serving telemetry: cache
    hit/eviction counters for every engine tier, coalescer batch
    shape, request latency percentiles, and the process timing
    registry.

``POST /reload``
    Reload the model checkpoint from disk and atomically swap it into
    the engine (also triggered by mtime polling).  The blake2b weight
    digest keys the feature cache, so no explicit flush happens — old
    entries simply stop matching.  A checkpoint that fails to load
    (torn file, wrong version) is reported and the old model keeps
    serving; a request can never observe a half-swapped model because
    the swap takes the engine's write lock.

The split mirrors the learner/serving architecture of the
circuit-training exemplar: :class:`ModelContainer` is the variable
container (versioned weights, consumers pull), the handler threads are
the actors, and the training process that rewrites the checkpoint is
the learner.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..flow import DesignData
from ..infer import (
    InferenceEngine,
    Prediction,
    load_predictor,
    weight_digest,
)
from ..model import TimingPredictor
from ..nn.serialization import CheckpointError
from ..util import get_timings
from .coalescer import CoalescerClosed, RequestCoalescer

__all__ = ["ModelContainer", "PredictionServer", "PredictionService",
           "ServerConfig"]


class ServerConfig:
    """Knobs of one serving process (CLI flags map 1:1 onto these)."""

    __slots__ = ("host", "port", "batch_window_ms", "max_batch",
                 "poll_interval", "mc_samples", "max_struct_entries",
                 "max_column_entries", "latency_window")

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 batch_window_ms: float = 2.0, max_batch: int = 32,
                 poll_interval: float = 0.0,
                 max_struct_entries: int = 8,
                 max_column_entries: int = 64,
                 latency_window: int = 4096) -> None:
        self.host = host
        self.port = port
        self.batch_window_ms = batch_window_ms
        self.max_batch = max_batch
        self.poll_interval = poll_interval
        self.max_struct_entries = max_struct_entries
        self.max_column_entries = max_column_entries
        self.latency_window = latency_window


class ModelContainer:
    """Versioned holder of the served predictor (the variable container).

    Owns the engine and the checkpoint path; ``reload()`` stages a
    fresh :func:`~repro.infer.load_predictor` (which validates the full
    archive *before* building a model) and swaps it into the engine
    under the engine's write lock.  Readers never see an intermediate
    state; a failed load leaves the old model serving and is recorded
    for /stats.
    """

    def __init__(self, model: TimingPredictor,
                 model_path: Union[str, Path, None] = None,
                 max_struct_entries: int = 8,
                 max_column_entries: int = 64) -> None:
        self.engine = InferenceEngine(
            model, max_struct_entries=max_struct_entries,
            max_column_entries=max_column_entries)
        self.model_path = Path(model_path) if model_path else None
        self._lock = threading.Lock()
        self.generation = 1
        self.digest = weight_digest(model)
        self.reloads = 0
        self.failed_reloads = 0
        self.last_reload_error: Optional[str] = None
        self._mtime = self._current_mtime()

    def _current_mtime(self) -> Optional[float]:
        if self.model_path is None:
            return None
        try:
            return self.model_path.stat().st_mtime
        except OSError:
            return None

    def reload(self, force: bool = True) -> Dict[str, object]:
        """Swap in the checkpoint from disk (no-op if mtime unchanged
        and not forced).  Returns a status dict; raises CheckpointError
        only through the dict (callers serve it, they don't crash)."""
        with self._lock:
            if self.model_path is None:
                return {"reloaded": False,
                        "error": "server was started without --model; "
                                 "nothing to reload from"}
            mtime = self._current_mtime()
            if not force and mtime == self._mtime:
                return {"reloaded": False, "generation": self.generation,
                        "digest": self.digest}
            old_digest = self.digest
            try:
                model = load_predictor(self.model_path)
            except CheckpointError as exc:
                self.failed_reloads += 1
                self.last_reload_error = str(exc)
                return {"reloaded": False, "error": str(exc),
                        "error_type": "CheckpointError",
                        "generation": self.generation,
                        "digest": self.digest}
            self.engine.swap_model(model)
            self._mtime = mtime
            self.generation += 1
            self.digest = weight_digest(model)
            self.reloads += 1
            self.last_reload_error = None
            return {"reloaded": True, "generation": self.generation,
                    "old_digest": old_digest, "digest": self.digest}

    def poll(self) -> Dict[str, object]:
        """mtime-triggered reload (the polling thread's entry point)."""
        return self.reload(force=False)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "generation": self.generation,
                "digest": self.digest,
                "reloads": self.reloads,
                "failed_reloads": self.failed_reloads,
                "last_reload_error": self.last_reload_error,
                "model_path": str(self.model_path)
                if self.model_path else None,
            }


def _percentile(values: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if values else 0.0


class PredictionService:
    """HTTP-free request logic (what the handler threads call).

    Keeping this separate from the ``BaseHTTPRequestHandler`` subclass
    makes the serving semantics unit-testable without sockets and keeps
    the handler a thin parse/serialize shim.
    """

    def __init__(self, designs: Sequence[DesignData],
                 container: ModelContainer,
                 config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.container = container
        self.designs: Dict[str, DesignData] = {}
        for design in designs:
            self.designs[design.name] = design
        self.coalescer: Optional[RequestCoalescer] = None
        if self.config.batch_window_ms > 0:
            self.coalescer = RequestCoalescer(
                container.engine,
                batch_window_ms=self.config.batch_window_ms,
                max_batch=self.config.max_batch)
        self._latencies = deque(maxlen=self.config.latency_window)
        self._latency_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    def predict(self, payload: object) -> Tuple[int, Dict[str, object]]:
        """One /predict request: ``(http_status, response_body)``."""
        start = time.perf_counter()
        status, body = self._predict_inner(payload)
        elapsed = time.perf_counter() - start
        with self._latency_lock:
            self._requests += 1
            if status != 200:
                self._errors += 1
            else:
                self._latencies.append(elapsed)
        return status, body

    def _predict_inner(self, payload: object
                       ) -> Tuple[int, Dict[str, object]]:
        if not isinstance(payload, dict):
            return 400, {"error": "request body must be a JSON object"}
        name = payload.get("design")
        if not isinstance(name, str):
            return 400, {"error": "missing string field 'design'"}
        design = self.designs.get(name)
        if design is None:
            return 404, {"error": f"unknown design {name!r}",
                         "known": sorted(self.designs)}
        try:
            mc_samples = int(payload.get("mc_samples", 0))
            seed = int(payload.get("seed", 0))
            uncertainty = bool(payload.get("uncertainty", False))
        except (TypeError, ValueError):
            return 400, {"error": "mc_samples/seed must be integers"}
        if uncertainty and mc_samples <= 0:
            mc_samples = 16
        try:
            if self.coalescer is not None:
                pending = self.coalescer.submit(
                    design, mc_samples=mc_samples,
                    with_uncertainty=uncertainty, seed=seed)
                prediction = pending.wait(timeout=60.0)
                batched_with = pending.batch_size
            else:
                # No-coalescing baseline: the handler thread calls the
                # engine directly — the leanest per-request dispatch.
                engine = self.container.engine
                if uncertainty:
                    mean, std = engine.predict_with_uncertainty(
                        design, mc_samples=mc_samples, seed=seed)
                else:
                    mean = engine.predict(design,
                                          mc_samples=mc_samples,
                                          seed=seed)
                    std = None
                prediction = Prediction(design.name, design.node,
                                        mean, std)
                batched_with = 1
        except CoalescerClosed:
            return 503, {"error": "server is shutting down"}
        except CheckpointError as exc:
            return 503, {"error": str(exc),
                         "error_type": "CheckpointError"}
        except TimeoutError:
            return 504, {"error": "prediction timed out"}
        body = {
            "design": prediction.name,
            "node": prediction.node,
            "num_endpoints": prediction.num_endpoints,
            "mean": prediction.mean.tolist(),
            "std": prediction.std.tolist()
            if prediction.std is not None else None,
            "coalesced": batched_with,
            "generation": self.container.generation,
        }
        return 200, body

    # ------------------------------------------------------------------
    def healthz(self) -> Tuple[int, Dict[str, object]]:
        return 200, {
            "status": "ok",
            "designs": len(self.designs),
            "generation": self.container.generation,
            "digest": self.container.digest,
        }

    def stats(self) -> Tuple[int, Dict[str, object]]:
        with self._latency_lock:
            latencies = list(self._latencies)
            requests, errors = self._requests, self._errors
        body = {
            "uptime_seconds": time.monotonic() - self._started,
            "requests": requests,
            "errors": errors,
            "latency": {
                "count": len(latencies),
                "p50_ms": _percentile(latencies, 50) * 1e3,
                "p99_ms": _percentile(latencies, 99) * 1e3,
                "max_ms": max(latencies) * 1e3 if latencies else 0.0,
            },
            "engine": self.container.engine.stats(),
            "model": self.container.stats(),
            "coalescer": self.coalescer.stats()
            if self.coalescer is not None else None,
            "timings": {name: entry for name, entry in
                        get_timings().items()
                        if name.startswith("infer.")},
        }
        return 200, body

    def reload(self) -> Tuple[int, Dict[str, object]]:
        status = self.container.reload(force=True)
        if status.get("error_type") == "CheckpointError":
            return 500, status
        if status.get("error"):
            return 400, status
        return 200, status

    def close(self) -> None:
        if self.coalescer is not None:
            self.coalescer.close()


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :class:`PredictionService` (one per request,
    on a ThreadingHTTPServer worker thread)."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"   # keep-alive for persistent clients
    #: Headers and body go out as separate writes; without TCP_NODELAY
    #: Nagle holds the second one for the peer's delayed ACK (~40 ms
    #: per request on Linux loopback).
    disable_nagle_algorithm = True

    # Set per server class via make_server_class().
    service: PredictionService

    def _respond(self, status: int, body: Dict[str, object]) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/healthz":
            self._respond(*self.service.healthz())
        elif self.path == "/stats":
            self._respond(*self.service.stats())
        else:
            self._respond(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        # Always drain the body, whatever the route: on a keep-alive
        # connection unread body bytes would be parsed as the next
        # request line.
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length > 0 else b""
        except ValueError:
            self._respond(400, {"error": "bad Content-Length header"})
            return
        if self.path == "/predict":
            try:
                payload = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                self._respond(400, {"error": f"bad request body: {exc}"})
                return
            self._respond(*self.service.predict(payload))
        elif self.path == "/reload":
            self._respond(*self.service.reload())
        else:
            self._respond(404, {"error": f"no route {self.path!r}"})

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass   # request logging goes through /stats, not stderr


class PredictionServer:
    """The resident process: HTTP server + service + reload polling.

    ``start()`` binds and spins up the serving threads and returns (the
    HTTP loop runs on a daemon thread); ``serve_forever()`` blocks the
    calling thread until ``stop()``.  Construction order matters for a
    clean shutdown: stop the listener first (no new requests), then the
    coalescer (drain pending), then the poller.
    """

    def __init__(self, designs: Sequence[DesignData],
                 model: TimingPredictor,
                 model_path: Union[str, Path, None] = None,
                 config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.container = ModelContainer(
            model, model_path,
            max_struct_entries=self.config.max_struct_entries,
            max_column_entries=self.config.max_column_entries)
        self.service = PredictionService(designs, self.container,
                                         self.config)
        handler = type("BoundHandler", (_Handler,),
                       {"service": self.service})
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), handler)
        self._httpd.daemon_threads = True
        self._http_thread: Optional[threading.Thread] = None
        self._poll_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    # ------------------------------------------------------------------
    def _poll_loop(self) -> None:
        interval = self.config.poll_interval
        while not self._stopping.wait(interval):
            self.container.poll()

    def start(self) -> "PredictionServer":
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http", daemon=True)
        self._http_thread.start()
        if self.config.poll_interval > 0 and \
                self.container.model_path is not None:
            self._poll_thread = threading.Thread(
                target=self._poll_loop, name="repro-serve-poll",
                daemon=True)
            self._poll_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block until stop() (Ctrl-C in the CLI path)."""
        if self._http_thread is None:
            self.start()
        try:
            while not self._stopping.wait(0.2):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
        self.service.close()
        if self._poll_thread is not None:
            self._poll_thread.join(timeout=5.0)

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def warm_up(service: PredictionService,
            names: Optional[List[str]] = None) -> int:
    """Prime the feature cache with one fused sweep over ``names``
    (default: every served design).  Returns the number warmed."""
    designs = [service.designs[n] for n in (names or
                                            sorted(service.designs))]
    if designs:
        service.container.engine.predict_many(designs)
    return len(designs)
