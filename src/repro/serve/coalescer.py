"""Micro-batching request coalescer for the resident prediction server.

Concurrent single-design requests are the serving pattern, and the
engine's cheapest shape for them is one fused ``predict_many`` call:
one weight digest, one union-graph extraction for the cache misses,
one batched prior-MLP forward.  The coalescer is the funnel that turns
N handler threads into that shape:

- :meth:`RequestCoalescer.submit` enqueues a request and blocks the
  *calling* thread on a per-request event;
- a single worker thread drains the queue, waiting up to
  ``batch_window_ms`` (and up to ``max_batch`` requests) for
  companions to land, fuses each compatible group into one
  ``predict_many`` sweep, and fans the per-design results back out;
- requests are compatible when their options agree — ``predict_many``
  draws a fresh seeded generator per design, so a fused call returns
  bit-identical results to per-design ``predict`` calls with the same
  ``(mc_samples, with_uncertainty, seed)``.

With ``batch_window_ms == 0`` the worker never waits for companions —
every request is its own batch — which is exactly the no-coalescing
baseline the serving benchmark compares against.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..flow import DesignData
from ..infer.engine import InferenceEngine, Prediction

__all__ = ["CoalescerClosed", "PendingPrediction", "RequestCoalescer"]

#: Requests fuse only when these agree.
OptionsKey = Tuple[int, bool, int]


class CoalescerClosed(RuntimeError):
    """Submit after (or during) shutdown."""


class PendingPrediction:
    """One in-flight request: a slot the worker fills, an event the
    submitting thread waits on."""

    __slots__ = ("design", "options", "result", "error", "batch_size",
                 "_done")

    def __init__(self, design: DesignData, options: OptionsKey) -> None:
        self.design = design
        self.options = options
        self.result: Optional[Prediction] = None
        self.error: Optional[BaseException] = None
        self.batch_size = 0
        self._done = threading.Event()

    def _finish(self, result: Optional[Prediction],
                error: Optional[BaseException], batch_size: int) -> None:
        self.result = result
        self.error = error
        self.batch_size = batch_size
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> Prediction:
        """Block until the fused batch containing this request ran."""
        if not self._done.wait(timeout):
            raise TimeoutError("prediction not ready within timeout")
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class RequestCoalescer:
    """Fuse concurrent single-design requests into ``predict_many`` sweeps.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.infer.InferenceEngine`.  The engine
        outlives model hot-reloads (``swap_model`` replaces the weights
        inside it), so the coalescer can hold it directly.
    batch_window_ms:
        Upper bound on how long the first request of a batch waits for
        companions.  0 disables coalescing (each request is its own
        batch).
    max_batch:
        Hard cap on requests fused into one sweep.
    idle_gap_ms:
        Adaptive early close: once the queue has been idle this long,
        the batch dispatches without waiting out the rest of the
        window.  Concurrent requests land microseconds apart, so with
        a closed-loop client fleet the full window would otherwise be
        pure dead time every round; too small a gap splits a batch
        whenever a client thread is briefly starved, paying a second
        sweep for the stragglers.  Default: ``batch_window_ms / 2``
        (at least 0.2 ms).
    """

    def __init__(self, engine: InferenceEngine,
                 batch_window_ms: float = 2.0,
                 max_batch: int = 32,
                 idle_gap_ms: Optional[float] = None) -> None:
        if batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.engine = engine
        self.batch_window_ms = float(batch_window_ms)
        self.max_batch = int(max_batch)
        if idle_gap_ms is None:
            idle_gap_ms = max(0.2, self.batch_window_ms / 2) \
                if self.batch_window_ms > 0 else 0.0
        if idle_gap_ms < 0:
            raise ValueError("idle_gap_ms must be >= 0")
        self.idle_gap_ms = float(idle_gap_ms)
        self._queue: "queue.Queue[PendingPrediction]" = queue.Queue()
        self._closed = threading.Event()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._fused_requests = 0   # requests that shared their batch
        self._largest_batch = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-coalescer", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # Submission side (handler threads)
    # ------------------------------------------------------------------
    def submit(self, design: DesignData, mc_samples: int = 0,
               with_uncertainty: bool = False,
               seed: int = 0) -> PendingPrediction:
        """Enqueue one request; returns a handle to ``wait()`` on."""
        if self._closed.is_set():
            raise CoalescerClosed("coalescer is shut down")
        pending = PendingPrediction(
            design, (int(mc_samples), bool(with_uncertainty), int(seed)))
        self._queue.put(pending)
        return pending

    def predict(self, design: DesignData, mc_samples: int = 0,
                with_uncertainty: bool = False, seed: int = 0,
                timeout: Optional[float] = None) -> Prediction:
        """Blocking convenience: submit and wait."""
        return self.submit(design, mc_samples, with_uncertainty,
                           seed).wait(timeout)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _gather(self) -> Optional[List[PendingPrediction]]:
        """One batch: the next request plus companions arriving within
        the window (None when idle / shutting down)."""
        try:
            first = self._queue.get(timeout=0.05)
        except queue.Empty:
            return None
        batch = [first]
        if self.batch_window_ms == 0:
            # No-coalescing baseline: strictly one request per sweep,
            # even if more are already queued.
            return batch
        deadline = time.monotonic() + self.batch_window_ms / 1e3
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # Window elapsed — but never leave already-queued
                # requests behind a sweep they could have joined.
                try:
                    batch.append(self._queue.get_nowait())
                    continue
                except queue.Empty:
                    break
            try:
                batch.append(self._queue.get(
                    timeout=min(remaining, self.idle_gap_ms / 1e3)))
            except queue.Empty:
                break   # queue went idle: dispatch early
        return batch

    def _run(self) -> None:
        while not self._closed.is_set():
            batch = self._gather()
            if batch:
                self._process(batch)
        # Drain: fail anything still queued so no submitter hangs.
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            pending._finish(None, CoalescerClosed("coalescer shut down"),
                            0)

    def _process(self, batch: Sequence[PendingPrediction]) -> None:
        groups: Dict[OptionsKey, List[PendingPrediction]] = {}
        for pending in batch:
            groups.setdefault(pending.options, []).append(pending)
        with self._stats_lock:
            self._requests += len(batch)
            self._batches += 1
            if len(batch) > 1:
                self._fused_requests += len(batch)
            self._largest_batch = max(self._largest_batch, len(batch))
        for (mc_samples, with_uncertainty, seed), group in groups.items():
            # Dedupe: two requests for the same design in one window
            # share a single slot in the fused sweep.
            unique: Dict[Tuple[str, str], DesignData] = {}
            for pending in group:
                unique.setdefault(
                    (pending.design.name, pending.design.node),
                    pending.design)
            try:
                results = self.engine.predict_many(
                    list(unique.values()), mc_samples=mc_samples,
                    with_uncertainty=with_uncertainty, seed=seed)
            # repro-check: disable=bare-except -- any engine failure must fan out to the waiting submitters, not kill the worker thread
            except BaseException as exc:  # noqa: BLE001 - fan out as-is
                for pending in group:
                    pending._finish(None, exc, len(batch))
                continue
            for pending in group:
                pending._finish(results[pending.design.name], None,
                                len(batch))

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Coalescing counters for the /stats endpoint."""
        with self._stats_lock:
            requests, batches = self._requests, self._batches
            return {
                "requests": requests,
                "batches": batches,
                "coalesced_requests": self._fused_requests,
                "largest_batch": self._largest_batch,
                "mean_batch_size": requests / batches if batches else 0.0,
                "queue_depth": self._queue.qsize(),
                "batch_window_ms": self.batch_window_ms,
                "idle_gap_ms": self.idle_gap_ms,
                "max_batch": self.max_batch,
            }

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker; pending requests fail with CoalescerClosed."""
        self._closed.set()
        self._thread.join(timeout)
        # A submit may have slipped its request in between the worker's
        # final drain and its exit; fail it rather than strand it.
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            pending._finish(None, CoalescerClosed("coalescer shut down"),
                            0)

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
