"""Entry point: ``python -m repro.serve`` (same as ``repro serve``).

The argparse surface lives here (:func:`add_serve_arguments` /
:func:`run_from_args`) so the top-level ``repro`` CLI can delegate
without duplicating flags.
"""

from __future__ import annotations

import argparse


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the `repro serve` flags to ``parser``."""
    parser.add_argument("--model", default=None, metavar="PATH",
                        help="serving checkpoint from `repro train "
                             "--save-model` (default: train from "
                             "scratch, like `repro predict`)")
    parser.add_argument("--train-steps", type=int, default=150,
                        help="training steps when no --model is given")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--batch-window-ms", type=float, default=2.0,
                        help="how long the first request of a batch "
                             "waits for companions to coalesce "
                             "(0 disables coalescing)")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="cap on requests fused into one sweep")
    parser.add_argument("--poll-interval", type=float, default=0.0,
                        metavar="SECONDS",
                        help="check the --model file's mtime every N "
                             "seconds and hot-reload on change "
                             "(0 disables polling; POST /reload "
                             "always works)")
    parser.add_argument("--max-struct-entries", type=int, default=8,
                        help="LRU bound on cached union-graph batch "
                             "structures")
    parser.add_argument("--max-column-entries", type=int, default=64,
                        help="LRU bound on cached im2col column maps")
    parser.add_argument("--no-warmup", action="store_true",
                        help="skip the startup sweep that primes the "
                             "feature cache for every served design")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for cold dataset builds")
    parser.add_argument("--no-flow-cache", action="store_true",
                        help="bypass the on-disk design cache")
    parser.add_argument("--cache-dir", default=None,
                        help="design cache root "
                             "(default $REPRO_CACHE_DIR)")


def run_from_args(args: argparse.Namespace) -> int:
    """Build the dataset + model, then serve until interrupted."""
    from ..experiments import build_dataset
    from ..infer import load_predictor
    from ..util import reset_timings
    from .server import PredictionServer, ServerConfig, warm_up

    reset_timings()
    dataset = build_dataset(workers=args.workers,
                            use_cache=not args.no_flow_cache,
                            cache_dir=args.cache_dir)
    designs = dataset.train + dataset.test
    if args.model:
        model = load_predictor(args.model)
        if model.init_config["in_features"] != dataset.in_features:
            print(f"checkpoint expects "
                  f"{model.init_config['in_features']} input features, "
                  f"dataset has {dataset.in_features}")
            return 1
    else:
        from ..model import TimingPredictor
        from ..train import OursTrainer, TrainConfig

        print(f"no --model given; training for {args.train_steps} "
              f"steps ...")
        model = TimingPredictor(dataset.in_features, seed=args.seed)
        trainer = OursTrainer(
            model, dataset.train,
            TrainConfig(steps=args.train_steps, seed=args.seed))
        trainer.fit()

    config = ServerConfig(host=args.host, port=args.port,
                          batch_window_ms=args.batch_window_ms,
                          max_batch=args.max_batch,
                          poll_interval=args.poll_interval,
                          max_struct_entries=args.max_struct_entries,
                          max_column_entries=args.max_column_entries)
    server = PredictionServer(designs, model, model_path=args.model,
                              config=config)
    if not args.no_warmup:
        warmed = warm_up(server.service)
        print(f"feature cache primed for {warmed} designs")
    server.start()
    mode = (f"coalescing window {config.batch_window_ms} ms, "
            f"max batch {config.max_batch}"
            if config.batch_window_ms > 0 else "coalescing disabled")
    print(f"serving {len(designs)} designs on "
          f"http://{server.host}:{server.port} ({mode})")
    print("endpoints: POST /predict, POST /reload, GET /healthz, "
          "GET /stats — Ctrl-C to stop")
    server.serve_forever()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="resident prediction server with request "
                    "coalescing and model hot-reload")
    add_serve_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
