"""Minimal stdlib client for the resident prediction server.

Used by the serving benchmark, the CI smoke job, and the tests — and
handy interactively.  One :class:`ServingClient` wraps one persistent
HTTP/1.1 connection (``http.client.HTTPConnection``), reconnecting
transparently when the server closes it, so benchmark loops measure
prediction cost rather than TCP handshakes.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Dict, Optional

__all__ = ["ServingClient", "ServingError"]


class _NoDelayConnection(http.client.HTTPConnection):
    """HTTPConnection with Nagle disabled — request latency must not
    include a delayed-ACK round trip."""

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class ServingError(RuntimeError):
    """Non-2xx response from the server; carries the decoded body."""

    def __init__(self, status: int, body: Dict[str, object]) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServingClient:
    """One persistent connection to a :class:`PredictionServer`.

    Not thread-safe — use one client per thread (that is also the
    realistic serving pattern the benchmark wants to model).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8000,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = _NoDelayConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
        body = json.dumps(payload).encode("utf-8") \
            if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # Server closed the keep-alive connection (idle timeout,
                # restart); reconnect once before giving up.
                self.close()
                if attempt:
                    raise
        decoded = json.loads(data) if data else {}
        if response.status >= 400:
            raise ServingError(response.status, decoded)
        return decoded

    # ------------------------------------------------------------------
    def predict(self, design: str, mc_samples: int = 0, seed: int = 0,
                uncertainty: bool = False) -> Dict[str, object]:
        return self._request("POST", "/predict", {
            "design": design, "mc_samples": mc_samples, "seed": seed,
            "uncertainty": uncertainty})

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats")

    def reload(self) -> Dict[str, object]:
        return self._request("POST", "/reload", {})

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
