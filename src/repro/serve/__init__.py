"""Resident prediction server (`repro serve`).

See DESIGN.md §13 "Serving architecture":

- :class:`PredictionServer` — stdlib threaded HTTP server keeping one
  warm :class:`~repro.infer.InferenceEngine` per loaded model;
- :class:`RequestCoalescer` — fuses concurrent single-design requests
  into one ``predict_many`` union-graph sweep per window;
- :class:`ModelContainer` — versioned model holder with atomic
  hot-reload (``POST /reload`` + mtime polling);
- :class:`ServingClient` — stdlib benchmark/test client.
"""

from .client import ServingClient, ServingError
from .coalescer import CoalescerClosed, PendingPrediction, RequestCoalescer
from .server import (
    ModelContainer,
    PredictionServer,
    PredictionService,
    ServerConfig,
)

__all__ = [
    "CoalescerClosed",
    "ModelContainer",
    "PendingPrediction",
    "PredictionServer",
    "PredictionService",
    "RequestCoalescer",
    "ServerConfig",
    "ServingClient",
    "ServingError",
]
