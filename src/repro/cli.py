"""Command-line interface for the reproduction.

Subcommands::

    python -m repro.cli flow DESIGN NODE       # run the PnR flow, report
    python -m repro.cli sta DESIGN NODE        # worst-path timing report
    python -m repro.cli export DESIGN NODE DIR # write .v/.def/.spef/.lib
    python -m repro.cli report DESIGN NODE     # design/timing/power report
    python -m repro.cli libs                   # library summaries
    python -m repro.cli train [--steps N]      # train ours, report test R^2
    python -m repro.cli ladder [--nodes ...]   # K-node transfer study
    python -m repro.cli predict DESIGN...      # serve predictions (fast path)
    python -m repro.cli serve [--port N]       # resident prediction server
    python -m repro.cli report-run RUNDIR      # render a run's telemetry
    python -m repro.cli experiments [NAMES]    # regenerate tables/figures
    python -m repro.cli check [PATHS]          # static lint + autograd audit
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np


def _positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 (e.g. --workers)."""
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def _libraries():
    from .experiments import make_libraries

    return make_libraries()


def _parse_node_token(token: str) -> float:
    """CLI node token -> feature size in nm.

    Accepts anchor names (``sky130``, ``asap7``), labels (``130nm``,
    ``45p2nm``) and bare sizes (``130``, ``45.2``).
    """
    aliases = {"sky130": 130.0, "asap7": 7.0}
    text = token.strip().lower()
    if text in aliases:
        return aliases[text]
    if text.endswith("nm"):
        text = text[:-2]
    try:
        return float(text.replace("p", "."))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"not a technology node: {token!r} (use sky130/asap7, a "
            "label like 45nm, or a size in nm)") from None


def cmd_libs(args) -> int:
    for node, lib in _libraries().items():
        stats = lib.stats()
        print(f"{node}: {lib.name} — {int(stats['num_cells'])} cells, "
              f"{int(stats['num_functions'])} functions, "
              f"mean input cap {stats['mean_input_cap'] * 1e3:.3f} fF, "
              f"clock {lib.default_clock_period} ns")
    return 0


def cmd_flow(args) -> int:
    from .features import GateVocabulary
    from .flow import run_flow

    libraries = _libraries()
    vocab = GateVocabulary(list(libraries.values()))
    data = run_flow(args.design, args.node, libraries, vocab=vocab)
    print(f"{data.name}@{data.node}: {data.stats()}")
    print(f"clock period {data.clock_period:.4f} ns")
    for key, value in data.flow_info.items():
        print(f"  {key}: {value:.4f}")
    print(f"signoff AT: mean {data.labels.mean():.4f} ns, "
          f"max {data.labels.max():.4f} ns over "
          f"{data.num_endpoints} endpoints")
    return 0


def cmd_sta(args) -> int:
    from .netlist import make_design, map_design
    from .place import place_design
    from .route import PreRouteEstimator, route_design
    from .sta import report_worst_paths, run_sta

    library = _libraries()[args.node]
    netlist = map_design(make_design(args.design), library)
    floorplan = place_design(netlist, seed=args.seed)
    if args.routed:
        parasitics = route_design(netlist, floorplan, seed=args.seed)
    else:
        parasitics = PreRouteEstimator(netlist)
    report = run_sta(netlist, parasitics)
    print(f"WNS {report.wns:+.4f} ns   TNS {report.tns:+.4f} ns   "
          f"clock {report.clock.period:.4f} ns\n")
    print(report_worst_paths(netlist, parasitics, n=args.paths,
                             report=report))
    return 0


def cmd_export(args) -> int:
    from .io import write_def, write_liberty, write_spef, write_verilog
    from .netlist import make_design, map_design
    from .place import place_design
    from .route import GlobalRouter

    library = _libraries()[args.node]
    netlist = map_design(make_design(args.design), library)
    floorplan = place_design(netlist, seed=args.seed)
    router = GlobalRouter(netlist, floorplan, seed=args.seed)
    router.run()

    out = Path(args.directory)
    out.mkdir(parents=True, exist_ok=True)
    (out / f"{args.design}.v").write_text(write_verilog(netlist))
    (out / f"{args.design}.def").write_text(write_def(netlist, floorplan))
    (out / f"{args.design}.spef").write_text(write_spef(netlist, router))
    (out / f"{library.name}.lib").write_text(write_liberty(library))
    print(f"wrote {args.design}.v/.def/.spef and {library.name}.lib "
          f"to {out}")
    return 0


def cmd_report(args) -> int:
    from .analysis import estimate_power, full_report
    from .netlist import make_design, map_design
    from .place import place_design
    from .route import GlobalRouter, PreRouteEstimator, RoutedParasitics
    from .sta import MonteCarloSTA, format_statistical_report, run_sta

    library = _libraries()[args.node]
    netlist = map_design(make_design(args.design), library)
    floorplan = place_design(netlist, seed=args.seed)
    router = GlobalRouter(netlist, floorplan, seed=args.seed)
    router.run()
    parasitics = RoutedParasitics(router)
    report = run_sta(netlist, parasitics)
    print(full_report(netlist, floorplan, report, router))
    print()
    print(estimate_power(netlist, parasitics,
                         clock_period=report.clock.period).format())
    if args.mc_samples:
        print()
        stat = MonteCarloSTA(netlist, parasitics,
                             seed=args.seed).run_samples(args.mc_samples)
        print(format_statistical_report(stat, report.clock.period))
    return 0


def _install_stop_handlers(trainer, state):
    """Wire SIGINT/SIGTERM to a graceful stop at the next step boundary.

    The first signal asks the trainer to finish the in-flight step,
    write a final checkpoint and return; a second signal force-quits.
    Returns the displaced handlers so the caller can restore them.
    """
    import signal

    def handler(signum, frame):
        if state.get("signum") is not None:
            raise KeyboardInterrupt(
                f"second signal {signum}; aborting without checkpoint")
        state["signum"] = int(signum)
        trainer.request_stop()
        print(f"\nsignal {signum}: finishing the current step, writing "
              "a checkpoint, then exiting (signal again to force-quit)")

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    return previous


def cmd_train(args) -> int:
    import signal

    from .experiments import build_dataset, build_ladder_dataset
    from .experiments.datasets import DATASET_SCALE
    from .model import TimingPredictor
    from .obs import RunLogger, default_run_dir
    from .techlib import NodeLadder, label_to_nm, node_label
    from .train import (
        CHECKPOINT_NAME,
        OursTrainer,
        ParallelTrainer,
        TrainConfig,
        load_checkpoint,
        r2_score,
        resolve_worker_count,
        split_by_node,
    )
    from .util import get_timings, reset_timings, timing_report

    # The timing registry feeds the run summary, so scope it to this
    # run: dataset-build phases (including worker-process phases merged
    # back by build_designs) and training phases both land in it.
    reset_timings()
    checkpoint = None
    if args.resume:
        # Resume: the checkpoint's TrainConfig is the source of truth —
        # a resumed run must re-execute the original one bit-for-bit,
        # so --steps/--seed/... on the resume invocation are ignored.
        run_dir = Path(args.resume)
        checkpoint = load_checkpoint(run_dir / CHECKPOINT_NAME)
        config = TrainConfig(**checkpoint.config)
        # A ladder run's node chain lives in the config; rebuild the
        # same libraries from the labels.
        ladder = NodeLadder([label_to_nm(lbl) for lbl in config.nodes]) \
            if config.nodes is not None else None
        print(f"resuming {run_dir} from checkpoint at step "
              f"{checkpoint.step}/{config.steps}")
    else:
        run_dir = Path(args.run_dir) if args.run_dir \
            else default_run_dir(tag=args.tag)
        ladder = None
        nodes = None
        target_node = "7nm"
        if args.nodes:
            ladder = NodeLadder([_parse_node_token(t)
                                 for t in args.nodes])
            nodes = ladder.node_labels
            target_node = ladder.target_label if args.target_node is None \
                else node_label(_parse_node_token(args.target_node))
        elif args.target_node is not None:
            raise SystemExit("--target-node requires --nodes")
        config = TrainConfig(steps=args.steps, seed=args.seed,
                             fused=not args.no_fused,
                             compile=not args.no_compile,
                             dtype=args.dtype,
                             checkpoint_every=args.checkpoint_every,
                             nodes=nodes, target_node=target_node)
    with RunLogger(run_dir, resume=checkpoint is not None,
                   resume_step=None if checkpoint is None
                   else checkpoint.step) as logger:
        if ladder is not None:
            dataset = build_ladder_dataset(
                ladder, target_label=config.target_node,
                workers=args.build_workers,
                use_cache=not args.no_cache, cache_dir=args.cache_dir)
        else:
            dataset = build_dataset(workers=args.build_workers,
                                    use_cache=not args.no_cache,
                                    cache_dir=args.cache_dir)
        # Training parallelism is an execution choice, not part of the
        # training config: any --workers value resumes any checkpoint
        # (the parent owns every RNG draw and the optimizer state), so
        # --workers stays live on --resume invocations too.  Bit-exact
        # continuation of a parallel run needs the original count.
        workers = args.workers
        if workers is not None:
            source, target = split_by_node(dataset.train,
                                           target_node=config.target_node)
            workers, notes = resolve_worker_count(
                workers, n_source=len(source), n_target=len(target))
            for note in notes:
                print(f"warning: {note}")
        if checkpoint is None:
            extra = {"dataset": {"scale": DATASET_SCALE["scale"],
                                 "resolution":
                                     DATASET_SCALE["resolution"],
                                 "workers": args.build_workers,
                                 "use_cache": not args.no_cache},
                     "parallel": {"workers": workers}}
            if ladder is not None:
                extra["ladder"] = {"spec": ladder.spec,
                                   "target_node": config.target_node,
                                   "nodes": ladder.describe()}
            logger.log_manifest(
                config=config,
                seeds={"model": args.seed, "train": config.seed,
                       "data": DATASET_SCALE["seed"]},
                extra=extra,
            )
        else:
            logger.annotate_manifest(interrupted=False,
                                     resumed_from_step=checkpoint.step)
        model_seed = config.seed if checkpoint is not None else args.seed
        model = TimingPredictor(dataset.in_features, seed=model_seed)
        if workers is not None:
            trainer = ParallelTrainer(model, dataset.train, config,
                                      logger=logger, workers=workers)
        else:
            trainer = OursTrainer(model, dataset.train, config,
                                  logger=logger)
        trainer.profile_ops = bool(args.profile)
        if checkpoint is not None:
            trainer.load_checkpoint(run_dir / CHECKPOINT_NAME)
        else:
            suffix = "" if workers is None \
                else f" across {workers} worker process(es)"
            print(f"training ours for {config.steps} steps{suffix} ...")

        sig_state: dict = {}
        previous_handlers = _install_stop_handlers(trainer, sig_state)
        try:
            history = trainer.fit()
        finally:
            for sig, old in previous_handlers.items():
                signal.signal(sig, old)

        step_seconds = np.array([h["step_seconds"] for h in history])
        if trainer.interrupted:
            # Graceful shutdown: the final checkpoint is already on
            # disk (fit wrote it before returning); leave a schema-valid
            # summary and an interrupted marker, then exit nonzero so
            # schedulers see the run as incomplete.
            done = trainer._start_step
            logger.log_summary(
                steps=len(history),
                total_seconds=float(step_seconds.sum()),
                interrupted=True,
                timings=get_timings(),
            )
            logger.annotate_manifest(interrupted=True,
                                     interrupted_at_step=done)
            print(f"interrupted after step {done}/{config.steps}; "
                  f"checkpoint + telemetry in {run_dir}")
            print(f"continue with `repro train --resume {run_dir}`")
            return 128 + sig_state["signum"] if "signum" in sig_state \
                else 1
        print(f"  {len(history)} steps, "
              f"{step_seconds.mean():.3f} s/step "
              f"({step_seconds.sum():.1f} s total)")
        per_design = {}
        scores = []
        for design in dataset.test:
            r2 = r2_score(design.labels, model.predict(design))
            scores.append(r2)
            per_design[design.name] = {"r2": float(r2)}
            print(f"  {design.name:>10}: R^2 = {r2:.3f}")
        print(f"  {'average':>10}: R^2 = {np.mean(scores):.3f}")
        summary_fields = {}
        if ladder is not None:
            per_node = {}
            for record in ladder.describe():
                label = record["label"]
                per_node[label] = {
                    **record,
                    "role": "target" if label == config.target_node
                    else "source",
                    "num_train_designs": sum(
                        1 for d in dataset.train if d.node == label),
                }
            per_node[config.target_node]["test_mean_r2"] = \
                float(np.mean(scores))
            logger.annotate_manifest(per_node=per_node)
            summary_fields["per_node"] = per_node
        logger.log_summary(
            steps=len(history),
            total_seconds=float(step_seconds.sum()),
            mean_r2=float(np.mean(scores)),
            per_design=per_design,
            final_weights=trainer.final_weights_source,
            timings=get_timings(),
            **summary_fields,
        )
        if checkpoint is not None:
            logger.annotate_manifest(interrupted=False)
    if args.save_model:
        from .infer import save_predictor

        save_predictor(model, args.save_model)
        print(f"serving checkpoint written to {args.save_model} "
              f"(use with `repro predict --model`)")
    print(f"run telemetry written to {run_dir} "
          f"(render with `repro report-run {run_dir}`)")
    if args.profile:
        print("\nphase timings:")
        print(timing_report())
    return 0


def cmd_predict(args) -> int:
    from .experiments import build_dataset
    from .infer import InferenceEngine, load_predictor
    from .train import r2_score
    from .util import reset_timings, timing_report

    reset_timings()
    dataset = build_dataset(workers=args.workers,
                            use_cache=not args.no_flow_cache,
                            cache_dir=args.cache_dir)
    try:
        designs = [dataset.by_name(name) for name in args.designs]
    except KeyError as exc:
        known = ", ".join(sorted(d.name
                                 for d in dataset.train + dataset.test))
        print(f"unknown design {exc.args[0]!r}; choose from: {known}")
        return 1

    if args.model:
        model = load_predictor(args.model)
        if model.init_config["in_features"] != dataset.in_features:
            print(f"checkpoint expects {model.init_config['in_features']}"
                  f" input features, dataset has {dataset.in_features}")
            return 1
    else:
        from .model import TimingPredictor
        from .train import OursTrainer, TrainConfig

        print(f"no --model given; training for {args.train_steps} "
              f"steps ...")
        model = TimingPredictor(dataset.in_features, seed=args.seed)
        trainer = OursTrainer(
            model, dataset.train,
            TrainConfig(steps=args.train_steps, seed=args.seed))
        trainer.fit()

    mc_samples = args.mc_samples
    if args.uncertainty and mc_samples <= 0:
        mc_samples = 16
    engine = InferenceEngine(model, use_cache=not args.no_cache)
    for _ in range(max(1, args.repeat)):
        results = engine.predict_many(designs, mc_samples=mc_samples,
                                      with_uncertainty=args.uncertainty,
                                      seed=args.seed)
    for design in designs:
        pred = results[design.name]
        r2 = r2_score(design.labels, pred.mean)
        line = (f"{design.name:>12}@{design.node}: "
                f"{pred.num_endpoints} endpoints, "
                f"mean AT {pred.mean.mean():.4f} ns, "
                f"max AT {pred.mean.max():.4f} ns, R^2 {r2:.3f}")
        if pred.std is not None:
            line += f", mean std {pred.std.mean():.4f} ns"
        print(line)
    stats = engine.cache_stats()
    print(f"feature cache: {stats['hits']} hits, {stats['misses']} "
          f"misses, {stats['entries']} entries")
    if args.profile:
        print("\nphase timings:")
        print(timing_report())
    return 0


def cmd_serve(args) -> int:
    from .serve.__main__ import run_from_args

    return run_from_args(args)


def cmd_report_run(args) -> int:
    from .obs import render_run

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"not a run directory: {run_dir}")
        return 1
    print(render_run(run_dir, diff_against=args.diff))
    return 0


def cmd_check(args) -> int:
    from .check.cli import run_check

    return run_check(paths=args.paths, fmt=args.format,
                     do_lint=not args.no_lint,
                     do_gradcheck=not args.no_gradcheck,
                     do_dataflow=args.dataflow,
                     diff_baseline=args.diff_baseline,
                     write_baseline_file=args.write_baseline,
                     baseline=args.baseline,
                     list_rules=args.list_rules)


def cmd_experiments(args) -> int:
    from .experiments.runner import run_all

    run_all(args.names or None, seed=args.seed, steps=args.steps,
            workers=args.workers, use_cache=not args.no_cache)
    return 0


def cmd_ladder(args) -> int:
    from .experiments import format_ladder_study, run_ladder_study
    from .obs import RunLogger, default_run_dir
    from .techlib import NodeLadder
    from .util import reset_timings

    reset_timings()
    ladder = NodeLadder([_parse_node_token(t) for t in args.nodes],
                        perturb_gate_mix=args.perturb_gate_mix,
                        seed=args.lib_seed)
    run_dir = Path(args.run_dir) if args.run_dir \
        else default_run_dir(tag="ladder")
    print(f"ladder study over {ladder!r} "
          f"(target {ladder.target_label}) ...")
    with RunLogger(run_dir) as logger:
        logger.log_manifest(
            config=None, seeds={"train": args.seed},
            extra={"ladder": {"spec": ladder.spec,
                              "nodes": ladder.describe()}})
        results = run_ladder_study(
            ladder=ladder, steps=args.steps, seed=args.seed,
            resolution=args.resolution, workers=args.build_workers,
            use_cache=not args.no_cache, cache_dir=args.cache_dir,
            include_loo=not args.no_loo,
            include_reverse=args.reverse, logger=logger)
    print(format_ladder_study(results))
    print(f"run telemetry written to {run_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("libs", help="summarise the technology libraries")

    p = sub.add_parser("flow", help="run one design through the flow")
    p.add_argument("design")
    p.add_argument("node", choices=["130nm", "7nm"])

    p = sub.add_parser("sta", help="timing report for one design")
    p.add_argument("design")
    p.add_argument("node", choices=["130nm", "7nm"])
    p.add_argument("--routed", action="store_true",
                   help="use routed parasitics instead of estimates")
    p.add_argument("--paths", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("export", help="write .v/.def/.spef/.lib files")
    p.add_argument("design")
    p.add_argument("node", choices=["130nm", "7nm"])
    p.add_argument("directory")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("report",
                       help="full design/timing/power report")
    p.add_argument("design")
    p.add_argument("node", choices=["130nm", "7nm"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mc-samples", type=int, default=0,
                   help="also run statistical STA with N samples")

    p = sub.add_parser("train", help="train the paper's model")
    p.add_argument("--steps", type=int, default=150)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nodes", nargs="+", default=None, metavar="NODE",
                   help="technology nodes to train across: anchors by "
                        "name or size (sky130/130/130nm, asap7/7/7nm) "
                        "plus interpolated sizes strictly between 7 and "
                        "130, e.g. `--nodes 130 45 7`.  Default: the "
                        "paper's two-node setting; `--nodes sky130 "
                        "asap7` is bit-identical to it")
    p.add_argument("--target-node", default=None, metavar="NODE",
                   help="transfer target node (default: the smallest "
                        "of --nodes); requires --nodes")
    p.add_argument("--workers", type=_positive_int, default=None,
                   metavar="N",
                   help="data-parallel training worker processes: the "
                        "step's design union is sharded across N "
                        "forked workers and the parent averages their "
                        "gradients (default: single-process step; "
                        "--workers 1 is bit-identical to it; clamped "
                        "to the CPU count and to the usable shard "
                        "count with a warning)")
    p.add_argument("--build-workers", type=_positive_int, default=1,
                   metavar="N",
                   help="processes for cold dataset builds")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk design cache")
    p.add_argument("--cache-dir", default=None,
                   help="design cache root (default $REPRO_CACHE_DIR)")
    p.add_argument("--no-fused", action="store_true",
                   help="use the legacy per-design training loop")
    p.add_argument("--no-compile", action="store_true",
                   help="run the fused step eagerly instead of the "
                        "trace-once/replay compiled schedule "
                        "(bit-identical results, slower)")
    p.add_argument("--dtype", choices=["float64", "float32"],
                   default="float64",
                   help="numeric precision of the compiled step "
                        "(float32 is faster but not bit-exact; "
                        "requires compilation)")
    p.add_argument("--profile", action="store_true",
                   help="print per-phase and per-kernel timing totals "
                        "after training")
    p.add_argument("--run-dir", default=None,
                   help="telemetry directory for this run "
                        "(default runs/<timestamp>-<tag>/)")
    p.add_argument("--tag", default="train",
                   help="suffix for the default run directory name")
    p.add_argument("--save-model", default=None, metavar="PATH",
                   help="write a serving checkpoint (weights + node "
                        "priors) for `repro predict --model`")
    p.add_argument("--checkpoint-every", type=int, default=25,
                   metavar="N",
                   help="write a crash-resume checkpoint every N steps "
                        "(0 disables periodic checkpoints; a graceful "
                        "SIGINT/SIGTERM stop always writes one)")
    p.add_argument("--resume", default=None, metavar="RUNDIR",
                   help="continue an interrupted run from "
                        "RUNDIR/checkpoint.npz (reuses the original "
                        "TrainConfig; ignores --steps/--seed/...)")

    p = sub.add_parser("predict",
                       help="serve predictions via the fast "
                            "inference engine")
    p.add_argument("designs", nargs="+", metavar="DESIGN",
                   help="design names from the experiment dataset")
    p.add_argument("--model", default=None, metavar="PATH",
                   help="serving checkpoint from `repro train "
                        "--save-model` (default: train from scratch)")
    p.add_argument("--train-steps", type=int, default=150,
                   help="training steps when no --model is given")
    p.add_argument("--uncertainty", action="store_true",
                   help="also report per-endpoint predictive std")
    p.add_argument("--mc-samples", type=int, default=0,
                   help="Monte-Carlo prior samples (0 = prior mean)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the per-design feature cache")
    p.add_argument("--repeat", type=int, default=1,
                   help="repeat the prediction pass (cache warm-up "
                        "demo / profiling)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="processes for cold dataset builds")
    p.add_argument("--no-flow-cache", action="store_true",
                   help="bypass the on-disk design cache")
    p.add_argument("--cache-dir", default=None,
                   help="design cache root (default $REPRO_CACHE_DIR)")
    p.add_argument("--profile", action="store_true",
                   help="print per-phase timing totals")

    p = sub.add_parser("serve",
                       help="resident prediction server with request "
                            "coalescing and model hot-reload")
    from .serve.__main__ import add_serve_arguments

    add_serve_arguments(p)

    p = sub.add_parser("report-run",
                       help="render a training run's telemetry")
    p.add_argument("run_dir", help="run directory written by `train`")
    p.add_argument("--diff", default=None, metavar="OTHER_RUN",
                   help="also diff the manifest against another run dir")

    p = sub.add_parser("check",
                       help="repo-specific static lint + autograd audit")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint "
                        "(default: the repro package source)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--no-lint", action="store_true",
                   help="skip the static linter")
    p.add_argument("--no-gradcheck", action="store_true",
                   help="skip the autograd contract audit")
    p.add_argument("--dataflow", action="store_true",
                   help="run the whole-program analyses and the "
                        "tensor-contract checker over the package")
    p.add_argument("--diff-baseline", action="store_true",
                   help="fail only on findings not in the baseline")
    p.add_argument("--write-baseline", action="store_true",
                   help="record the current findings as the baseline")
    p.add_argument("--baseline", type=Path, default=None,
                   help="baseline file (default: ./check_baseline.json)")
    p.add_argument("--list-rules", action="store_true",
                   help="print every lint rule with its description")

    p = sub.add_parser("experiments",
                       help="regenerate the paper's tables/figures")
    p.add_argument("names", nargs="*")
    p.add_argument("--steps", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="processes for cold dataset builds")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk design cache")

    p = sub.add_parser("ladder",
                       help="K-node transfer study over a synthetic "
                            "node ladder")
    p.add_argument("--nodes", nargs="+", default=["130", "45", "7"],
                   metavar="NODE",
                   help="chain of nodes, anchors by name/size plus "
                        "interpolated sizes (default: 130 45 7)")
    p.add_argument("--steps", type=int, default=None,
                   help="training steps per run (default: the paper "
                        "config's)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--resolution", type=int, default=None,
                   help="layout image resolution override")
    p.add_argument("--perturb-gate-mix", action="store_true",
                   help="give interpolated nodes a seeded, genuinely "
                        "different gate mix")
    p.add_argument("--lib-seed", type=int, default=0,
                   help="seed of the gate-mix perturbation")
    p.add_argument("--no-loo", action="store_true",
                   help="skip the leave-one-node-out retrains")
    p.add_argument("--reverse", action="store_true",
                   help="also run reverse transfer (target at the "
                        "largest node)")
    p.add_argument("--build-workers", type=_positive_int, default=1,
                   metavar="N",
                   help="processes for cold dataset builds")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk design cache")
    p.add_argument("--cache-dir", default=None,
                   help="design cache root (default $REPRO_CACHE_DIR)")
    p.add_argument("--run-dir", default=None,
                   help="telemetry directory for this study "
                        "(default runs/<timestamp>-ladder/)")
    return parser


COMMANDS = {
    "check": cmd_check,
    "libs": cmd_libs,
    "report": cmd_report,
    "report-run": cmd_report_run,
    "flow": cmd_flow,
    "sta": cmd_sta,
    "export": cmd_export,
    "train": cmd_train,
    "ladder": cmd_ladder,
    "predict": cmd_predict,
    "serve": cmd_serve,
    "experiments": cmd_experiments,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
