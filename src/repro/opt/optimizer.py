"""The timing optimization pass (Innovus optDesign stand-in).

Alternates pre-route STA with gate sizing and buffer insertion until the
worst slack stops improving or the round budget is exhausted, then runs
one area-recovery downsizing sweep.  This is the *netlist restructuring*
step of the paper's flow: it runs after the predictor's input snapshot is
taken and before routing, so the signoff netlist the labels come from is
not the netlist the model sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netlist import Netlist
from ..place import Floorplan
from ..route.estimator import PreRouteEstimator
from ..sta import ClockConstraint, run_sta
from .buffering import buffer_heavy_nets
from .sizing import downsize_non_critical, upsize_critical


@dataclass
class OptimizationResult:
    """What the optimization pass did and what it achieved."""

    rounds: int
    cells_upsized: int
    cells_downsized: int
    buffers_inserted: int
    wns_before: float
    wns_after: float

    @property
    def restructured(self) -> bool:
        """True if the netlist graph changed (not just cell sizes)."""
        return self.buffers_inserted > 0


class TimingOptimizer:
    """Drives sizing + buffering rounds against pre-route STA.

    Parameters
    ----------
    netlist:
        Placed design; modified in place.
    floorplan:
        Geometry for buffer placement and length limits.
    clock:
        Constraint to optimize against (derived if omitted).
    max_rounds:
        Upper bound on optimize/STA iterations.
    """

    def __init__(self, netlist: Netlist, floorplan: Floorplan,
                 clock: Optional[ClockConstraint] = None,
                 max_rounds: int = 4) -> None:
        self.netlist = netlist
        self.floorplan = floorplan
        self.clock = clock
        self.max_rounds = max_rounds

    def run(self) -> OptimizationResult:
        upsized = downsized = buffered = 0
        report = run_sta(self.netlist, PreRouteEstimator(self.netlist),
                         self.clock)
        wns_before = report.wns
        wns = wns_before
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            moved = 0
            moved += upsize_critical(self.netlist, report, max_changes=60)
            upsized += moved
            bufs = buffer_heavy_nets(self.netlist, self.floorplan,
                                     max_changes=20)
            buffered += bufs
            moved += bufs
            if moved == 0:
                break
            # Fresh estimator: restructuring invalidated cached lengths.
            report = run_sta(self.netlist, PreRouteEstimator(self.netlist),
                             self.clock)
            if report.wns <= wns + 1e-9 and rounds > 1:
                wns = report.wns
                break
            wns = report.wns
        # Area recovery on comfortably-met paths.
        threshold = 0.3 * report.clock.period
        downsized = downsize_non_critical(self.netlist, report, threshold,
                                          max_changes=40)
        final = run_sta(self.netlist, PreRouteEstimator(self.netlist),
                        self.clock)
        self.netlist.validate()
        return OptimizationResult(
            rounds=rounds,
            cells_upsized=upsized,
            cells_downsized=downsized,
            buffers_inserted=buffered,
            wns_before=wns_before,
            wns_after=final.wns,
        )


def optimize_design(netlist: Netlist, floorplan: Floorplan,
                    clock: Optional[ClockConstraint] = None,
                    max_rounds: int = 4) -> OptimizationResult:
    """Convenience wrapper around :class:`TimingOptimizer`."""
    return TimingOptimizer(netlist, floorplan, clock, max_rounds).run()
