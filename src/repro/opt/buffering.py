"""Buffer insertion on long and high-fanout nets.

Splitting a heavy net behind a buffer is the classic interconnect fix,
and the most visible form of netlist *restructuring*: the pre-route
snapshot the predictor sees has one net where signoff has two plus a new
cell.  Timing endpoints are untouched, which is the property the paper's
endpoint-level formulation relies on.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..netlist import CellInst, Net, Netlist, Pin
from ..place import Floorplan


def insert_buffer(netlist: Netlist, net: Net, sinks: List[Pin],
                  floorplan: Optional[Floorplan] = None,
                  drive: float = 2.0) -> CellInst:
    """Drive ``sinks`` of ``net`` through a new buffer.

    The buffer is placed at the sink centroid (legalised to the nearest
    row if a floorplan is given), and a new net carries its output.
    """
    if not sinks:
        raise ValueError("no sinks to buffer")
    for sink in sinks:
        if sink not in net.sinks:
            raise ValueError(f"{sink.full_name} is not a sink of {net.name}")

    library = netlist.library
    buf = netlist.add_cell(library.pick("BUF", drive))
    buffered = netlist.add_net()
    for sink in sinks:
        netlist.disconnect(sink)
        netlist.connect(buffered, sink)
    netlist.connect(net, buf.pins["A"])
    netlist.connect(buffered, buf.output_pin)

    # Physical: centroid placement, snapped onto a row.
    cx = float(np.mean([p.x for p in sinks]))
    cy = float(np.mean([p.y for p in sinks]))
    if floorplan is not None:
        cx, cy = floorplan.clamp(cx, cy)
        row = int(cy / floorplan.row_height)
        cy = floorplan.row_y(min(row, floorplan.num_rows - 1))
    buf.x, buf.y = cx, cy
    for k, pin in enumerate(buf.pins.values()):
        pin.x, pin.y = cx + 0.01 * k, cy
    return buf


def buffer_heavy_nets(netlist: Netlist, floorplan: Optional[Floorplan] = None,
                      max_fanout: int = 6, max_length: float = None,
                      max_changes: int = 30) -> int:
    """Buffer nets that exceed fanout or length limits.

    High-fanout nets have their farthest half of sinks moved behind a
    buffer; long two-pin nets get a repeater at the midpoint.  Returns
    the number of buffers inserted.
    """
    from ..route.estimator import hpwl, manhattan

    if max_length is None:
        # Default: an eighth of the die half-perimeter, or a large value.
        if floorplan is not None:
            max_length = 0.25 * (floorplan.width + floorplan.height)
        else:
            max_length = float("inf")

    changes = 0
    for net in list(netlist.nets.values()):
        if changes >= max_changes:
            break
        if net.is_clock or net.driver is None:
            continue
        driver = net.driver
        if net.fanout > max_fanout:
            # Move the farthest half of the sinks behind a buffer.
            ranked = sorted(net.sinks,
                            key=lambda s: -manhattan(driver, s))
            far = ranked[: len(ranked) // 2]
            if far:
                insert_buffer(netlist, net, far, floorplan)
                changes += 1
        elif net.fanout >= 1 and hpwl(net) > max_length:
            insert_buffer(netlist, net, list(net.sinks), floorplan)
            changes += 1
    return changes
