"""Slack-driven gate sizing.

Cells whose output pins sit on negative-slack paths are swapped for
stronger drives of the same function.  This is one of the two netlist
restructuring moves (with buffering) that make the signoff netlist differ
from the pre-route snapshot the timing predictor sees.
"""

from __future__ import annotations

from typing import List, Tuple

from ..netlist import CellInst, Netlist
from ..sta import TimingReport


def critical_cells(netlist: Netlist, report: TimingReport,
                   slack_margin: float = 0.0) -> List[Tuple[float, CellInst]]:
    """Cells whose output slack is below ``slack_margin``, worst first."""
    ranked = []
    for cell in netlist.combinational_cells:
        out = cell.output_pin
        slack = report.pin_slack.get(out.index)
        if slack is not None and slack < slack_margin:
            ranked.append((slack, cell))
    ranked.sort(key=lambda pair: pair[0])
    return ranked


def upsize_critical(netlist: Netlist, report: TimingReport,
                    max_changes: int = 50,
                    slack_margin: float = 0.0) -> int:
    """Upsize up to ``max_changes`` critical cells in place.

    Returns the number of cells resized.  Cells already at the top drive
    are skipped.
    """
    library = netlist.library
    changes = 0
    for _, cell in critical_cells(netlist, report, slack_margin):
        if changes >= max_changes:
            break
        stronger = library.upsize(cell.ref)
        if stronger is None:
            continue
        cell.ref = stronger
        changes += 1
    return changes


def downsize_non_critical(netlist: Netlist, report: TimingReport,
                          slack_threshold: float, max_changes: int = 50) -> int:
    """Recover area: weaken cells with slack above ``slack_threshold``.

    Mirrors the area-recovery step real optimizers run after timing is
    met.  Returns the number of cells resized.
    """
    library = netlist.library
    changes = 0
    for cell in netlist.combinational_cells:
        if changes >= max_changes:
            break
        slack = report.pin_slack.get(cell.output_pin.index)
        if slack is None or slack < slack_threshold:
            continue
        weaker = library.downsize(cell.ref)
        if weaker is not None:
            cell.ref = weaker
            changes += 1
    return changes
