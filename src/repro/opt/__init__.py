"""Timing optimization substrate: sizing, buffering, the optimizer loop."""

from .buffering import buffer_heavy_nets, insert_buffer
from .optimizer import OptimizationResult, TimingOptimizer, optimize_design
from .sizing import critical_cells, downsize_non_critical, upsize_critical

__all__ = [
    "OptimizationResult",
    "TimingOptimizer",
    "buffer_heavy_nets",
    "critical_cells",
    "downsize_non_critical",
    "insert_buffer",
    "optimize_design",
    "upsize_critical",
]
