"""Feature alignment losses (Section 3.3).

- :func:`node_contrastive_loss` — Equations (3)/(4): pull node-dependent
  features from the same technology node together, push the two nodes
  apart.  We implement the standard supervised-contrastive form (with the
  log inside the positive sum, which Equation (3) elides — without the
  log the quantity is not a proper contrastive objective).
- :func:`cmd_loss` — Equation (5): Central Moment Discrepancy between the
  design-dependent feature distributions of the two nodes, with moments
  up to order 5 on the tanh-bounded interval (-1, 1).
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, concatenate
from ..nn import functional as F

_EPS = 1e-8


def _l2_normalize(u: Tensor) -> Tensor:
    norms = ((u * u).sum(axis=1, keepdims=True) + _EPS) ** 0.5
    return u / norms


def node_contrastive_loss(u_source: Tensor, u_target: Tensor,
                          temperature: float = 0.5,
                          normalize: bool = True) -> Tensor:
    """Node-based supervised contrastive loss over ``u_n`` features.

    Parameters
    ----------
    u_source / u_target:
        Node-dependent features from the source (130nm) and target (7nm)
        paths in the batch, shapes ``(Ks, d)`` / ``(Kt, d)``.
    temperature:
        Softmax temperature tau of Equation (3).
    normalize:
        L2-normalise features first (standard practice; keeps the dot
        products in a stable range).

    Returns
    -------
    Tensor
        Scalar loss: mean anchor loss of the source set plus mean anchor
        loss of the target set (Equation 4's per-set normalisation).
    """
    ks, kt = len(u_source), len(u_target)
    if ks < 2 or kt < 2:
        raise ValueError("need at least two paths per node for contrast")
    features = concatenate([u_source, u_target], axis=0)
    if normalize:
        features = _l2_normalize(features)
    k = ks + kt

    logits = (features @ features.T) * (1.0 / temperature)
    # Exclude self-similarity from every denominator.
    self_mask = np.eye(k) * 1e9
    logits = logits - Tensor(self_mask)
    log_prob = F.log_softmax(logits, axis=1)

    positives = np.zeros((k, k))
    positives[:ks, :ks] = 1.0
    positives[ks:, ks:] = 1.0
    np.fill_diagonal(positives, 0.0)
    pos_counts = positives.sum(axis=1, keepdims=True)

    anchor_loss = -(log_prob * Tensor(positives)).sum(axis=1, keepdims=True) \
        / Tensor(pos_counts)
    source_mean = anchor_loss[:ks].mean()
    target_mean = anchor_loss[ks:].mean()
    return source_mean + target_mean


def cmd_loss(u_source: Tensor, u_target: Tensor, max_order: int = 5,
             bound: float = 1.0) -> Tensor:
    """Central Moment Discrepancy between two feature sets.

    Parameters
    ----------
    u_source / u_target:
        Design-dependent features of the two nodes, bounded in
        ``(-bound, bound)`` by the disentangler's tanh.
    max_order:
        Highest central moment matched (paper uses 5).
    bound:
        Half-width of the support interval ``[a, b] = [-bound, bound]``.

    Returns
    -------
    Tensor
        Scalar CMD value (Equation 5).
    """
    if max_order < 1:
        raise ValueError("max_order must be >= 1")
    interval = 2.0 * bound  # |b - a|

    mean_s = u_source.mean(axis=0)
    mean_t = u_target.mean(axis=0)
    diff = mean_s - mean_t
    total = ((diff * diff).sum() + _EPS) ** 0.5 * (1.0 / interval)

    centered_s = u_source - mean_s
    centered_t = u_target - mean_t
    for order in range(2, max_order + 1):
        m_s = (centered_s ** float(order)).mean(axis=0)
        m_t = (centered_t ** float(order)).mean(axis=0)
        d = m_s - m_t
        total = total + ((d * d).sum() + _EPS) ** 0.5 \
            * (1.0 / interval ** order)
    return total
