"""Feature alignment losses (Section 3.3), generalized to K nodes.

- :func:`node_contrastive_loss` — Equations (3)/(4): pull node-dependent
  features from the same technology node together, push the two nodes
  apart.  We implement the standard supervised-contrastive form (with the
  log inside the positive sum, which Equation (3) elides — without the
  log the quantity is not a proper contrastive objective).
- :func:`cmd_loss` — Equation (5): Central Moment Discrepancy between the
  design-dependent feature distributions of the two nodes, with moments
  up to order 5 on the tanh-bounded interval (-1, 1).

The ``*_multi`` variants take a *list* of per-node feature sets instead
of the paper's hard-coded (source, target) pair: the contrastive loss
uses K-way anchor sets (each node's rows are positives for each other,
every other node's rows are negatives), and the CMD either matches each
source node against the target (``"vs-target"``) or every node pair
(``"pairwise"``).  With exactly two groups both are **bit-for-bit**
identical to the pair forms — the op sequence is the same — which is
what lets the K-node trainer degrade exactly to the paper's two-node
pipeline (DESIGN.md §15).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..nn import Tensor, concatenate
from ..nn import functional as F

_EPS = 1e-8

#: Accepted ``mode`` values of :func:`cmd_loss_multi`.
CMD_MODES = ("vs-target", "pairwise")


def _l2_normalize(u: Tensor) -> Tensor:
    norms = ((u * u).sum(axis=1, keepdims=True) + _EPS) ** 0.5
    return u / norms


def node_contrastive_loss(u_source: Tensor, u_target: Tensor,
                          temperature: float = 0.5,
                          normalize: bool = True) -> Tensor:
    """Node-based supervised contrastive loss over ``u_n`` features.

    Parameters
    ----------
    u_source / u_target:
        Node-dependent features from the source (130nm) and target (7nm)
        paths in the batch, shapes ``(Ks, d)`` / ``(Kt, d)``.
    temperature:
        Softmax temperature tau of Equation (3).
    normalize:
        L2-normalise features first (standard practice; keeps the dot
        products in a stable range).

    Returns
    -------
    Tensor
        Scalar loss: mean anchor loss of the source set plus mean anchor
        loss of the target set (Equation 4's per-set normalisation).
    """
    return node_contrastive_loss_multi((u_source, u_target),
                                       temperature=temperature,
                                       normalize=normalize)


def node_contrastive_loss_multi(groups: Sequence[Tensor],
                                temperature: float = 0.5,
                                normalize: bool = True) -> Tensor:
    """K-way node contrastive loss over per-node feature sets.

    Parameters
    ----------
    groups:
        One ``(K_i, d)`` feature set per technology node (at least two
        groups, each with at least two rows).  Rows of the same group
        are mutual positives; every other group's rows are negatives.
    temperature / normalize:
        As in :func:`node_contrastive_loss`.

    Returns
    -------
    Tensor
        Scalar: the sum over groups of that group's mean anchor loss —
        Equation 4's per-set normalisation, applied per node.  With two
        groups this is bit-for-bit :func:`node_contrastive_loss`.
    """
    groups = list(groups)
    if len(groups) < 2:
        raise ValueError("need feature sets from at least two nodes")
    sizes = [len(g) for g in groups]
    if min(sizes) < 2:
        raise ValueError("need at least two paths per node for contrast")
    features = concatenate(groups, axis=0)
    if normalize:
        features = _l2_normalize(features)
    k = sum(sizes)

    logits = (features @ features.T) * (1.0 / temperature)
    # Exclude self-similarity from every denominator.
    self_mask = np.eye(k) * 1e9
    logits = logits - Tensor(self_mask)
    log_prob = F.log_softmax(logits, axis=1)

    # Block-diagonal positive mask: one block per node group.
    positives = np.zeros((k, k))
    lo = 0
    for size in sizes:
        positives[lo:lo + size, lo:lo + size] = 1.0
        lo += size
    np.fill_diagonal(positives, 0.0)
    pos_counts = positives.sum(axis=1, keepdims=True)

    anchor_loss = -(log_prob * Tensor(positives)).sum(axis=1, keepdims=True) \
        / Tensor(pos_counts)
    total = None
    lo = 0
    for size in sizes:
        group_mean = anchor_loss[lo:lo + size].mean()
        lo += size
        total = group_mean if total is None else total + group_mean
    return total


def cmd_loss(u_source: Tensor, u_target: Tensor, max_order: int = 5,
             bound: float = 1.0) -> Tensor:
    """Central Moment Discrepancy between two feature sets.

    Parameters
    ----------
    u_source / u_target:
        Design-dependent features of the two nodes, bounded in
        ``(-bound, bound)`` by the disentangler's tanh.
    max_order:
        Highest central moment matched (paper uses 5).
    bound:
        Half-width of the support interval ``[a, b] = [-bound, bound]``.

    Returns
    -------
    Tensor
        Scalar CMD value (Equation 5).
    """
    if max_order < 1:
        raise ValueError("max_order must be >= 1")
    interval = 2.0 * bound  # |b - a|

    mean_s = u_source.mean(axis=0)
    mean_t = u_target.mean(axis=0)
    diff = mean_s - mean_t
    total = ((diff * diff).sum() + _EPS) ** 0.5 * (1.0 / interval)

    centered_s = u_source - mean_s
    centered_t = u_target - mean_t
    for order in range(2, max_order + 1):
        m_s = (centered_s ** float(order)).mean(axis=0)
        m_t = (centered_t ** float(order)).mean(axis=0)
        d = m_s - m_t
        total = total + ((d * d).sum() + _EPS) ** 0.5 \
            * (1.0 / interval ** order)
    return total


def cmd_loss_multi(groups: Sequence[Tensor], max_order: int = 5,
                   bound: float = 1.0, mode: str = "vs-target",
                   target_index: int = -1) -> Tensor:
    """CMD over K per-node feature sets.

    Parameters
    ----------
    groups:
        One ``(K_i, d)`` design-dependent feature set per node.
    max_order / bound:
        As in :func:`cmd_loss`.
    mode:
        ``"vs-target"`` sums :func:`cmd_loss` between each source group
        and the target group (K-source -> 1-target transfer, the
        default); ``"pairwise"`` sums it over every unordered pair of
        groups (symmetric alignment of the whole chain).
    target_index:
        Which group is the target in ``"vs-target"`` mode (default: the
        last, matching the trainer's source-then-target ordering).

    Returns
    -------
    Tensor
        Scalar: the sum of the pair CMDs.  A single pair is returned
        as-is — no extra arithmetic — so with two groups this is
        bit-for-bit :func:`cmd_loss`.
    """
    groups = list(groups)
    if len(groups) < 2:
        raise ValueError("need feature sets from at least two nodes")
    if mode == "vs-target":
        target = groups[target_index]
        pairs = [(g, target) for i, g in enumerate(groups)
                 if i != target_index % len(groups)]
    elif mode == "pairwise":
        pairs = [(groups[i], groups[j])
                 for i in range(len(groups))
                 for j in range(i + 1, len(groups))]
    else:
        raise ValueError(
            f"mode must be one of {CMD_MODES}, got {mode!r}")
    total = None
    for a, b in pairs:
        term = cmd_loss(a, b, max_order=max_order, bound=bound)
        total = term if total is None else total + term
    return total
