"""The paper's model: extractor, disentanglement, alignment, Bayesian head."""

from .baseline import DAC23Model
from .bayesian import BayesianReadout, build_prior_feature
from .cnn import LayoutCNN, masked_path_images
from .disentangle import Disentangler
from .extractor import PathFeatureExtractor
from .gnn import TimingGNN
from .losses import (cmd_loss, cmd_loss_multi, node_contrastive_loss,
                     node_contrastive_loss_multi)
from .predictor import TimingPredictor

__all__ = [
    "BayesianReadout",
    "DAC23Model",
    "Disentangler",
    "LayoutCNN",
    "PathFeatureExtractor",
    "TimingGNN",
    "TimingPredictor",
    "build_prior_feature",
    "cmd_loss",
    "cmd_loss_multi",
    "masked_path_images",
    "node_contrastive_loss",
    "node_contrastive_loss_multi",
]
