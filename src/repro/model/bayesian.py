"""Bayesian timing prediction head (Section 3.4).

The readout weight ``W`` is not a fixed parameter but a diagonal Gaussian
whose mean and (log-)variance are *amortised* by two small MLPs:

- variational posterior ``q(W | G')``: conditioned on the single path's
  disentangled feature ``[u_n, u_d]`` (Equation 9);
- prior ``p(W | N)``: conditioned on a dummy feature ``u_tilde``
  representing the whole node's path population (Equation 10), built from
  the mean node-dependent feature of the node and the mean
  design-dependent feature pooled over *both* nodes (which the CMD loss
  has aligned).

Training maximises the ELBO (Equation 11): Monte-Carlo Gaussian
log-likelihood under q minus ``KL(q || p)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import MLP, Module, Tensor

#: Clamp on predicted log-variances, for numerical sanity.
_LOGVAR_RANGE = (-10.0, 4.0)


class BayesianReadout(Module):
    """Amortised Gaussian readout ``y = u . W`` (plus a fixed bias).

    Parameters
    ----------
    feature_size:
        Path feature width ``m``; W has ``m`` entries (as in the paper,
        W in R^{1 x m}).
    hidden:
        Hidden width of the mu/Sigma MLPs.
    mc_samples:
        Monte-Carlo samples K used for the likelihood term.
    rng:
        Generator for weight init and reparameterisation noise.
    seed:
        Seed for the fallback Generator used when ``rng`` is not given;
        construction is deterministic either way.
    """

    def __init__(self, feature_size: int, hidden: int = 32,
                 mc_samples: int = 4, correction_scale: float = 0.2,
                 rng: Optional[np.random.Generator] = None,
                 seed: int = 0) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(seed)
        self.feature_size = feature_size
        self.mc_samples = mc_samples
        self.correction_scale = correction_scale
        self._noise_rng = np.random.default_rng(rng.integers(2 ** 32))
        out = feature_size
        self.mu_net = MLP([feature_size, hidden, out], rng)
        self.logvar_net = MLP([feature_size, hidden, out], rng)
        # Residual parametrisation: mu(u) = W_base + MLP(u).  The shared
        # base weight anchors every path's readout to one robust linear
        # solution; the amortisation MLP only has to learn the
        # input-conditioned *correction*.  (Identical function family to
        # a plain MLP(u), but far better conditioned with few designs.)
        # As in the paper, W has no bias (W in R^{1 x m}); a single fixed
        # scalar bias is kept outside the distribution for stability.
        self.w_base = Tensor(np.zeros(out), requires_grad=True)
        self.bias = Tensor(np.zeros(1), requires_grad=True)
        for layer_param in self.mu_net.net.modules[-1].__dict__.values():
            if isinstance(layer_param, Tensor):
                # repro-check: disable=tensor-data-mutation -- init-time rescale, no graph recorded yet
                layer_param.data *= 0.1
        # Start with a tight weight distribution (log sigma^2 ~ -4) so
        # early training is not drowned in reparameterisation noise.
        # repro-check: disable=tensor-data-mutation -- init-time bias preset, no graph recorded yet
        self.logvar_net.net.modules[-1].bias.data[...] = -4.0

    # ------------------------------------------------------------------
    def weight_distribution(self, u: Tensor) -> Tuple[Tensor, Tensor]:
        """Gaussian parameters of W given features ``u`` of shape (K, m).

        Returns ``(mu, log_var)`` of shape ``(K, m + 1)`` each.  Used both
        for the posterior (u = per-path features) and the prior (u = the
        node's dummy feature, K = 1).
        """
        mu = self.w_base + self.correction_scale * self.mu_net(u)
        log_var = self.logvar_net(u).clip(*_LOGVAR_RANGE)
        return mu, log_var

    def predict_mean(self, u: Tensor, z: Tensor) -> Tensor:
        """Posterior-mean prediction (exact expectation of the MC mean).

        ``u`` is the raw path feature the linear layer W applies to;
        ``z = [u_n, u_d]`` is the disentangled feature that W's
        distribution is conditioned on (Equation 9).  Because ``y`` is
        linear in W, averaging predictions over samples converges to
        using ``mu`` directly; evaluation uses this form.
        """
        w, _ = self.weight_distribution(z)
        return (u * w).sum(axis=1, keepdims=True) + self.bias

    def sample_predictions(self, u: Tensor, z: Tensor,
                           n_samples: Optional[int] = None) -> Tensor:
        """MC predictions ``(S, K, 1)`` via the reparameterisation trick."""
        mu, log_var = self.weight_distribution(z)
        return self.sample_predictions_from(u, mu, log_var, n_samples)

    def draw_noise(self, mu_shape: Tuple[int, ...],
                   n_samples: Optional[int] = None) -> np.ndarray:
        """Reparameterisation noise ``(S,) + mu_shape`` for one MC pass.

        One batched ``standard_normal`` consumes the exact PCG64 stream
        the historical per-sample loop did (the generator fills the
        output in C order), so pre-drawing noise outside the graph —
        which the compiled step needs, since a replay cannot re-run the
        generator — leaves the run's random stream unchanged.
        """
        n_samples = n_samples or self.mc_samples
        return self._noise_rng.standard_normal((n_samples,) + mu_shape)

    def sample_predictions_from(self, u: Tensor, mu: Tensor,
                                log_var: Tensor,
                                n_samples: Optional[int] = None,
                                eps: Optional[Tensor] = None) -> Tensor:
        """MC predictions under an explicit Gaussian over W.

        ``mu``/``log_var`` may be per-path ``(K, m)`` (posterior) or a
        single node-level row ``(1, m)`` (prior) that broadcasts.
        ``eps`` (shape ``(S,) + mu.shape``) injects pre-drawn
        reparameterisation noise; when omitted it is drawn here from
        the head's own generator (see :meth:`draw_noise`).
        """
        if eps is None:
            eps = Tensor(self.draw_noise(mu.shape, n_samples))
        std = (log_var * 0.5).exp()
        w = mu + std * eps
        return (u * w).sum(axis=2, keepdims=True) + self.bias

    # ------------------------------------------------------------------
    @staticmethod
    def _as_label_tensor(labels) -> Tensor:
        """Labels as a ``(1, K, 1)`` tensor; pass-through when already one.

        Accepting a pre-shaped Tensor lets the trainer register labels
        as a compiled step input (``step_input``) instead of baking one
        step's values into the trace.
        """
        if isinstance(labels, Tensor):
            return labels
        return Tensor(np.asarray(labels, dtype=float).reshape(1, -1, 1))

    def expected_nll(self, u: Tensor, z: Tensor, labels: np.ndarray,
                     obs_var: float = 1.0,
                     n_samples: Optional[int] = None,
                     eps: Optional[Tensor] = None) -> Tensor:
        """Monte-Carlo estimate of ``-E_q[log p(y | G', W)]`` (mean).

        This is the (negated) first term of Equation (11).  ``obs_var``
        is the Gaussian observation variance of the node the paths come
        from; conditioning the likelihood's scale on the node population
        N is what keeps one node's (absolutely larger) errors from
        drowning the other's — the failure mode of SimpleMerge that
        Figure 6 illustrates.
        """
        y = self._as_label_tensor(labels)
        mu, log_var = self.weight_distribution(z)
        preds = self.sample_predictions_from(u, mu, log_var, n_samples,
                                             eps=eps)
        sq = (preds - y) * (preds - y)
        log2pi = float(np.log(2.0 * np.pi))
        nll = 0.5 * (sq * (1.0 / obs_var)
                     + float(np.log(obs_var)) + log2pi)
        return nll.mean()

    @staticmethod
    def kl_divergence(q_mu: Tensor, q_log_var: Tensor, p_mu: Tensor,
                      p_log_var: Tensor) -> Tensor:
        """``KL(q || p)`` between diagonal Gaussians, averaged over paths.

        ``q_*`` has shape (K, m+1); ``p_*`` has shape (1, m+1) and
        broadcasts across the batch.
        """
        var_q = q_log_var.exp()
        var_p = p_log_var.exp()
        diff = q_mu - p_mu
        per_dim = p_log_var - q_log_var \
            + (var_q + diff * diff) / var_p - 1.0
        return 0.5 * per_dim.sum(axis=1).mean()

    def elbo_loss(self, u: Tensor, z: Tensor, labels: np.ndarray,
                  prior_mu: Tensor, prior_log_var: Tensor,
                  kl_weight: float = 1.0, obs_var: float = 1.0,
                  prior_weight: float = 1.0,
                  noise: Optional[Tuple[Tensor, Optional[Tensor]]] = None,
                  ) -> Tensor:
        """Negative ELBO (Equation 11) plus the direct Eq-7 likelihood.

        The ELBO lower-bounds ``log p(y | G', N)`` through the posterior
        q; since inference marginalises W over the *prior* (Equation 7),
        we additionally maximise the predictive likelihood under the
        prior itself (``prior_weight`` scales it).  This trains the
        node-level readout that inference actually uses, instead of
        relying on the KL term to transport fit quality from q to p.

        ``noise`` optionally supplies the pre-drawn ``(eps_q, eps_p)``
        reparameterisation noise (``eps_p`` unused/None when
        ``prior_weight == 0``); the trainer uses this to make the loss a
        pure function of its inputs, as compiled replays require.
        """
        eps_q, eps_p = noise if noise is not None else (None, None)
        nll = self.expected_nll(u, z, labels, obs_var=obs_var, eps=eps_q)
        q_mu, q_log_var = self.weight_distribution(z)
        kl = self.kl_divergence(q_mu, q_log_var, prior_mu, prior_log_var)
        loss = nll + kl_weight * kl
        if prior_weight > 0.0:
            y = self._as_label_tensor(labels)
            preds = self.sample_predictions_from(u, prior_mu, prior_log_var,
                                                 eps=eps_p)
            sq = (preds - y) * (preds - y)
            prior_nll = (0.5 * sq * (1.0 / obs_var)).mean()
            loss = loss + prior_weight * prior_nll
        return loss


def build_prior_feature(u_node: Tensor, u_design_all: Tensor) -> Tensor:
    """Construct the dummy feature ``u_tilde(N)`` for one node.

    Parameters
    ----------
    u_node:
        Node-dependent features of the node's paths in the batch,
        ``(K_node, m/2)``; their mean represents the node (consistent
        within a node by the contrastive loss).
    u_design_all:
        Design-dependent features of *all* paths from *both* nodes,
        ``(K_all, m/2)``; their mean represents the aligned design
        population (CMD has brought the two nodes' distributions
        together).

    Returns
    -------
    Tensor
        ``(1, m)`` dummy path feature.
    """
    from ..nn import concatenate

    node_mean = u_node.mean(axis=0, keepdims=True)
    design_mean = u_design_all.mean(axis=0, keepdims=True)
    return concatenate([node_mean, design_mean], axis=1)
