"""Timing-engine-inspired GNN over the heterogeneous pin graph.

Following the paper (Section 3.1, after Guo et al. [3]), the GNN
propagates along the timing graph from primary inputs to endpoints in
levelised sweeps — exactly the order a PERT STA traversal visits pins.
Net edges and cell edges have separate message transforms (the graph is
heterogeneous), and a node's embedding is

``h_v = ReLU(W_self x_v + W_net mean(h_net-fanin) + W_cell mean(h_cell-fanin))``

computed level by level, so each embedding summarises the whole fanin
cone below it — making the endpoint rows genuine *timing path* features.

Two sweep implementations share the same math:

- the **fused kernel** (default): one autograd node whose forward runs
  the entire sweep in tight numpy (in-place level updates, BLAS message
  matmuls) and whose backward replays the levels in reverse.  This
  replaces the thousands of small per-level autograd nodes the naive
  composition creates, which dominate wall-clock on small levels.
- the **reference composition**: the original per-level gather/scatter
  autograd ops, kept as the ground truth the fused kernel is validated
  against (see ``reference_sweep`` and the equivalence tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..features import PinGraph
from ..nn import Linear, Module, Tensor, gather_rows, scatter_add_rows
from ..nn.tensor import _finish
from ..util import is_legacy, legacy_mode, timed


class _LevelPlan:
    """Precomputed per-level edge groupings for one graph (cached).

    Construction is fully vectorised: destination rows are mapped to
    level-local slots with ``np.searchsorted`` over the (unique) level
    rows, and fanin counts come from one ``np.bincount`` — no per-edge
    Python loop.
    """

    def __init__(self, graph: PinGraph) -> None:
        node_level = np.zeros(graph.num_nodes, dtype=np.int64)
        for k, rows in enumerate(graph.levels):
            node_level[rows] = k
        self.steps: List[Dict[str, np.ndarray]] = []
        for k, rows in enumerate(graph.levels):
            if k == 0:
                continue
            rows = np.asarray(rows, dtype=np.int64)
            # Rows are unique; a stable argsort makes searchsorted valid
            # even if a caller hands us an unsorted level.
            sorter = np.argsort(rows, kind="stable")
            sorted_rows = rows[sorter]
            step = {"dst": rows}
            for kind, edges in (("net", graph.net_edges),
                                ("cell", graph.cell_edges)):
                if edges.shape[1]:
                    mask = node_level[edges[1]] == k
                    src = edges[0][mask]
                    dst = edges[1][mask]
                else:
                    src = dst = np.zeros(0, dtype=np.int64)
                if dst.size:
                    dst_local = sorter[np.searchsorted(sorted_rows, dst)]
                    counts = np.bincount(dst_local, minlength=len(rows))
                    counts = np.maximum(counts, 1).astype(float)
                else:
                    dst_local = np.zeros(0, dtype=np.int64)
                    counts = np.ones(len(rows))
                step[f"{kind}_src"] = src
                step[f"{kind}_dst_local"] = dst_local
                step[f"{kind}_inv_count"] = (1.0 / counts)[:, None]
            self.steps.append(step)


def _plan_for(graph: PinGraph) -> _LevelPlan:
    """The graph's level plan, memoised on the graph object itself.

    PinGraphs are immutable after encoding, so the plan never needs
    invalidation, and tying its lifetime to the graph avoids both
    unbounded module caches and stale-id lookups.
    """
    plan = getattr(graph, "_gnn_plan", None)
    if plan is None:
        plan = _LevelPlan(graph)
        graph._gnn_plan = plan
    return plan


#: The sweep follows the process-global legacy switch: inside
#: ``legacy_mode()`` the naive per-level autograd composition runs
#: (equivalence tests, pre-fusion benchmark baseline); production code
#: paths always take the fused kernel.  Kept under its historical name.
reference_sweep = legacy_mode


def levelized_sweep(s: Tensor, w_net: Tensor, w_cell: Tensor,
                    plan: _LevelPlan, level0: np.ndarray,
                    num_nodes: int) -> Tensor:
    """The whole levelised propagation as ONE autograd node.

    Forward mirrors the reference composition exactly (each node's row
    of ``h`` is written once, at its own level), but runs in plain numpy
    with in-place buffers.  Backward replays the levels in reverse
    topological order, accumulating into per-array gradient buffers —
    the hand-written adjoint of the forward sweep.
    """
    s_data = s.data
    wn, wc = w_net.data, w_cell.data
    hidden = s_data.shape[1]
    h = np.zeros((num_nodes, hidden), dtype=s_data.dtype)
    if level0.size:
        h[level0] = np.maximum(s_data[level0], 0.0)
    for step in plan.steps:
        dst = step["dst"]
        total = s_data[dst].copy()
        for kind, w in (("net", wn), ("cell", wc)):
            src = step[f"{kind}_src"]
            if src.size == 0:
                continue
            msgs = h[src] @ w
            agg = np.zeros((len(dst), hidden), dtype=s_data.dtype)
            np.add.at(agg, step[f"{kind}_dst_local"], msgs)
            total += agg * step[f"{kind}_inv_count"]
        h[dst] = np.maximum(total, 0.0)

    def backward(grad: np.ndarray, out: Tensor) -> None:
        grad_h = np.array(grad, copy=True)
        grad_s = np.zeros_like(s_data) if s.requires_grad else None
        grad_wn = np.zeros_like(wn) if w_net.requires_grad else None
        grad_wc = np.zeros_like(wc) if w_cell.requires_grad else None
        for step in reversed(plan.steps):
            dst = step["dst"]
            grad_total = grad_h[dst] * (h[dst] > 0.0)
            if grad_s is not None:
                grad_s[dst] += grad_total
            for kind, w, grad_w in (("net", wn, grad_wn),
                                    ("cell", wc, grad_wc)):
                src = step[f"{kind}_src"]
                if src.size == 0:
                    continue
                grad_agg = grad_total * step[f"{kind}_inv_count"]
                grad_msgs = grad_agg[step[f"{kind}_dst_local"]]
                if grad_w is not None:
                    grad_w += h[src].T @ grad_msgs
                np.add.at(grad_h, src, grad_msgs @ w.T)
        if level0.size:
            grad_level0 = grad_h[level0] * (h[level0] > 0.0)
            if grad_s is not None:
                grad_s[level0] += grad_level0
        if grad_s is not None:
            out._send(s, grad_s)
        if grad_wn is not None:
            out._send(w_net, grad_wn)
        if grad_wc is not None:
            out._send(w_cell, grad_wc)

    return _finish(h, (s, w_net, w_cell), backward, op="levelized_sweep",
                   attrs={"plan": plan, "level0": level0,
                          "num_nodes": num_nodes})


class TimingGNN(Module):
    """Levelised heterogeneous message passing over a :class:`PinGraph`.

    Parameters
    ----------
    in_features:
        Node feature width (3 numeric + merged gate vocabulary).
    hidden:
        Embedding width carried through the sweep.
    out_features:
        Width of the projected per-pin output embedding.
    rng:
        Generator for weight init.
    """

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden = hidden
        self.lin_self = Linear(in_features, hidden, rng)
        self.lin_net = Linear(hidden, hidden, rng, bias=False)
        self.lin_cell = Linear(hidden, hidden, rng, bias=False)
        self.lin_out = Linear(hidden, out_features, rng)

    def node_embeddings(self, graph: PinGraph) -> Tensor:
        """Embeddings for every pin, ``(N, hidden)``."""
        with timed("gnn.sweep"):
            s = self.lin_self(Tensor(graph.features))
            if not graph.levels:
                return s.relu()
            if is_legacy():
                return self._sweep_reference(graph, s)
            return levelized_sweep(
                s, self.lin_net.weight, self.lin_cell.weight,
                _plan_for(graph), graph.levels[0], graph.num_nodes,
            )

    def _sweep_reference(self, graph: PinGraph, s: Tensor) -> Tensor:
        """Per-level autograd composition (ground truth for the kernel)."""
        n = graph.num_nodes
        level0 = graph.levels[0]
        h = scatter_add_rows(gather_rows(s, level0).relu(), level0, n)
        plan = _plan_for(graph)
        for step in plan.steps:
            dst = step["dst"]
            total = gather_rows(s, dst)
            for kind, lin in (("net", self.lin_net), ("cell", self.lin_cell)):
                src = step[f"{kind}_src"]
                if src.size == 0:
                    continue
                msgs = lin(gather_rows(h, src))
                agg = scatter_add_rows(msgs, step[f"{kind}_dst_local"],
                                       len(dst))
                total = total + agg * Tensor(step[f"{kind}_inv_count"])
            h = h + scatter_add_rows(total.relu(), dst, n)
        return h

    def forward(self, graph: PinGraph,
                endpoint_rows: Optional[np.ndarray] = None) -> Tensor:
        """Timing-path embeddings at (a subset of) the endpoints.

        Parameters
        ----------
        graph:
            Encoded design.
        endpoint_rows:
            Rows to read out; defaults to all of the graph's endpoints.

        Returns
        -------
        Tensor
            ``(K, out_features)`` path embeddings.
        """
        rows = endpoint_rows if endpoint_rows is not None \
            else graph.endpoint_rows
        h = self.node_embeddings(graph)
        return self.lin_out(gather_rows(h, rows))
