"""Timing-engine-inspired GNN over the heterogeneous pin graph.

Following the paper (Section 3.1, after Guo et al. [3]), the GNN
propagates along the timing graph from primary inputs to endpoints in
levelised sweeps — exactly the order a PERT STA traversal visits pins.
Net edges and cell edges have separate message transforms (the graph is
heterogeneous), and a node's embedding is

``h_v = ReLU(W_self x_v + W_net mean(h_net-fanin) + W_cell mean(h_cell-fanin))``

computed level by level, so each embedding summarises the whole fanin
cone below it — making the endpoint rows genuine *timing path* features.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..features import PinGraph
from ..nn import Linear, Module, Tensor, gather_rows, scatter_add_rows


class _LevelPlan:
    """Precomputed per-level edge groupings for one graph (cached)."""

    def __init__(self, graph: PinGraph) -> None:
        node_level = np.zeros(graph.num_nodes, dtype=np.int64)
        for k, rows in enumerate(graph.levels):
            node_level[rows] = k
        self.steps: List[Dict[str, np.ndarray]] = []
        for k, rows in enumerate(graph.levels):
            if k == 0:
                continue
            local = {int(r): i for i, r in enumerate(rows)}
            step = {"dst": rows}
            for kind, edges in (("net", graph.net_edges),
                                ("cell", graph.cell_edges)):
                if edges.shape[1]:
                    mask = node_level[edges[1]] == k
                    src = edges[0][mask]
                    dst = edges[1][mask]
                else:
                    src = dst = np.zeros(0, dtype=np.int64)
                dst_local = np.array([local[int(d)] for d in dst],
                                     dtype=np.int64)
                counts = np.ones(len(rows))
                if dst_local.size:
                    counts = np.bincount(dst_local, minlength=len(rows))
                    counts = np.maximum(counts, 1).astype(float)
                step[f"{kind}_src"] = src
                step[f"{kind}_dst_local"] = dst_local
                step[f"{kind}_inv_count"] = (1.0 / counts)[:, None]
            self.steps.append(step)


def _plan_for(graph: PinGraph) -> _LevelPlan:
    """The graph's level plan, memoised on the graph object itself.

    PinGraphs are immutable after encoding, so the plan never needs
    invalidation, and tying its lifetime to the graph avoids both
    unbounded module caches and stale-id lookups.
    """
    plan = getattr(graph, "_gnn_plan", None)
    if plan is None:
        plan = _LevelPlan(graph)
        graph._gnn_plan = plan
    return plan


class TimingGNN(Module):
    """Levelised heterogeneous message passing over a :class:`PinGraph`.

    Parameters
    ----------
    in_features:
        Node feature width (3 numeric + merged gate vocabulary).
    hidden:
        Embedding width carried through the sweep.
    out_features:
        Width of the projected per-pin output embedding.
    rng:
        Generator for weight init.
    """

    def __init__(self, in_features: int, hidden: int, out_features: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.hidden = hidden
        self.lin_self = Linear(in_features, hidden, rng)
        self.lin_net = Linear(hidden, hidden, rng, bias=False)
        self.lin_cell = Linear(hidden, hidden, rng, bias=False)
        self.lin_out = Linear(hidden, out_features, rng)

    def node_embeddings(self, graph: PinGraph) -> Tensor:
        """Embeddings for every pin, ``(N, hidden)``."""
        n = graph.num_nodes
        x = Tensor(graph.features)
        s = self.lin_self(x)

        if not graph.levels:
            return s.relu()

        level0 = graph.levels[0]
        h = scatter_add_rows(gather_rows(s, level0).relu(), level0, n)
        plan = _plan_for(graph)
        for step in plan.steps:
            dst = step["dst"]
            total = gather_rows(s, dst)
            for kind, lin in (("net", self.lin_net), ("cell", self.lin_cell)):
                src = step[f"{kind}_src"]
                if src.size == 0:
                    continue
                msgs = lin(gather_rows(h, src))
                agg = scatter_add_rows(msgs, step[f"{kind}_dst_local"],
                                       len(dst))
                total = total + agg * Tensor(step[f"{kind}_inv_count"])
            h = h + scatter_add_rows(total.relu(), dst, n)
        return h

    def forward(self, graph: PinGraph,
                endpoint_rows: Optional[np.ndarray] = None) -> Tensor:
        """Timing-path embeddings at (a subset of) the endpoints.

        Parameters
        ----------
        graph:
            Encoded design.
        endpoint_rows:
            Rows to read out; defaults to all of the graph's endpoints.

        Returns
        -------
        Tensor
            ``(K, out_features)`` path embeddings.
        """
        rows = endpoint_rows if endpoint_rows is not None \
            else graph.endpoint_rows
        h = self.node_embeddings(graph)
        return self.lin_out(gather_rows(h, rows))
