"""The DAC23 baseline model [4]: multimodal extractor + linear readout.

All four baseline strategies in Table 2 train this same architecture;
they differ only in which data they see and whether the final linear
layer is shared (see :mod:`repro.train.strategies`).  ``n_heads=2`` gives
the node-specific heads of the ParamShare strategy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..flow import DesignData
from ..nn import Linear, Module, Tensor
from .extractor import PathFeatureExtractor


class DAC23Model(Module):
    """Restructure-tolerant multimodal predictor with deterministic W.

    Parameters
    ----------
    in_features:
        Pin-graph node feature width.
    n_heads:
        Number of final linear readouts (1 normally, 2 for ParamShare:
        head 0 = source/130nm, head 1 = target/7nm).
    Other sizes mirror :class:`~repro.model.predictor.TimingPredictor` so
    runtime comparisons are apples-to-apples.
    """

    def __init__(self, in_features: int, gnn_hidden: int = 32,
                 gnn_out: int = 24, cnn_channels: int = 6, cnn_out: int = 8,
                 n_heads: int = 1, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.extractor = PathFeatureExtractor(
            in_features, gnn_hidden=gnn_hidden, gnn_out=gnn_out,
            cnn_channels=cnn_channels, cnn_out=cnn_out, rng=rng,
        )
        m = self.extractor.feature_size
        self.heads = [Linear(m, 1, rng) for _ in range(n_heads)]
        self.feature_size = m

    def forward(self, design: DesignData,
                endpoint_subset: Optional[np.ndarray] = None,
                head: int = 0) -> Tensor:
        """Predicted arrival times, shape ``(K, 1)``."""
        u = self.extractor(design, endpoint_subset)
        return self.heads[head](u)

    def predict(self, design: DesignData,
                endpoint_subset: Optional[np.ndarray] = None,
                head: int = 0) -> np.ndarray:
        """Numpy predictions for evaluation."""
        return self.forward(design, endpoint_subset, head).data.reshape(-1)
