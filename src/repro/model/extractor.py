"""The timing path feature extractor F(G') = [GNN(H), CNN(X)].

Equation (1) of the paper: a path's feature vector is the concatenation
of its GNN embedding (graph modality) and its CNN embedding (layout
modality).  One extractor instance is shared by every training strategy;
the strategies differ only in what sits on top of ``u``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..flow import DesignData
from ..nn import Module, Tensor, concatenate
from ..util import is_legacy
from .cnn import LayoutCNN, masked_path_images
from .gnn import TimingGNN


class PathFeatureExtractor(Module):
    """Produces ``u in R^m`` for each timing path of a design.

    Parameters
    ----------
    in_features:
        Pin-graph node feature width.
    gnn_hidden / gnn_out:
        GNN sweep width and projected output width.
    cnn_channels / cnn_out:
        CNN stack width and projected output width.
    rng:
        Generator for weight init.
    seed:
        Seed for the fallback Generator used when ``rng`` is not given;
        construction is deterministic either way.

    Notes
    -----
    ``m = gnn_out + cnn_out`` must be even, since the disentangler splits
    the feature into two equal halves (Equation 2).
    """

    def __init__(self, in_features: int, gnn_hidden: int = 32,
                 gnn_out: int = 24, cnn_channels: int = 6,
                 cnn_out: int = 8,
                 rng: Optional[np.random.Generator] = None,
                 seed: int = 0) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(seed)
        if (gnn_out + cnn_out) % 2:
            raise ValueError("feature size m must be even for Equation (2)")
        self.gnn = TimingGNN(in_features, gnn_hidden, gnn_out, rng)
        self.cnn = LayoutCNN(3, cnn_channels, cnn_out, rng)
        self.feature_size = gnn_out + cnn_out

    def forward(self, design: DesignData,
                endpoint_subset: Optional[np.ndarray] = None) -> Tensor:
        """Path features for ``design``.

        Parameters
        ----------
        design:
            One design's snapshot data.
        endpoint_subset:
            Indices *into the design's endpoint list* to featurise (for
            minibatching); all endpoints when None.

        Returns
        -------
        Tensor
            ``(K, m)`` path features.
        """
        if endpoint_subset is None:
            endpoint_subset = np.arange(design.num_endpoints)
        rows = design.graph.endpoint_rows[endpoint_subset]
        u_graph = self.gnn(design.graph, rows)
        if is_legacy():
            # Original form: re-mask the sampled cones every call.
            path_images = masked_path_images(
                design.images, design.cone_masks[endpoint_subset])
        else:
            path_images = design.path_image_stack()[endpoint_subset]
        u_layout = self.cnn(Tensor(path_images))
        return concatenate([u_graph, u_layout], axis=1)
