"""The full timing predictor of the paper (ours).

Composition: path feature extractor (GNN + CNN) -> disentangler
(``u -> u_n, u_d``) -> Bayesian readout over ``[u_n, u_d]``.  Training
adds the node-contrastive and CMD alignment losses on the disentangled
halves; see :mod:`repro.train.trainer`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..flow import DesignData
from ..nn import Module, Tensor
from .bayesian import BayesianReadout, build_prior_feature
from .disentangle import Disentangler
from .extractor import PathFeatureExtractor


class TimingPredictor(Module):
    """Disentangle-align-generalize timing predictor.

    Parameters
    ----------
    in_features:
        Pin-graph node feature width (depends on the merged vocabulary).
    gnn_hidden, gnn_out, cnn_channels, cnn_out:
        Extractor sizes; ``m = gnn_out + cnn_out``.
    readout_hidden:
        Width of the amortisation MLPs in the Bayesian head.
    mc_samples:
        Monte-Carlo samples for the ELBO likelihood term.
    seed:
        Seed for all weight init.
    """

    def __init__(self, in_features: int, gnn_hidden: int = 32,
                 gnn_out: int = 24, cnn_channels: int = 6, cnn_out: int = 8,
                 readout_hidden: int = 32, mc_samples: int = 4,
                 seed: int = 0) -> None:
        super().__init__()
        #: Constructor arguments, recorded so a trained predictor can be
        #: rebuilt from a checkpoint (see ``repro.infer.serialization``).
        self.init_config = {
            "in_features": in_features, "gnn_hidden": gnn_hidden,
            "gnn_out": gnn_out, "cnn_channels": cnn_channels,
            "cnn_out": cnn_out, "readout_hidden": readout_hidden,
            "mc_samples": mc_samples, "seed": seed,
        }
        rng = np.random.default_rng(seed)
        self.extractor = PathFeatureExtractor(
            in_features, gnn_hidden=gnn_hidden, gnn_out=gnn_out,
            cnn_channels=cnn_channels, cnn_out=cnn_out, rng=rng,
        )
        m = self.extractor.feature_size
        self.disentangler = Disentangler(m, rng=rng)
        self.readout = BayesianReadout(m, hidden=readout_hidden,
                                       mc_samples=mc_samples, rng=rng)
        self.feature_size = m

    # ------------------------------------------------------------------
    def path_features(self, design: DesignData,
                      endpoint_subset: Optional[np.ndarray] = None
                      ) -> Tuple[Tensor, Tensor, Tensor]:
        """``(u, u_n, u_d)`` for (a subset of) a design's paths."""
        u = self.extractor(design, endpoint_subset)
        u_n, u_d = self.disentangler(u)
        return u, u_n, u_d

    def finalize_node_priors(self, designs: Sequence[DesignData],
                             max_paths_per_design: int = 128,
                             seed: int = 0) -> None:
        """Cache the node-level prior weights p(W | N) for inference.

        Equation (7) predicts by marginalising W over the *prior*
        ``p(W | N)`` — the node population distribution — not over the
        per-path variational posterior (q only exists to make training
        tractable).  This method builds each node's dummy feature
        ``u_tilde(N)`` from the training designs (mean node-dependent
        feature of the node, mean design-dependent feature over both
        nodes) and stores the resulting Gaussian.  Called automatically
        at the end of :class:`~repro.train.trainer.OursTrainer.fit`.
        """
        rng = np.random.default_rng(seed)
        un_by_node: Dict[str, list] = {}
        ud_all = []
        for design in designs:
            k = design.num_endpoints
            subset = np.arange(k) if k <= max_paths_per_design else \
                rng.choice(k, size=max_paths_per_design, replace=False)
            _, u_n, u_d = self.path_features(design, subset)
            un_by_node.setdefault(design.node, []).append(u_n.data)
            ud_all.append(u_d.data)
        ud_stack = np.concatenate(ud_all)
        # Keep sums and counts (not just means) so inference can fold a
        # new design's own unlabeled paths into the node population
        # (Equation 7 conditions on *all* paths of the node N).
        self._population = {
            "ud_sum": ud_stack.sum(axis=0),
            "ud_count": float(len(ud_stack)),
            "un_sum": {node: np.concatenate(f).sum(axis=0)
                       for node, f in un_by_node.items()},
            "un_count": {node: float(sum(len(x) for x in f))
                         for node, f in un_by_node.items()},
        }
        self._node_priors = {}
        for node in un_by_node:
            mu, log_var = self._prior_from_population(node)
            self._node_priors[node] = (mu, log_var)

    def _prior_feature(self, node: str,
                       extra_un: Optional[np.ndarray] = None,
                       extra_ud: Optional[np.ndarray] = None
                       ) -> np.ndarray:
        """``(1, m)`` dummy feature u_tilde(N) from stored population sums.

        Split out of :meth:`_prior_from_population` so batched inference
        (``repro.infer``) can stack many designs' rows and amortise the
        prior MLPs over one forward pass.
        """
        pop = self._population
        un_sum = pop["un_sum"][node].copy()
        un_count = pop["un_count"][node]
        ud_sum = pop["ud_sum"].copy()
        ud_count = pop["ud_count"]
        if extra_un is not None:
            un_sum += extra_un.sum(axis=0)
            un_count += len(extra_un)
        if extra_ud is not None:
            ud_sum += extra_ud.sum(axis=0)
            ud_count += len(extra_ud)
        return np.concatenate(
            [un_sum / un_count, ud_sum / ud_count]
        ).reshape(1, -1)

    def _prior_from_population(self, node: str,
                               extra_un: Optional[np.ndarray] = None,
                               extra_ud: Optional[np.ndarray] = None
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Prior Gaussian from stored population sums (+ optional extras)."""
        u_tilde = Tensor(self._prior_feature(node, extra_un, extra_ud))
        mu, log_var = self.readout.weight_distribution(u_tilde)
        return mu.data.copy(), log_var.data.copy()

    def _prior_weights(self, node: str) -> Tuple[np.ndarray, np.ndarray]:
        priors = getattr(self, "_node_priors", None)
        if not priors or node not in priors:
            raise RuntimeError(
                "node priors not finalised; train with OursTrainer or call "
                "finalize_node_priors() first"
            )
        return priors[node]

    def predict(self, design: DesignData,
                endpoint_subset: Optional[np.ndarray] = None,
                mc_samples: int = 0,
                transductive: bool = True,
                rng: Optional[np.random.Generator] = None,
                seed: int = 0) -> np.ndarray:
        """Arrival-time predictions for a design's endpoints.

        Uses Equation (7): the readout weight is the node-conditioned
        prior mean ``mu(u_tilde(N))``, applied to each path's feature.
        With ``transductive=True`` (default) the node population N also
        includes the queried design's own *unlabeled* paths — the paper
        conditions on "the distribution of all the timing paths on the
        target node", which at inference includes the design at hand.

        Parameters
        ----------
        mc_samples:
            0 uses the prior mean (deterministic, the expectation of the
            MC scheme); > 0 averages that many W samples from the prior.
        rng, seed:
            Generator for the MC prior draws (``rng`` wins; otherwise a
            fresh ``default_rng(seed)``).  Inference never touches the
            training noise RNG, so identical calls return identical
            predictions and never mutate model state.
        """
        u, u_n, u_d = self.path_features(design, endpoint_subset)
        mu, log_var = self._design_prior(design, u_n.data, u_d.data,
                                         transductive)
        if mc_samples > 0:
            rng = rng if rng is not None else np.random.default_rng(seed)
            preds = self._sample_prior_predictions(u.data, mu, log_var,
                                                   mc_samples, rng)
            return preds.mean(axis=0)
        return u.data @ mu[0] + float(self.readout.bias.data[0])

    def _design_prior(self, design: DesignData, u_n: np.ndarray,
                      u_d: np.ndarray, transductive: bool
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Node prior, optionally updated with the design's own paths."""
        self._prior_weights(design.node)  # raises if not finalised
        if not transductive:
            return self._prior_weights(design.node)
        return self._prior_from_population(design.node, extra_un=u_n,
                                           extra_ud=u_d)

    def predict_with_uncertainty(self, design: DesignData,
                                 endpoint_subset: Optional[np.ndarray] = None,
                                 mc_samples: int = 16,
                                 rng: Optional[np.random.Generator] = None,
                                 seed: int = 0
                                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Predictive mean and standard deviation per endpoint.

        The paper never evaluates its predictive uncertainty; we expose
        it because the Bayesian head provides it for free (see the
        calibration ablation in EXPERIMENTS.md).  ``rng``/``seed``
        select the MC draws exactly as in :meth:`predict`.
        """
        u, u_n, u_d = self.path_features(design, endpoint_subset)
        mu, log_var = self._design_prior(design, u_n.data, u_d.data,
                                         transductive=True)
        rng = rng if rng is not None else np.random.default_rng(seed)
        preds = self._sample_prior_predictions(u.data, mu, log_var,
                                               mc_samples, rng)
        return preds.mean(axis=0), preds.std(axis=0)

    def _sample_prior_predictions(self, u: np.ndarray, mu: np.ndarray,
                                  log_var: np.ndarray, n_samples: int,
                                  rng: np.random.Generator) -> np.ndarray:
        """``(n_samples, K)`` MC predictions under the prior Gaussian.

        One ``(n_samples,) + mu.shape`` draw and one batched matmul
        replace the historical per-sample Python loop; the generator
        fills C-order, so the draws (and therefore the predictions)
        match the looped version sample for sample under the same seed.
        """
        std = np.exp(0.5 * log_var)
        bias = float(self.readout.bias.data[0])
        eps = rng.standard_normal((n_samples,) + mu.shape)
        w = (mu + std * eps)[:, 0, :]          # (n_samples, m)
        return (u @ w.T).T + bias

    def prior_for(self, u_node: Tensor, u_design_all: Tensor
                  ) -> Tuple[Tensor, Tensor]:
        """Prior Gaussian parameters for one node (Equation 10)."""
        u_tilde = build_prior_feature(u_node, u_design_all)
        return self.readout.weight_distribution(u_tilde)
