"""Feature disentanglement (Section 3.2, Equation 2).

Two MLP heads split a path feature ``u in R^m`` into equal-sized halves:

- ``u_n = MLP_n(u)``: node-dependent (standard cells, electrical scale);
  two linear layers with a ReLU between, unbounded range.
- ``u_d = MLP_d(u)``: design-dependent (logical functionality); same
  shape plus a final tanh, bounding it to (-1, 1) so the CMD alignment
  loss has a compact support (Theorem 1 requires one).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn import MLP, Module, Tensor, concatenate


class Disentangler(Module):
    """Splits path features into node- and design-dependent halves.

    Parameters
    ----------
    feature_size:
        Input width ``m`` (must be even); each head outputs ``m // 2``.
    hidden:
        Hidden width of the two MLPs (defaults to ``m``).
    rng:
        Generator for weight init.
    seed:
        Seed for the fallback Generator used when ``rng`` is not given;
        construction is deterministic either way.
    """

    def __init__(self, feature_size: int, hidden: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None,
                 seed: int = 0) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(seed)
        if feature_size % 2:
            raise ValueError("feature size must be even")
        hidden = hidden or feature_size
        half = feature_size // 2
        self.mlp_node = MLP([feature_size, hidden, half], rng,
                            activation="relu")
        self.mlp_design = MLP([feature_size, hidden, half], rng,
                              activation="relu", final_activation="tanh")
        self.half = half

    def forward(self, u: Tensor) -> Tuple[Tensor, Tensor]:
        """``(K, m) -> ((K, m/2) node, (K, m/2) design)``."""
        return self.mlp_node(u), self.mlp_design(u)

    def recombine(self, u_node: Tensor, u_design: Tensor) -> Tensor:
        """``[u_n, u_d]`` concatenation used by the Bayesian readout."""
        return concatenate([u_node, u_design], axis=1)
