"""Layout CNN (the image modality of the path feature extractor).

Consumes the three-channel layout images (cell density, RUDY, macro
region) masked by each timing path's pin locations, and produces one
embedding per path.  Architecture is a standard small conv stack with
global average pooling; the paper's 3x512x512 input is scaled down to
3x32x32 (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import numpy as np

from ..nn import Conv2d, Linear, Module, Tensor
from ..nn import functional as F
from ..util import timed


class LayoutCNN(Module):
    """Small CNN: masked layout images -> path embeddings.

    Parameters
    ----------
    in_channels:
        Image channels (3: density / RUDY / macro).
    channels:
        Width of the conv stack.
    out_features:
        Embedding size per path.
    rng:
        Generator for weight init.
    """

    def __init__(self, in_channels: int, channels: int, out_features: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, channels, 3, rng, padding=1)
        self.conv2 = Conv2d(channels, 2 * channels, 3, rng, padding=1)
        self.conv3 = Conv2d(2 * channels, 2 * channels, 3, rng, padding=1)
        self.project = Linear(2 * channels, out_features, rng)

    def forward(self, images: Tensor) -> Tensor:
        """``(K, C, R, R)`` masked images -> ``(K, out_features)``."""
        with timed("cnn.forward"):
            h = F.max_pool2d(self.conv1(images).relu(), 2)
            h = F.max_pool2d(self.conv2(h).relu(), 2)
            h = self.conv3(h).relu()
            h = F.global_avg_pool2d(h)
            return self.project(h)


def masked_path_images(images: np.ndarray,
                       cone_masks: np.ndarray) -> np.ndarray:
    """Apply per-path cone masks to the design's layout images.

    Parameters
    ----------
    images:
        ``(C, R, R)`` design-level layout images.
    cone_masks:
        ``(K, R, R)`` binary masks, one per timing path.

    Returns
    -------
    numpy.ndarray
        ``(K, C, R, R)`` per-path image stacks.
    """
    return images[None, :, :, :] * cone_masks[:, None, :, :]
