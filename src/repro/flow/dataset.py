"""Dataset containers produced by the PnR flow.

A :class:`DesignData` is one row of Table 1: everything the timing
predictor may see for one design (pre-route pin graph, layout images,
per-endpoint cone masks) plus the signoff labels it must predict.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from ..features import PinGraph
from ..nn.serialization import atomic_savez


@dataclass
class DesignData:
    """One design's model inputs and labels.

    Attributes
    ----------
    name:
        Benchmark name (e.g. ``"arm9"``).
    node:
        Technology node string, ``"130nm"`` or ``"7nm"``.
    graph:
        Pre-route pin graph snapshot (model input).
    images:
        ``(3, R, R)`` layout images at the snapshot.
    cone_masks:
        ``(K, R, R)`` per-endpoint binary cone masks, aligned with
        ``graph.endpoint_rows``.
    labels:
        ``(K,)`` signoff arrival times (ns) per endpoint — the target.
    pre_route_at:
        ``(K,)`` pre-route Elmore/STA arrival estimates per endpoint
        (the traditional linear-RC baseline, and a useful sanity signal).
    clock_period:
        Constraint used during optimization (ns).
    flow_info:
        Free-form diagnostics from the flow (optimization moves, WNS...).
    """

    name: str
    node: str
    graph: PinGraph
    images: np.ndarray
    cone_masks: np.ndarray
    labels: np.ndarray
    pre_route_at: np.ndarray
    clock_period: float
    flow_info: Dict[str, float] = field(default_factory=dict)

    @property
    def num_endpoints(self) -> int:
        return int(self.labels.shape[0])

    def path_image_stack(self) -> np.ndarray:
        """``(K, C, R, R)`` cone-masked layout images, computed once.

        Every training step needs ``images * cone_masks[subset]`` for its
        sampled endpoints; masking the full endpoint set once and caching
        the stack turns that into a pure index, instead of re-multiplying
        the images every step.  Images and masks are immutable after the
        flow, so the cache never needs invalidation.
        """
        stack = self.__dict__.get("_path_image_stack")
        if stack is None:
            stack = self.images[None, :, :, :] * self.cone_masks[:, None, :, :]
            self.__dict__["_path_image_stack"] = stack
        return stack

    def content_digest(self) -> str:
        """Stable hash of the design's model inputs (memoized).

        ``(name, node)`` are just labels: the same benchmark built
        against differently-scaled libraries carries different
        features, and per-design caches (`repro.infer.cache`) must
        tell the two apart.  Inputs are immutable after the flow, so
        the digest is computed once and cached on the instance.
        """
        digest = self.__dict__.get("_content_digest")
        if digest is None:
            h = hashlib.blake2b(digest_size=8)
            for array in (self.graph.features, self.graph.net_edges,
                          self.graph.cell_edges,
                          self.graph.endpoint_rows, self.images,
                          self.cone_masks, self.labels,
                          self.pre_route_at):
                data = np.ascontiguousarray(array)
                h.update(str(data.dtype).encode("ascii"))
                h.update(str(data.shape).encode("ascii"))
                h.update(data.tobytes())
            h.update(repr(float(self.clock_period)).encode("ascii"))
            digest = h.hexdigest()
            self.__dict__["_content_digest"] = digest
        return digest

    def endpoint_table(self) -> List[Dict[str, float]]:
        """Per-endpoint records: name, label, pre-route estimate."""
        return [
            {
                "name": self.graph.endpoint_names[k],
                "label": float(self.labels[k]),
                "pre_route": float(self.pre_route_at[k]),
            }
            for k in range(self.num_endpoints)
        ]

    def stats(self) -> Dict[str, int]:
        """Table-1 statistics for this design."""
        s = self.graph.stats()
        return {
            "tech node": self.node,
            "#pin": s["pins"],
            "#edp": s["endpoints"],
            "#e_n": s["net_edges"],
            "#e_c": s["cell_edges"],
        }

    def __repr__(self) -> str:
        return (f"DesignData({self.name}@{self.node}, "
                f"edp={self.num_endpoints})")


def dataset_statistics(designs: List[DesignData]) -> List[Dict[str, object]]:
    """Table-1 style rows (one per design plus train/test averages)."""
    rows = []
    for d in designs:
        row = {"benchmark": d.name}
        row.update(d.stats())
        rows.append(row)
    return rows


def save_design_data(data: DesignData, path: Union[str, Path]) -> None:
    """Persist a design's tensors (graph + labels) as compressed npz.

    The write is atomic (staged next to the target, then renamed into
    place): a crash mid-write leaves either the old file or none, never
    a torn archive the loader would have to detect.
    """
    atomic_savez(path, {
        "name": np.array(data.name),
        "node": np.array(data.node),
        "features": data.graph.features,
        "net_edges": data.graph.net_edges,
        "cell_edges": data.graph.cell_edges,
        "endpoint_rows": data.graph.endpoint_rows,
        "endpoint_names": np.array(data.graph.endpoint_names),
        "levels": np.array(
            [len(lv) for lv in data.graph.levels], dtype=np.int64
        ),
        "levels_flat": np.concatenate(data.graph.levels)
        if data.graph.levels else np.zeros(0, dtype=np.int64),
        "images": data.images,
        "cone_masks": data.cone_masks,
        "labels": data.labels,
        "pre_route_at": data.pre_route_at,
        "clock_period": np.array(data.clock_period),
    })


def load_design_data(path: Union[str, Path]) -> DesignData:
    """Load a design saved by :func:`save_design_data`."""
    with np.load(str(path), allow_pickle=False) as z:
        counts = z["levels"]
        flat = z["levels_flat"]
        levels, offset = [], 0
        for c in counts:
            levels.append(flat[offset:offset + int(c)])
            offset += int(c)
        endpoint_rows = z["endpoint_rows"]
        graph = PinGraph(
            features=z["features"],
            net_edges=z["net_edges"],
            cell_edges=z["cell_edges"],
            levels=levels,
            row_of_pin={},  # not needed after encoding
            endpoint_rows=endpoint_rows,
            endpoint_names=[str(n) for n in z["endpoint_names"]],
        )
        return DesignData(
            name=str(z["name"]),
            node=str(z["node"]),
            graph=graph,
            images=z["images"],
            cone_masks=z["cone_masks"],
            labels=z["labels"],
            pre_route_at=z["pre_route_at"],
            clock_period=float(z["clock_period"]),
        )
