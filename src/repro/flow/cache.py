"""Per-design flow artifact cache + parallel dataset construction.

The synthetic PnR flow is deterministic in ``(design, node, scale,
resolution, seed)`` but not free (up to seconds per design), and every
experiment/benchmark/test session rebuilds the same designs.  This
module caches each design's :class:`~repro.flow.dataset.DesignData`
as one ``.npz`` under a content key, and fans cold builds out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Cache keys include a **code-version salt** (:data:`CODE_SALT`): bump it
whenever a flow change alters the produced arrays, and every stale
entry misses instead of silently serving old data.  Corrupt or
unreadable entries are discarded and rebuilt — the cache can always be
deleted wholesale (``rm -rf ~/.cache/repro-dac24``) without losing
anything but time.
"""

from __future__ import annotations

import hashlib
import os
import time
import zipfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..features import GateVocabulary
from ..techlib import (NodeLadder, TechLibrary, library_digest,
                       make_asap7_library, make_sky130_library)
from ..util import get_timings, merge_timings, reset_timings
from .dataset import DesignData, load_design_data, save_design_data

__all__ = ["CODE_SALT", "FlowBuildError", "FlowCache", "build_designs",
           "default_cache_dir", "library_set_digest"]

#: Bump when flow semantics change (new features, new seeding, ...) so
#: previously cached designs are rebuilt rather than reused.
CODE_SALT = "flow-v3"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-dac24``."""
    root = os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.expanduser("~"), ".cache", "repro-dac24"),
    )
    return Path(root)


class FlowCache:
    """Content-keyed store of flow outputs, one ``.npz`` per design.

    Parameters
    ----------
    root:
        Cache directory; defaults to ``default_cache_dir()/designs``.
        Created lazily on first store.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None \
            else default_cache_dir() / "designs"

    # ------------------------------------------------------------------
    def key(self, name: str, node: str, scale: float, resolution: int,
            seed: int, lib_digest: Optional[str] = None) -> str:
        """Filename-safe cache key; any parameter change changes it.

        Numeric parameters are canonicalised (``1`` and ``1.0`` produce
        the same key, as do numpy scalars), so numerically equal
        parameters can never miss an existing entry just because of
        their Python type's ``repr``.

        ``lib_digest`` is the content digest of the *library set* the
        flow ran against (:func:`library_set_digest`).  The node string
        alone is just a label — two same-named but differently-scaled
        libraries must key apart, and the gate one-hot depends on the
        merged vocabulary of every library in the set.
        """
        lib = f"_lib{lib_digest}" if lib_digest is not None else ""
        return (f"{name}@{node}_s{format(float(scale), '.6g')}"
                f"_r{int(resolution)}_seed{int(seed)}{lib}_{CODE_SALT}")

    def path(self, name: str, node: str, scale: float, resolution: int,
             seed: int, lib_digest: Optional[str] = None) -> Path:
        key = self.key(name, node, scale, resolution, seed, lib_digest)
        return self.root / f"{key}.npz"

    # ------------------------------------------------------------------
    def load(self, name: str, node: str, scale: float, resolution: int,
             seed: int, lib_digest: Optional[str] = None
             ) -> Optional[DesignData]:
        """The cached design, or None on miss.

        A corrupt/truncated/stale-format entry counts as a miss: it is
        deleted so the subsequent store replaces it.
        """
        path = self.path(name, node, scale, resolution, seed, lib_digest)
        if not path.is_file():
            return None
        try:
            return load_design_data(path)
        except (OSError, KeyError, ValueError, zipfile.BadZipFile):
            path.unlink(missing_ok=True)
            return None

    def store(self, design: DesignData, scale: float, resolution: int,
              seed: int, lib_digest: Optional[str] = None) -> Path:
        """Persist one design (atomic: save_design_data stages+renames)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(design.name, design.node, scale, resolution,
                         seed, lib_digest)
        save_design_data(design, path)
        return path


# ----------------------------------------------------------------------
# Parallel cold builds
# ----------------------------------------------------------------------
#: Sleep hook for retry backoff; module-level so tests can stub it out
#: instead of actually sleeping.
_sleep: Callable[[float], None] = time.sleep


class FlowBuildError(RuntimeError):
    """One or more designs failed to build, even after every retry.

    ``failures`` is a list of ``(name, node, exception)`` triples, one
    per design that could not be built, so callers (and tracebacks) see
    exactly which designs broke instead of an anonymous pool error.
    """

    def __init__(self, failures) -> None:
        self.failures = list(failures)
        detail = "; ".join(f"{name}@{node}: {exc!r}"
                           for name, node, exc in self.failures)
        super().__init__(
            f"flow build failed for {len(self.failures)} design(s): "
            f"{detail}"
        )


def _default_libraries() -> Dict[str, TechLibrary]:
    return {"130nm": make_sky130_library(), "7nm": make_asap7_library()}


def library_set_digest(libraries: Dict[str, TechLibrary]) -> str:
    """Content digest of a whole node-label -> library mapping.

    Order-independent over labels; covers each library's full
    electrical content via :func:`~repro.techlib.library_digest`.
    """
    h = hashlib.blake2b(digest_size=8)
    for label in sorted(libraries):
        h.update(label.encode("utf-8"))
        h.update(b"\x00")
        h.update(library_digest(libraries[label]).encode("ascii"))
        h.update(b"\x00")
    return h.hexdigest()


def _flow_worker(task: Tuple[str, str, float, int, int,
                             Optional[Dict[str, object]]]
                 ) -> Tuple[DesignData, Dict[str, Dict[str, float]]]:
    """Run one design through the flow (executes in a worker process).

    Builds its own libraries/vocabulary — from the task's ladder spec
    when one is given, the two-node defaults otherwise.  Both are
    deterministic, so every worker featurises against the same
    vocabulary as the parent.  Returns the design together with this
    task's timing registry — pool processes are reused across tasks, so
    the registry is reset on entry to scope the snapshot to exactly
    this build.
    """
    reset_timings()
    name, node, scale, resolution, seed, ladder_spec = task
    from .pnr import PnRFlow

    libraries = _default_libraries() if ladder_spec is None \
        else NodeLadder.from_spec(ladder_spec).libraries()
    flow = PnRFlow(libraries, vocab=GateVocabulary(list(libraries.values())),
                   resolution=resolution, scale=scale, seed=seed)
    return flow.run(name, node), get_timings()


def _run_parallel(tasks: Dict[int, Tuple[str, str, float, int, int,
                                         Optional[Dict[str, object]]]],
                  workers: int
                  ) -> Tuple[Dict[int, Tuple[DesignData,
                                             Dict[str, Dict[str, float]]]],
                             Dict[int, BaseException]]:
    """Fan tasks out over a process pool, capturing failures per task.

    Returns ``(done, failed)`` keyed by the caller's task index.  A
    failure in one task never aborts the others; even a broken pool
    (worker killed mid-build) surfaces as per-task exceptions the
    caller can retry serially.
    """
    from concurrent.futures import ProcessPoolExecutor

    done: Dict[int, Tuple[DesignData, Dict[str, Dict[str, float]]]] = {}
    failed: Dict[int, BaseException] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {i: pool.submit(_flow_worker, task)
                   for i, task in tasks.items()}
        for i, future in futures.items():
            exc = future.exception()
            if exc is not None:
                failed[i] = exc
            else:
                done[i] = future.result()
    return done, failed


def build_designs(names: Sequence[Tuple[str, str]],
                  scale: float = 1.0, resolution: int = 32, seed: int = 0,
                  workers: int = 1, use_cache: bool = True,
                  cache_dir: Union[str, Path, None] = None,
                  libraries: Optional[Dict[str, TechLibrary]] = None,
                  vocab: Optional[GateVocabulary] = None,
                  ladder: Optional[NodeLadder] = None,
                  retries: int = 2, retry_backoff: float = 0.5
                  ) -> List[DesignData]:
    """Build ``(name, node)`` designs, cached and optionally in parallel.

    Parameters
    ----------
    names:
        ``(design_name, node)`` pairs, returned in the same order.
    workers:
        Process count for cache misses; ``<= 1`` builds serially in
        this process (no executor overhead).
    use_cache:
        When False neither reads nor writes the cache.
    cache_dir:
        Cache root override (default ``$REPRO_CACHE_DIR`` handling).
    libraries / vocab:
        Only used for serial builds; worker processes rebuild the
        (deterministic) ladder libraries or two-node defaults
        themselves.
    ladder:
        Build against this :class:`~repro.techlib.NodeLadder`'s
        libraries instead of the two-node defaults.  The ladder's
        small serializable spec — not the libraries — is shipped to
        worker processes, which rebuild identical libraries from it.
    retries:
        Serial attempts per design *after* its first failure (pool or
        serial) before the design is declared dead.  Transient failures
        — a worker OOM-killed under memory pressure, a broken pool — are
        the common case on shared schedulers, and a bounded
        retry-with-backoff rides them out.  ``0`` fails fast.
    retry_backoff:
        Base of the exponential backoff between serial attempts:
        attempt *k* (0-based) sleeps ``retry_backoff * 2**k`` seconds
        first.  ``0`` retries immediately.
    """
    if ladder is not None and libraries is None:
        libraries = ladder.libraries()
    libs = libraries if libraries is not None else _default_libraries()
    # Content key: the features of every design depend on the whole
    # library set (the gate one-hot spans the merged vocabulary), so
    # the cache keys on a digest of all of it, not just the node label.
    lib_digest = library_set_digest(libs)
    ladder_spec = ladder.spec if ladder is not None else None

    cache = FlowCache(cache_dir)
    results: Dict[int, DesignData] = {}
    misses: List[int] = []
    for i, (name, node) in enumerate(names):
        cached = cache.load(name, node, scale, resolution, seed,
                            lib_digest) if use_cache else None
        if cached is not None:
            results[i] = cached
        else:
            misses.append(i)

    pool_failed: Dict[int, BaseException] = {}
    if misses and workers > 1:
        tasks = {i: (names[i][0], names[i][1], scale, resolution, seed,
                     ladder_spec)
                 for i in misses}
        done, pool_failed = _run_parallel(tasks, workers)
        for i, (design, worker_timings) in done.items():
            results[i] = design
            # Fold the worker's per-phase accumulators into this
            # process's registry: subprocess flow time would otherwise
            # vanish from every timing report.
            merge_timings(worker_timings)
        # Anything that failed in the pool is retried serially below
        # (with backoff), which either recovers it — pool-specific or
        # transient failure — or pins the error on a named design.
        misses_serial = sorted(pool_failed)
    else:
        misses_serial = misses

    if misses_serial:
        from .pnr import PnRFlow

        flow = PnRFlow(libs,
                       vocab=vocab or GateVocabulary(list(libs.values())),
                       resolution=resolution, scale=scale, seed=seed)
        errors: List[Tuple[str, str, BaseException]] = []
        for i in misses_serial:
            name, node = names[i]
            # A pool failure consumed the design's first attempt; a
            # fresh serial miss gets its first attempt here.  Either
            # way up to ``retries`` further attempts follow, with
            # exponential backoff (base * 2^k after the k-th failure)
            # in between.
            failure: Optional[BaseException] = pool_failed.get(i)
            failed_attempts = 1 if failure is not None else 0
            while failed_attempts <= retries:
                if failed_attempts and retry_backoff > 0:
                    _sleep(retry_backoff * (2 ** (failed_attempts - 1)))
                try:
                    results[i] = flow.run(name, node)
                    failure = None
                    break
                # repro-check: disable=bare-except -- collects per-design causes to re-raise as one FlowBuildError naming every failed (name, node)
                except Exception as exc:
                    failure = exc
                    failed_attempts += 1
            if failure is not None:
                errors.append((name, node, failure))
        if errors:
            raise FlowBuildError(errors)

    if use_cache:
        for i in misses:
            cache.store(results[i], scale, resolution, seed, lib_digest)
    return [results[i] for i in range(len(names))]
