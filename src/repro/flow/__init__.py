"""End-to-end data-generation flow and dataset containers."""

from .dataset import (
    DesignData,
    dataset_statistics,
    load_design_data,
    save_design_data,
)
from .pnr import PnRFlow, run_flow

__all__ = [
    "DesignData",
    "PnRFlow",
    "dataset_statistics",
    "load_design_data",
    "run_flow",
    "save_design_data",
]
