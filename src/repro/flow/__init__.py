"""End-to-end data-generation flow, caching, and dataset containers."""

from .cache import (
    CODE_SALT,
    FlowBuildError,
    FlowCache,
    build_designs,
    default_cache_dir,
)
from .dataset import (
    DesignData,
    dataset_statistics,
    load_design_data,
    save_design_data,
)
from .pnr import PnRFlow, run_flow

__all__ = [
    "CODE_SALT",
    "DesignData",
    "FlowBuildError",
    "FlowCache",
    "PnRFlow",
    "build_designs",
    "dataset_statistics",
    "default_cache_dir",
    "load_design_data",
    "run_flow",
    "save_design_data",
]
