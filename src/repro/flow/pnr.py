"""The full data-generation flow (Genus + Innovus stand-in).

Per design: synthesise (tech map) -> place -> *snapshot the pre-route
netlist* (this is what the timing predictor sees) -> timing-optimize
(restructuring) -> route -> signoff STA (this produces the labels).

The snapshot/label separation reproduces the paper's setting exactly:
the model's input graph differs from the netlist that generated its
labels, so the predictor must be restructuring-tolerant (Section 2.1).
"""

from __future__ import annotations

import time
import zlib
from typing import Dict, Optional

import numpy as np

from ..features import (
    GateVocabulary,
    cone_mask,
    encode_netlist,
    fanin_cone,
    layout_images,
)
from ..netlist import make_design, map_design
from ..opt import optimize_design
from ..place import place_design
from ..route import PreRouteEstimator, route_design
from ..sta import derive_constraints, run_sta
from ..techlib import TechLibrary
from ..util import timed
from .dataset import DesignData


class PnRFlow:
    """Runs designs through the complete synthetic flow.

    Parameters
    ----------
    libraries:
        Mapping from node string (``"130nm"`` / ``"7nm"``) to library.
    vocab:
        Merged gate vocabulary shared by every design in the experiment.
    resolution:
        Layout image resolution (pixels per side).
    scale:
        Design size multiplier forwarded to the benchmark generators.
    seed:
        Base seed; each design derives its own stream from it.
    """

    def __init__(self, libraries: Dict[str, TechLibrary],
                 vocab: Optional[GateVocabulary] = None,
                 resolution: int = 32, scale: float = 1.0,
                 seed: int = 0) -> None:
        self.libraries = libraries
        self.vocab = vocab or GateVocabulary(list(libraries.values()))
        self.resolution = resolution
        self.scale = scale
        self.seed = seed

    @timed("flow.run")
    def run(self, design_name: str, node: str) -> DesignData:
        """Run one design at one node through the flow."""
        library = self.libraries[node]
        # Stable digest, NOT ``hash()``: the builtin is randomised per
        # process (PYTHONHASHSEED), which would make flow outputs differ
        # between runs/workers and defeat content-addressed caching.
        digest = zlib.crc32(f"{design_name}@{node}".encode("utf-8"))
        design_seed = self.seed + (digest % 10_000)

        t_start = time.perf_counter()
        with timed("flow.synthesize"):
            graph_logic = make_design(design_name, scale=self.scale)
            netlist = map_design(graph_logic, library)
        with timed("flow.place"):
            floorplan = place_design(
                netlist, seed=design_seed,
                n_macros=2 if len(netlist.cells) > 60 else 0)
            clock = derive_constraints(netlist)

        # ---- Pre-route snapshot: everything the model may look at. ----
        with timed("flow.snapshot"):
            pre_report = run_sta(netlist, PreRouteEstimator(netlist), clock)
            graph = encode_netlist(netlist, self.vocab)
            images = layout_images(netlist, floorplan, self.resolution)
            masks = np.stack([
                cone_mask(netlist,
                          fanin_cone(netlist, pin),
                          floorplan, self.resolution)
                for pin in netlist.timing_endpoints()
            ]) if netlist.timing_endpoints() else np.zeros(
                (0, self.resolution, self.resolution))
            pre_route_at = np.array([
                pre_report.endpoint_arrivals.get(name, 0.0)
                for name in graph.endpoint_names
            ])

        # ---- Optimization + routing + signoff: the label generator. ----
        with timed("flow.optimize"):
            opt_result = optimize_design(netlist, floorplan)
        with timed("flow.route"):
            routed = route_design(netlist, floorplan, seed=design_seed)
        with timed("flow.signoff"):
            signoff = run_sta(netlist, routed, clock)

        labels = np.array([
            signoff.endpoint_arrivals[name]
            for name in graph.endpoint_names
        ])
        elapsed = time.perf_counter() - t_start

        return DesignData(
            name=design_name,
            node=node,
            graph=graph,
            images=images,
            cone_masks=masks,
            labels=labels,
            pre_route_at=pre_route_at,
            clock_period=clock.period,
            flow_info={
                "flow_seconds": elapsed,
                "cells_upsized": float(opt_result.cells_upsized),
                "buffers_inserted": float(opt_result.buffers_inserted),
                "wns_before_opt": float(opt_result.wns_before),
                "wns_signoff": float(signoff.wns),
            },
        )


def run_flow(design_name: str, node: str,
             libraries: Dict[str, TechLibrary],
             vocab: Optional[GateVocabulary] = None,
             resolution: int = 32, scale: float = 1.0,
             seed: int = 0) -> DesignData:
    """One-shot convenience wrapper around :class:`PnRFlow`."""
    flow = PnRFlow(libraries, vocab=vocab, resolution=resolution,
                   scale=scale, seed=seed)
    return flow.run(design_name, node)
