"""Package-wide import and call graph for the whole-program analyses.

The per-file linter cannot see that ``_flow_worker`` — three modules
away from the ``ProcessPoolExecutor.submit`` that launches it — draws
from an RNG, or that ``with trace():`` in the trainer reaches a
``.data`` mutation in the model.  This module builds the approximation
of the program those questions need:

- every module under a package root is parsed once into a
  :class:`ModuleInfo` with its import table resolved to fully
  qualified names (``np`` -> ``numpy``, ``from .pnr import PnRFlow``
  -> ``repro.flow.pnr.PnRFlow``);
- every function/method/lambda becomes a :class:`FunctionInfo` under a
  stable qualified name (``repro.flow.cache.FlowCache.store``), with
  module top-level code collected under ``<module>``;
- call expressions are resolved *best effort* to those qualified names
  (direct names, imported names, module attributes, ``self.method``,
  class instantiation -> ``__init__``) and recorded as edges.

Resolution is deliberately approximate: an attribute call on an object
of unknown type produces no edge.  For the shipped may-analyses that
is the right bias — a missed edge can miss a finding, but never
invents one — and the committed findings baseline covers the residue.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

__all__ = ["FunctionInfo", "ModuleInfo", "Program", "WorkerSite"]


@dataclass
class FunctionInfo:
    """One function, method, or lambda in the program."""

    qualname: str                  # repro.flow.cache.FlowCache.store
    module: str                    # repro.flow.cache
    node: ast.AST                  # FunctionDef / AsyncFunctionDef / Lambda
    lineno: int
    class_name: Optional[str] = None
    calls: Set[str] = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed module with its import table."""

    name: str                      # repro.flow.cache
    path: Path
    display: str                   # path as shown in findings
    tree: ast.Module
    #: local name -> fully qualified target ("np" -> "numpy").
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level names assigned at the top level (globals).
    global_names: Set[str] = field(default_factory=set)


class WorkerSite:
    """One call that hands a callable to a worker pool or thread."""

    __slots__ = ("kind", "caller", "call", "target_node", "target_qualname",
                 "lineno", "module")

    def __init__(self, kind: str, caller: str, call: ast.Call,
                 target_node: Optional[ast.AST],
                 target_qualname: Optional[str], module: str) -> None:
        self.kind = kind              # "process" | "thread" | "unknown"
        self.caller = caller          # qualname of the submitting function
        self.call = call
        self.target_node = target_node
        self.target_qualname = target_qualname
        self.lineno = call.lineno
        self.module = module


def _module_name(root: Path, package: str, path: Path) -> str:
    rel = path.relative_to(root)
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + parts)


class Program:
    """The parsed package: modules, functions, and resolved call edges."""

    def __init__(self, package: str, root: Path) -> None:
        self.package = package
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: id(def-node) -> qualname, for resolving inline lambdas etc.
        self.qualname_of_node: Dict[int, str] = {}
        #: class qualname -> set of method names.
        self.class_methods: Dict[str, Set[str]] = {}
        #: class qualname -> resolved base-class names (dotted where
        #: resolution succeeded, the raw spelling otherwise).
        self.class_bases: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, root: Union[str, Path],
              package: Optional[str] = None) -> "Program":
        """Parse every ``.py`` under ``root`` (a package directory)."""
        root = Path(root).resolve()
        package = package or root.name
        program = cls(package, root)
        for path in sorted(root.rglob("*.py")):
            name = _module_name(root, package, path)
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, UnicodeDecodeError, SyntaxError):
                continue   # the linter reports unparseable files
            try:
                display = str(path.relative_to(Path.cwd()))
            except ValueError:
                display = str(path)
            module = ModuleInfo(name=name, path=path, display=display,
                                tree=tree)
            program.modules[name] = module
            program._index_imports(module)
            program._index_definitions(module)
        for module in program.modules.values():
            program._index_calls(module)
        return program

    # -- pass 1: imports and definitions --------------------------------
    def _index_imports(self, module: ModuleInfo) -> None:
        pkg_parts = module.name.split(".")
        is_package = (module.path.name == "__init__.py")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname \
                        else alias.name.split(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # Relative import: drop `level` trailing components
                    # (a package module counts as its own level-1 base).
                    base_parts = pkg_parts if is_package \
                        else pkg_parts[:-1]
                    if node.level > 1:
                        base_parts = base_parts[:len(base_parts)
                                                - (node.level - 1)]
                    base = ".".join(base_parts)
                    prefix = f"{base}.{node.module}" if node.module \
                        else base
                else:
                    prefix = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{prefix}.{alias.name}" \
                        if prefix else alias.name

    def _index_definitions(self, module: ModuleInfo) -> None:
        program = self

        class Indexer(ast.NodeVisitor):
            def __init__(self) -> None:
                self.scope: List[str] = []
                self.class_stack: List[str] = []

            def _register(self, node: ast.AST, name: str) -> None:
                qualname = ".".join([module.name] + self.scope + [name])
                info = FunctionInfo(
                    qualname=qualname, module=module.name, node=node,
                    lineno=getattr(node, "lineno", 0),
                    class_name=self.class_stack[-1]
                    if self.class_stack else None,
                )
                program.functions[qualname] = info
                program.qualname_of_node[id(node)] = qualname

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                self._register(node, node.name)
                self.scope.append(node.name)
                self.generic_visit(node)
                self.scope.pop()

            def visit_AsyncFunctionDef(self, node) -> None:
                self.visit_FunctionDef(node)

            def visit_Lambda(self, node: ast.Lambda) -> None:
                self._register(node, f"<lambda@{node.lineno}>")
                self.generic_visit(node)

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                class_qual = ".".join([module.name] + self.scope
                                      + [node.name])
                methods = {n.name for n in node.body
                           if isinstance(n, (ast.FunctionDef,
                                             ast.AsyncFunctionDef))}
                program.class_methods[class_qual] = methods
                bases = []
                for base in node.bases:
                    resolved = program.resolve_dotted(module, base)
                    if resolved is None and isinstance(base, ast.Name):
                        resolved = base.id
                    if resolved is not None:
                        bases.append(resolved)
                program.class_bases[class_qual] = bases
                self.scope.append(node.name)
                self.class_stack.append(node.name)
                self.generic_visit(node)
                self.class_stack.pop()
                self.scope.pop()

        Indexer().visit(module.tree)
        # Top-level code (including top-level assignment targets).
        top = FunctionInfo(qualname=f"{module.name}.<module>",
                           module=module.name, node=module.tree, lineno=1)
        self.functions[top.qualname] = top
        self.qualname_of_node[id(module.tree)] = top.qualname
        for node in module.tree.body:
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    module.global_names.add(target.id)

    # -- name resolution -------------------------------------------------
    def resolve_dotted(self, module: ModuleInfo, node: ast.AST,
                       class_name: Optional[str] = None) -> Optional[str]:
        """Fully qualified dotted name for a Name/Attribute chain.

        ``np.random.default_rng`` -> ``numpy.random.default_rng``;
        ``self.method`` (inside a class) -> the method's qualname;
        unresolvable chains -> None.
        """
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        head = cursor.id
        parts.append(head)
        parts.reverse()

        if head == "self" and class_name is not None and len(parts) >= 2:
            class_qual = f"{module.name}.{class_name}"
            if parts[1] in self.class_methods.get(class_qual, ()):  # method
                return ".".join([class_qual] + parts[1:])
            return None
        target = module.imports.get(head)
        if target is not None:
            return ".".join([target] + parts[1:])
        # A name defined in this module (function, class, global).
        local = f"{module.name}.{head}"
        if local in self.functions or local in self.class_methods \
                or head in module.global_names:
            return ".".join([local] + parts[1:])
        return None

    def canonicalize(self, name: str, _depth: int = 0) -> str:
        """Chase re-export aliases: ``repro.util.reset_timings`` (a
        ``from .timing import reset_timings`` in the package __init__)
        canonicalizes to ``repro.util.timing.reset_timings``."""
        if name in self.functions or name in self.class_methods \
                or _depth > 8:
            return name
        parts = name.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            module = self.modules.get(prefix)
            if module is None:
                continue
            target = module.imports.get(parts[i])
            if target is not None:
                return self.canonicalize(
                    ".".join([target] + parts[i + 1:]), _depth + 1)
            break
        return name

    def _callable_qualname(self, resolved: Optional[str]) -> Optional[str]:
        """Map a resolved dotted name onto a known function, if any."""
        if resolved is None:
            return None
        resolved = self.canonicalize(resolved)
        if resolved in self.functions:
            return resolved
        if resolved in self.class_methods:
            init = f"{resolved}.__init__"
            return init if init in self.functions else resolved
        return resolved   # external (numpy.random.default_rng, ...)

    # -- pass 2: call edges ----------------------------------------------
    def _index_calls(self, module: ModuleInfo) -> None:
        program = self

        class CallIndexer(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: List[FunctionInfo] = [
                    program.functions[f"{module.name}.<module>"]]
                self.class_stack: List[str] = []

            def _enter(self, node: ast.AST) -> Optional[FunctionInfo]:
                qualname = program.qualname_of_node.get(id(node))
                return program.functions.get(qualname) \
                    if qualname else None

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                self.class_stack.append(node.name)
                self.generic_visit(node)
                self.class_stack.pop()

            def visit_FunctionDef(self, node) -> None:
                info = self._enter(node)
                if info is None:   # pragma: no cover - defensive
                    return
                self.stack.append(info)
                self.generic_visit(node)
                self.stack.pop()

            def visit_AsyncFunctionDef(self, node) -> None:
                self.visit_FunctionDef(node)

            def visit_Lambda(self, node: ast.Lambda) -> None:
                self.visit_FunctionDef(node)

            def visit_Call(self, node: ast.Call) -> None:
                caller = self.stack[-1]
                resolved = program.resolve_dotted(
                    module, node.func,
                    self.class_stack[-1] if self.class_stack else None)
                target = program._callable_qualname(resolved)
                if target is not None:
                    caller.calls.add(target)
                self.generic_visit(node)

        CallIndexer().visit(module.tree)

    # -- queries ---------------------------------------------------------
    def reachable(self, seeds: Iterable[str]) -> Set[str]:
        """Transitive closure of call edges from ``seeds`` (inclusive).

        Instantiating a class pulls in *all* of its methods: an object
        built inside a worker may have any method invoked there, and
        the may-analyses want that over-approximation.
        """
        seen: Set[str] = set()
        stack = [s for s in seeds if s is not None]
        while stack:
            name = self.canonicalize(stack.pop())
            if name in seen:
                continue
            seen.add(name)
            # Instantiating a class makes every method callable on the
            # resulting object: expand the class behind a name (or
            # behind its resolved ``__init__``).
            base = name[:-len(".__init__")] \
                if name.endswith(".__init__") else name
            if base in self.class_methods:
                for method in self.class_methods[base]:
                    stack.append(f"{base}.{method}")
            info = self.functions.get(name)
            if info is None:
                continue
            for callee in info.calls:
                if callee not in seen:
                    stack.append(callee)
        return seen

    def functions_in(self, names: Set[str]) -> List[FunctionInfo]:
        return [info for qual, info in self.functions.items()
                if qual in names]

    # -- worker-pool discovery -------------------------------------------
    _POOL_HINTS: Tuple[str, ...] = ("pool", "executor", "ex")

    def worker_sites(self) -> List[WorkerSite]:
        """Every discovered submit/Thread/Process hand-off in the program."""
        sites: List[WorkerSite] = []
        for module in self.modules.values():
            sites.extend(self._worker_sites_in(module))
        return sites

    def _worker_sites_in(self, module: ModuleInfo) -> List[WorkerSite]:
        program = self
        sites: List[WorkerSite] = []

        class Finder(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: List[str] = [f"{module.name}.<module>"]
                self.class_stack: List[str] = []
                #: variable name -> "process" | "thread" pool kind.
                self.pool_vars: Dict[str, str] = {}
                #: variables bound to multiprocessing.get_context(...):
                #: `ctx.Process(target=...)` is a process hand-off even
                #: though `ctx` itself resolves to nothing importable.
                self.ctx_vars: Set[str] = set()

            def visit_ClassDef(self, node: ast.ClassDef) -> None:
                self.class_stack.append(node.name)
                self.generic_visit(node)
                self.class_stack.pop()

            def visit_FunctionDef(self, node) -> None:
                qualname = program.qualname_of_node.get(id(node))
                self.stack.append(qualname or self.stack[-1])
                self.generic_visit(node)
                self.stack.pop()

            visit_AsyncFunctionDef = visit_FunctionDef

            def _pool_kind_of_expr(self, expr: ast.AST) -> Optional[str]:
                if not isinstance(expr, ast.Call):
                    return None
                resolved = program.resolve_dotted(
                    module, expr.func,
                    self.class_stack[-1] if self.class_stack else None)
                if resolved is None and isinstance(expr.func, ast.Name):
                    resolved = expr.func.id
                if resolved is None:
                    return None
                leaf = resolved.rsplit(".", 1)[-1]
                if leaf == "ProcessPoolExecutor" or resolved.startswith(
                        "multiprocessing"):
                    return "process"
                if leaf == "ThreadPoolExecutor":
                    return "thread"
                return None

            def _note_binding(self, target: ast.AST,
                              value: ast.AST) -> None:
                kind = self._pool_kind_of_expr(value)
                if kind and isinstance(target, ast.Name):
                    self.pool_vars[target.id] = kind
                if isinstance(target, ast.Name) \
                        and isinstance(value, ast.Call):
                    resolved = program.resolve_dotted(
                        module, value.func,
                        self.class_stack[-1] if self.class_stack
                        else None) or ""
                    if resolved.rsplit(".", 1)[-1] == "get_context":
                        self.ctx_vars.add(target.id)

            def visit_Assign(self, node: ast.Assign) -> None:
                for target in node.targets:
                    self._note_binding(target, node.value)
                self.generic_visit(node)

            def visit_With(self, node) -> None:
                for item in node.items:
                    if item.optional_vars is not None:
                        self._note_binding(item.optional_vars,
                                           item.context_expr)
                self.generic_visit(node)

            visit_AsyncWith = visit_With

            def visit_Call(self, node: ast.Call) -> None:
                self.generic_visit(node)
                target_node: Optional[ast.AST] = None
                kind = "unknown"
                func = node.func
                if isinstance(func, ast.Attribute):
                    recv = func.value
                    recv_name = recv.id if isinstance(recv, ast.Name) \
                        else ""
                    recv_kind = self.pool_vars.get(recv_name)
                    if func.attr in ("submit", "apply_async"):
                        if node.args:
                            target_node = node.args[0]
                        kind = recv_kind or "process"
                    elif func.attr == "map" and (
                            recv_kind is not None
                            or any(h in recv_name.lower()
                                   for h in Program._POOL_HINTS)):
                        if node.args:
                            target_node = node.args[0]
                        kind = recv_kind or "unknown"
                if target_node is None:
                    # Constructor hand-offs — both the bare-name and the
                    # ``threading.Thread`` attribute spellings.
                    resolved = program.resolve_dotted(
                        module, func,
                        self.class_stack[-1] if self.class_stack
                        else None) or ""
                    leaf = resolved.rsplit(".", 1)[-1]
                    ctx_process = (isinstance(func, ast.Attribute)
                                   and func.attr == "Process"
                                   and isinstance(func.value, ast.Name)
                                   and func.value.id in self.ctx_vars)
                    if leaf in ("Thread", "Process") or ctx_process \
                            or resolved in ("threading.Thread",
                                            "multiprocessing.Process"):
                        for kw in node.keywords:
                            if kw.arg == "target":
                                target_node = kw.value
                        kind = "process" \
                            if leaf == "Process" or ctx_process \
                            else "thread"
                if target_node is None:
                    return
                target_qual = program.qualname_of_node.get(
                    id(target_node))
                if target_qual is None:
                    resolved = program.resolve_dotted(
                        module, target_node,
                        self.class_stack[-1] if self.class_stack
                        else None)
                    target_qual = program._callable_qualname(resolved)
                sites.append(WorkerSite(
                    kind=kind, caller=self.stack[-1], call=node,
                    target_node=target_node,
                    target_qualname=target_qual, module=module.name))

        Finder().visit(module.tree)
        return sites

    #: stdlib bases whose subclasses run their methods on server worker
    #: threads (one per connection/request) — a ``ThreadingHTTPServer``
    #: handler's ``do_GET`` is as worker-reachable as a ``Thread``
    #: target, just dispatched by the socketserver machinery instead of
    #: an explicit hand-off the Finder could see.
    _THREADED_BASES: Tuple[str, ...] = (
        "socketserver.ThreadingMixIn",
        "socketserver.ThreadingTCPServer",
        "socketserver.ThreadingUDPServer",
        "http.server.ThreadingHTTPServer",
        "http.server.BaseHTTPRequestHandler",
    )

    def threaded_handler_classes(self) -> Set[str]:
        """Program classes whose methods run on server worker threads:
        subclasses (transitively, within the program) of the threading
        socketserver/http.server bases."""
        out: Set[str] = set()

        def is_threaded(qual: str, depth: int = 0) -> bool:
            if depth > 8:
                return False
            for base in self.class_bases.get(qual, ()):
                base = self.canonicalize(base)
                if base in self._THREADED_BASES \
                        or base.rsplit(".", 1)[-1] == "ThreadingMixIn":
                    return True
                if base in self.class_bases \
                        and is_threaded(base, depth + 1):
                    return True
            return False

        for qual in self.class_bases:
            if is_threaded(qual):
                out.add(qual)
        return out

    # ------------------------------------------------------------------
    def worker_reachable(self) -> Set[str]:
        """Qualnames of every function reachable from a worker target
        (explicit submit/Thread/Process hand-offs plus the methods of
        threaded server handler classes)."""
        seeds = [site.target_qualname for site in self.worker_sites()
                 if site.target_qualname is not None]
        for class_qual in self.threaded_handler_classes():
            for method in self.class_methods.get(class_qual, ()):
                seeds.append(f"{class_qual}.{method}")
        return self.reachable(seeds)
