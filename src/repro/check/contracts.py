"""Static tensor-contract checker for recorded compile traces.

The compile layer replays a recorded tape bit-for-bit — which means
any structural defect in the trace (a dtype that silently narrowed, an
output shape that does not follow from its inputs, an output buffer
aliasing an input it should not) replays forever.  This module
abstractly interprets a tape through the shape/dtype records exported
by :func:`repro.nn.compile.tape_metadata` and fails on those defects
**without executing a training step**: no :class:`CompiledStep`, no
replay, no backward.

Three layers of checking per recorded op:

- **dtype discipline** (central): the engine contract is float64 end to
  end, so a floating output narrower than its widest floating input is
  a silent-precision bug;
- **aliasing discipline** (central): only the view ops (``reshape``,
  ``transpose``, ``getitem``) may return a buffer sharing memory with
  an input — anywhere else, a kernel writing through that buffer on
  replay would corrupt its own operand;
- **shape contract** (per-op, registered in :data:`CONTRACTS`): the
  output shape must follow from the input shapes and attrs under the
  op's documented rule.  Coverage is audited: a kernel registered in
  ``compile.KERNELS`` with no contract here is itself a finding, so new
  ops cannot silently opt out.

``run_contract_checks`` drives the whole suite over every gradcheck
case: each case is traced (eager forward only) and its tape validated.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .rules import Finding

#: Ops whose output is *expected* to be a view of input 0.
VIEW_OPS = frozenset({"reshape", "transpose", "getitem"})

#: op name -> shape contract.  A contract receives a
#: :class:`repro.nn.compile.TraceOp` and returns an error message, or
#: None when the record satisfies the op's shape rule.
CONTRACTS: Dict[str, Callable[..., Optional[str]]] = {}


def contract(*ops: str):
    """Decorator registering one shape contract for the named ops."""

    def register(fn: Callable[..., Optional[str]]):
        for op in ops:
            if op in CONTRACTS:
                raise ValueError(f"duplicate contract for op {op!r}")
            CONTRACTS[op] = fn
        return fn

    return register


def _broadcast(shapes: Sequence[Tuple[int, ...]]) -> Optional[Tuple[int, ...]]:
    try:
        return tuple(np.broadcast_shapes(*shapes))
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Shape contracts
# ----------------------------------------------------------------------
@contract("add", "mul", "truediv")
def _c_elementwise(rec) -> Optional[str]:
    expected = _broadcast(rec.in_shapes)
    if expected is None:
        return (f"inputs {rec.in_shapes} do not broadcast (shape "
                "unification failed)")
    if rec.out_shape != expected:
        return (f"output shape {rec.out_shape} != broadcast of inputs "
                f"{expected}")
    return None


@contract("neg", "relu", "tanh", "sigmoid", "exp", "log", "softplus",
          "abs", "clip", "log_softmax", "pow")
def _c_unary(rec) -> Optional[str]:
    if rec.out_shape != rec.in_shapes[0]:
        return (f"elementwise op changed shape: {rec.in_shapes[0]} -> "
                f"{rec.out_shape}")
    return None


@contract("matmul")
def _c_matmul(rec) -> Optional[str]:
    a, b = rec.in_shapes
    if not a or not b:
        return f"matmul on 0-d operand: {a} @ {b}"
    a2 = (1,) + a if len(a) == 1 else a
    b2 = b + (1,) if len(b) == 1 else b
    if a2[-1] != b2[-2]:
        return (f"matmul inner dimensions disagree: {a} @ {b} "
                f"({a2[-1]} vs {b2[-2]})")
    batch = _broadcast([a2[:-2], b2[:-2]])
    if batch is None:
        return f"matmul batch dimensions do not broadcast: {a} @ {b}"
    expected = batch + (a2[-2], b2[-1])
    if len(a) == 1:
        expected = expected[:-2] + (expected[-1],)
    if len(b) == 1:
        expected = expected[:-1]
    if rec.out_shape != expected:
        return (f"matmul output shape {rec.out_shape} != {expected} "
                f"for {a} @ {b}")
    return None


@contract("sum", "max")
def _c_reduce(rec) -> Optional[str]:
    axis = rec.attrs.get("axis")
    keepdims = bool(rec.attrs.get("keepdims", False))
    shape = rec.in_shapes[0]
    if axis is None:
        axes = tuple(range(len(shape)))
    elif isinstance(axis, (tuple, list)):
        axes = tuple(a % len(shape) for a in axis)
    else:
        axes = (axis % len(shape),)
    if keepdims:
        expected = tuple(1 if i in axes else d
                         for i, d in enumerate(shape))
    else:
        expected = tuple(d for i, d in enumerate(shape)
                         if i not in axes)
    if rec.out_shape != expected:
        return (f"{rec.op}(axis={axis}, keepdims={keepdims}) on "
                f"{shape} should yield {expected}, recorded "
                f"{rec.out_shape}")
    return None


@contract("reshape")
def _c_reshape(rec) -> Optional[str]:
    if int(np.prod(rec.in_shapes[0], dtype=np.int64)) != \
            int(np.prod(rec.out_shape, dtype=np.int64)):
        return (f"reshape changes element count: {rec.in_shapes[0]} -> "
                f"{rec.out_shape}")
    return None


@contract("transpose")
def _c_transpose(rec) -> Optional[str]:
    shape = rec.in_shapes[0]
    axes = rec.attrs.get("axes")
    if axes is None:
        expected = tuple(reversed(shape))
    else:
        if sorted(a % len(shape) for a in axes) != list(range(len(shape))):
            return f"transpose axes {axes} are not a permutation"
        expected = tuple(shape[a] for a in axes)
    if rec.out_shape != expected:
        return (f"transpose({axes}) on {shape} should yield "
                f"{expected}, recorded {rec.out_shape}")
    return None


@contract("getitem")
def _c_getitem(rec) -> Optional[str]:
    # The recorded index can be any numpy fancy-indexing object; the
    # output shape is not reconstructed here.  The central dtype and
    # aliasing checks still apply.
    return None


@contract("concatenate")
def _c_concatenate(rec) -> Optional[str]:
    axis = rec.attrs.get("axis", 0)
    shapes = rec.in_shapes
    ndim = len(shapes[0])
    axis = axis % ndim
    for shape in shapes[1:]:
        if len(shape) != ndim:
            return f"concatenate rank mismatch: {shapes}"
        if any(shape[i] != shapes[0][i]
               for i in range(ndim) if i != axis):
            return (f"concatenate off-axis dimensions disagree: "
                    f"{shapes} along axis {axis}")
    total = sum(shape[axis] for shape in shapes)
    expected = shapes[0][:axis] + (total,) + shapes[0][axis + 1:]
    if rec.out_shape != expected:
        return (f"concatenate along axis {axis} of {shapes} should "
                f"yield {expected}, recorded {rec.out_shape}")
    return None


@contract("stack")
def _c_stack(rec) -> Optional[str]:
    axis = rec.attrs.get("axis", 0)
    shapes = rec.in_shapes
    if any(shape != shapes[0] for shape in shapes[1:]):
        return f"stack inputs disagree in shape: {shapes}"
    axis = axis % (len(shapes[0]) + 1)
    expected = shapes[0][:axis] + (len(shapes),) + shapes[0][axis:]
    if rec.out_shape != expected:
        return (f"stack of {len(shapes)} x {shapes[0]} along axis "
                f"{axis} should yield {expected}, recorded "
                f"{rec.out_shape}")
    return None


@contract("where")
def _c_where(rec) -> Optional[str]:
    shapes = list(rec.in_shapes)
    cond = rec.attrs.get("cond")
    if cond is not None and hasattr(cond, "shape"):
        shapes.append(tuple(cond.shape))
    expected = _broadcast(shapes)
    if expected is None:
        return f"where operands do not broadcast: {shapes}"
    if rec.out_shape != expected:
        return (f"where output shape {rec.out_shape} != broadcast "
                f"{expected}")
    return None


@contract("gather_rows")
def _c_gather_rows(rec) -> Optional[str]:
    index = rec.attrs.get("index")
    if index is None or not hasattr(index, "shape"):
        return "gather_rows record carries no index attr"
    expected = tuple(index.shape) + rec.in_shapes[0][1:]
    if rec.out_shape != expected:
        return (f"gather_rows of {len(index)} rows from "
                f"{rec.in_shapes[0]} should yield {expected}, recorded "
                f"{rec.out_shape}")
    return None


@contract("scatter_add_rows")
def _c_scatter_add_rows(rec) -> Optional[str]:
    num_rows = rec.attrs.get("num_rows")
    if num_rows is None:
        return "scatter_add_rows record carries no num_rows attr"
    expected = (int(num_rows),) + rec.in_shapes[0][1:]
    if rec.out_shape != expected:
        return (f"scatter_add_rows into {num_rows} rows from "
                f"{rec.in_shapes[0]} should yield {expected}, recorded "
                f"{rec.out_shape}")
    return None


def _pool_hw(h: int, w: int, kernel: int, stride: int) -> Tuple[int, int]:
    return (h - kernel) // stride + 1, (w - kernel) // stride + 1


@contract("conv2d")
def _c_conv2d(rec) -> Optional[str]:
    x, weight = rec.in_shapes[0], rec.in_shapes[1]
    if len(x) != 4 or len(weight) != 4:
        return f"conv2d expects NCHW x and OIKK weight, got {x}, {weight}"
    n, c_in, h, w = x
    c_out, c_in_w, kh, kw = weight
    if c_in != c_in_w:
        return (f"conv2d channel mismatch: input has {c_in}, weight "
                f"expects {c_in_w}")
    stride = int(rec.attrs.get("stride", 1))
    padding = int(rec.attrs.get("padding", 0))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    expected = (n, c_out, oh, ow)
    if rec.out_shape != expected:
        return (f"conv2d on {x} with weight {weight} (stride={stride}, "
                f"padding={padding}) should yield {expected}, recorded "
                f"{rec.out_shape}")
    return None


@contract("max_pool2d", "avg_pool2d")
def _c_pool2d(rec) -> Optional[str]:
    x = rec.in_shapes[0]
    if len(x) != 4:
        return f"{rec.op} expects NCHW input, got {x}"
    kernel = int(rec.attrs.get("kernel", 2))
    stride = int(rec.attrs.get("stride") or kernel)
    oh, ow = _pool_hw(x[2], x[3], kernel, stride)
    expected = (x[0], x[1], oh, ow)
    if rec.out_shape != expected:
        return (f"{rec.op}(kernel={kernel}, stride={stride}) on {x} "
                f"should yield {expected}, recorded {rec.out_shape}")
    return None


@contract("levelized_sweep")
def _c_levelized_sweep(rec) -> Optional[str]:
    s, w_net, w_cell = rec.in_shapes
    if len(s) != 2 or len(w_net) != 2 or len(w_cell) != 2:
        return (f"levelized_sweep expects 2-d state and weights, got "
                f"{rec.in_shapes}")
    hidden = s[1]
    if w_net != (hidden, hidden) or w_cell != (hidden, hidden):
        return (f"levelized_sweep weights must be ({hidden}, {hidden}) "
                f"to match state {s}; got {w_net} and {w_cell}")
    num_nodes = rec.attrs.get("num_nodes")
    expected = (int(num_nodes), hidden) if num_nodes is not None else s
    if rec.out_shape != expected:
        return (f"levelized_sweep on state {s} should yield {expected}, "
                f"recorded {rec.out_shape}")
    return None


# ----------------------------------------------------------------------
# Central checks + driver
# ----------------------------------------------------------------------
def check_records(records, label: str) -> List[Finding]:
    """Validate one tape's metadata records; empty list = clean."""
    from ..nn.compile import KERNELS

    findings: List[Finding] = []

    def report(rec, message: str) -> None:
        findings.append(Finding(
            "tensor-contract", label, rec.index,
            f"op {rec.index} ({rec.op}): {message}"))

    for rec in records:
        if rec.op not in KERNELS:
            report(rec, "op has no registered compile kernel; the tape "
                        "cannot compile")
            continue
        # Dtype discipline: a floating output narrower than its widest
        # floating input silently loses precision on every replay.
        float_ins = [d for d in rec.in_dtypes
                     if np.issubdtype(d, np.floating)]
        if float_ins and np.issubdtype(rec.out_dtype, np.floating):
            widest = max(d.itemsize for d in float_ins)
            if rec.out_dtype.itemsize < widest:
                report(rec, f"dtype narrowed: inputs "
                            f"{[str(d) for d in rec.in_dtypes]} -> "
                            f"output {rec.out_dtype}")
        # Aliasing discipline: only view ops may return a buffer that
        # shares memory with an input.
        if rec.op not in VIEW_OPS and any(rec.aliases):
            shared = [i for i, a in enumerate(rec.aliases) if a]
            report(rec, f"output buffer aliases input(s) {shared} but "
                        f"{rec.op} is not a view op; replay would "
                        "overwrite its own operand")
        checker = CONTRACTS.get(rec.op)
        if checker is not None:
            problem = checker(rec)
            if problem is not None:
                report(rec, problem)
    return findings


def audit_contract_coverage() -> List[Finding]:
    """Every registered compile kernel needs a shape/dtype contract."""
    from ..nn.compile import KERNELS

    findings: List[Finding] = []
    for op in sorted(KERNELS):
        if op not in CONTRACTS:
            findings.append(Finding(
                "contract-coverage", f"repro.nn.compile.{op}", 0,
                f"compile kernel '{op}' has no shape/dtype contract; "
                "register one with @repro.check.contracts.contract",
            ))
    return findings


def check_case_trace(op_case) -> List[Finding]:
    """Trace one gradcheck case (eager forward only) and validate it."""
    from ..nn import Tensor
    from ..nn import compile as nc

    fn, inputs = op_case.build()
    tensors = {name: Tensor(np.asarray(value, dtype=np.float64).copy(),
                            requires_grad=True)
               for name, value in inputs.items()}
    label = f"{op_case.op}:{op_case.label}"
    with nc.trace() as tape:
        out = fn(**tensors)
        if not isinstance(out, Tensor):
            return []   # gradcheck already reports the wrong return type
        coeff = (np.arange(out.data.size, dtype=np.float64)
                 .reshape(out.data.shape) * 0.17 + 0.3)
        (out * Tensor(coeff)).sum()
    if tape.poison_reason is not None:
        return []       # legitimately untraceable (e.g. dropout)
    return check_records(nc.tape_metadata(tape), label)


def run_contract_checks() -> List[Finding]:
    """Coverage audit + trace validation of every gradcheck case."""
    from .gradcheck import CASES

    findings = audit_contract_coverage()
    for op_case in CASES:
        findings.extend(check_case_trace(op_case))
    return findings
