"""The shipped whole-program analyses (``repro check --dataflow``).

Four may-analyses run over the :class:`~repro.check.callgraph.Program`
call graph, using the CFG + dataflow engine from
:mod:`repro.check.dataflow` for the intra-function parts:

``rng-stream``
    RNG draw order must be deterministic: no unseeded ``default_rng()``
    and no draws from module-global generators inside code reachable
    from a worker-pool target (per-worker draw interleaving is
    scheduler-dependent), and no draws inside iteration whose order is
    not fixed (``set`` iteration, ``as_completed``).

``parallel-safety``
    Nothing mutable crosses a worker boundary by accident: closures
    handed to pools must not capture mutable shared state, live RNGs /
    open file handles must not be submitted to process pools, and
    worker-reachable code must not mutate module globals.

``artifact-atomicity``
    Run artifacts (``*.json`` / ``*.jsonl`` / ``*.npz``) are written
    atomically: any function that writes one without also performing an
    ``os.replace``-style rename (the signature of the stage-then-swap
    helpers) is flagged.

``trace-safety``
    While a compile trace is recording, tensor buffers are load-bearing:
    ``.data`` mutation reachable from a ``with trace():`` block corrupts
    the recorded program, and ``backward()`` under ``no_grad()`` is a
    contradiction.

All four are *may*-analyses biased to miss rather than invent: an edge
the call graph cannot resolve produces no finding.  Intentional
exceptions carry inline ``# repro-check: disable=`` waivers; residual
accepted findings live in the committed baseline.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set

from .callgraph import FunctionInfo, ModuleInfo, Program, WorkerSite
from .dataflow import TagEnv, cfg_for_function
from .rules import (Finding, PROGRAM_RULES, TENSOR_DATA_WHITELIST, _dotted,
                    program_rule)

#: Draw methods of ``numpy.random.Generator`` (and legacy RandomState).
GENERATOR_DRAWS = frozenset({
    "random", "standard_normal", "normal", "uniform", "integers",
    "randint", "choice", "shuffle", "permutation", "permuted",
    "exponential", "poisson", "binomial", "beta", "gamma", "bytes",
    "rand", "randn",
})

#: Methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "setdefault", "popitem",
})

_ARTIFACT_SUFFIXES = (".json", ".jsonl", ".npz")

_MUTABLE_VALUE_CALLS = frozenset({"list", "dict", "set", "defaultdict",
                                  "OrderedDict", "Counter", "deque"})


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _is_mutable_value(expr: ast.AST) -> bool:
    if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in _MUTABLE_VALUE_CALLS)


def _top_level_assigns(module: ModuleInfo) -> Iterator[ast.AST]:
    for node in module.tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            yield node


def global_rng_names(module: ModuleInfo) -> Set[str]:
    """Module-level names bound to a numpy Generator at import time."""
    names: Set[str] = set()
    for node in _top_level_assigns(module):
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        leaf = _dotted(value.func).rpartition(".")[2]
        if leaf in ("default_rng", "RandomState"):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def mutable_global_names(module: ModuleInfo) -> Set[str]:
    """Module-level names bound to mutable containers at import time."""
    names: Set[str] = set()
    for node in _top_level_assigns(module):
        if node.value is not None and _is_mutable_value(node.value):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def make_evaluate(rng_globals: Set[str]):
    """The tag-evaluation callback feeding :class:`TagEnv`."""

    def evaluate(expr: ast.AST,
                 env: Dict[str, FrozenSet[str]]) -> FrozenSet[str]:
        if isinstance(expr, ast.Name):
            tags = env.get(expr.id, frozenset())
            if expr.id in rng_globals:
                tags = tags | {"rng", "rng-global"}
            return tags
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return frozenset({"set", "mutable"})
        if isinstance(expr, (ast.List, ast.ListComp, ast.Dict,
                             ast.DictComp)):
            return frozenset({"mutable"})
        if isinstance(expr, ast.IfExp):
            return evaluate(expr.body, env) | evaluate(expr.orelse, env)
        if isinstance(expr, ast.BoolOp):
            tags: FrozenSet[str] = frozenset()
            for value in expr.values:
                tags |= evaluate(value, env)
            return tags
        if isinstance(expr, (ast.Await, ast.NamedExpr, ast.Starred)):
            return evaluate(expr.value, env)
        if isinstance(expr, ast.Call):
            name = _dotted(expr.func)
            leaf = name.rpartition(".")[2]
            if leaf == "default_rng":
                seeded = bool(expr.args) or any(
                    kw.arg == "seed" for kw in expr.keywords)
                return frozenset({"rng"}) if seeded \
                    else frozenset({"rng", "rng-unseeded"})
            if leaf == "RandomState":
                return frozenset({"rng"})
            if name == "open":
                return frozenset({"file"})
            if leaf in ("set", "frozenset") and not name.startswith("self."):
                return frozenset({"set"})
            if leaf == "as_completed":
                return frozenset({"unordered"})
            if leaf in ("sorted", "list", "tuple"):
                # Ordering-fixing wrappers launder the unordered tags.
                inner: FrozenSet[str] = frozenset()
                for arg in expr.args:
                    inner |= evaluate(arg, env)
                return inner - {"set", "unordered", "mutable"}
            if leaf == "spawn" and isinstance(expr.func, ast.Attribute):
                # Generator.spawn() yields child generators.
                base = evaluate(expr.func.value, env)
                if "rng" in base:
                    return frozenset({"rng"})
            return frozenset()
        return frozenset()

    return evaluate


def _statements_under(stmts: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement nested under ``stmts``, not descending into
    nested function/class definitions (they are analysed separately)."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, field_name, None)
            if inner:
                yield from _statements_under(inner)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _statements_under(handler.body)
        for case in getattr(stmt, "cases", []) or []:
            yield from _statements_under(case.body)


def _own_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expressions evaluated *at* this statement (compound statements
    own only their header; their bodies are separate CFG statements)."""
    if isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef, ast.Try)):
        return
    elif hasattr(ast, "Match") and isinstance(stmt, ast.Match):
        yield stmt.subject
    else:
        yield stmt


def _rng_draws(root: ast.AST, env: Dict[str, FrozenSet[str]],
               rng_globals: Set[str]) -> Iterator[ast.Call]:
    """Calls in ``root`` that draw from an rng-tagged receiver."""
    for node in ast.walk(root):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in GENERATOR_DRAWS):
            continue
        base = node.func.value
        if not isinstance(base, ast.Name):
            continue
        tags = env.get(base.id, frozenset())
        if base.id in rng_globals:
            tags = tags | {"rng", "rng-global"}
        if "rng" in tags:
            yield node


def _function_facts(info: FunctionInfo, rng_globals: Set[str]):
    """(cfg, id(stmt)->env) for one function, or None when unbuildable."""
    if not isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
        return None
    try:
        cfg = cfg_for_function(info.node)
        facts = TagEnv(make_evaluate(rng_globals)).statement_facts(cfg)
    except (RuntimeError, RecursionError):  # pragma: no cover - guard
        return None
    return cfg, facts


def _bound_names(node: ast.AST) -> Set[str]:
    """Parameter and locally-assigned names of a function node."""
    bound: Set[str] = set()
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.Lambda)):
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            bound.add(arg.arg)
    body = node.body if isinstance(node.body, list) else [ast.Expr(node.body)]
    for stmt in _statements_under(body):
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            targets = [stmt.target]
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            bound.add(stmt.name)
        for target in targets:
            for node_ in ast.walk(target):
                # Only Store-context names: the base of a subscript /
                # attribute store (`g[k] = v`) is *read*, not bound.
                if isinstance(node_, ast.Name) and \
                        isinstance(node_.ctx, ast.Store):
                    bound.add(node_.id)
    return bound


def _free_names(node: ast.AST) -> Set[str]:
    """Names a function loads but does not bind (closure captures)."""
    bound = _bound_names(node)
    free: Set[str] = set()
    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load) \
                    and sub.id not in bound:
                free.add(sub.id)
    return free


def _display(program: Program, module_name: str) -> str:
    module = program.modules.get(module_name)
    return module.display if module is not None else module_name


# ----------------------------------------------------------------------
# 1. RNG-stream discipline
# ----------------------------------------------------------------------
@program_rule(
    "rng-stream",
    "RNG draw order must be deterministic: no unseeded or module-global "
    "generators in worker-reachable code, no draws inside unordered "
    "iteration (set / as_completed)")
def _rng_stream(program: Program) -> Iterator[Finding]:
    worker_reach = program.worker_reachable()
    for qualname, info in program.functions.items():
        module = program.modules.get(info.module)
        if module is None:
            continue
        rng_globals = global_rng_names(module)
        built = _function_facts(info, rng_globals)
        if built is None:
            continue
        cfg, facts = built
        in_worker = qualname in worker_reach

        for block in cfg.blocks:
            for stmt in block.statements:
                env = facts.get(id(stmt), {})
                if in_worker:
                    for expr in _own_exprs(stmt):
                        for node in ast.walk(expr):
                            if not isinstance(node, ast.Call):
                                continue
                            leaf = _dotted(node.func).rpartition(".")[2]
                            if leaf == "default_rng" and not (
                                    node.args or any(
                                        kw.arg == "seed"
                                        for kw in node.keywords)):
                                yield Finding(
                                    "rng-stream",
                                    _display(program, info.module),
                                    node.lineno,
                                    f"unseeded default_rng() in "
                                    f"worker-reachable `{qualname}`; "
                                    "derive the worker seed from the "
                                    "task key instead",
                                )
                        for draw in _rng_draws(expr, env, rng_globals):
                            base = draw.func.value.id
                            tags = env.get(base, frozenset())
                            if "rng-global" in tags or base in rng_globals:
                                yield Finding(
                                    "rng-stream",
                                    _display(program, info.module),
                                    draw.lineno,
                                    f"draw from module-global RNG "
                                    f"`{base}` in worker-reachable "
                                    f"`{qualname}`; worker interleaving "
                                    "makes the stream nondeterministic",
                                )
                # Unordered-iteration draws (any function).
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    evaluate = make_evaluate(rng_globals)
                    iter_tags = evaluate(stmt.iter, env)
                    if not (iter_tags & {"set", "unordered"}):
                        continue
                    for body_stmt in _statements_under(stmt.body):
                        body_env = facts.get(id(body_stmt), env)
                        for expr in _own_exprs(body_stmt):
                            for draw in _rng_draws(expr, body_env,
                                                   rng_globals):
                                kind = "as_completed" \
                                    if "unordered" in iter_tags else "set"
                                yield Finding(
                                    "rng-stream",
                                    _display(program, info.module),
                                    draw.lineno,
                                    f"RNG draw inside iteration over "
                                    f"{kind} in `{qualname}`; iteration "
                                    "order is not fixed, so the draw "
                                    "sequence is nondeterministic",
                                )


# ----------------------------------------------------------------------
# 2. Parallel-safety
# ----------------------------------------------------------------------
def _site_statement(site: WorkerSite, cfg) -> Optional[ast.stmt]:
    for block in cfg.blocks:
        for stmt in block.statements:
            if any(node is site.call for node in ast.walk(stmt)):
                return stmt
    return None


@program_rule(
    "parallel-safety",
    "nothing mutable crosses a worker boundary by accident: no mutable "
    "captures in submitted closures, no live RNG / open file handle "
    "arguments to process pools, no module-global mutation in "
    "worker-reachable code")
def _parallel_safety(program: Program) -> Iterator[Finding]:
    sites = program.worker_sites()
    sites_by_caller: Dict[str, List[WorkerSite]] = {}
    for site in sites:
        sites_by_caller.setdefault(site.caller, []).append(site)

    # (a) closure captures + (b) fork-unsafe submit arguments.
    for caller, caller_sites in sites_by_caller.items():
        info = program.functions.get(caller)
        if info is None:
            continue
        module = program.modules.get(info.module)
        if module is None:
            continue
        rng_globals = global_rng_names(module)
        mutable_globals = mutable_global_names(module)
        built = _function_facts(info, rng_globals)
        cfg, facts = built if built is not None else (None, {})
        for site in caller_sites:
            display = _display(program, site.module)
            target = site.target_node
            if isinstance(target, (ast.Lambda,)):
                captured = _free_names(target) & (
                    mutable_globals | {"self"})
                for name in sorted(captured):
                    yield Finding(
                        "parallel-safety", display, target.lineno,
                        f"closure submitted to a worker pool captures "
                        f"mutable shared state `{name}`; pass an "
                        "immutable snapshot as an argument instead",
                    )
            if cfg is not None and site.kind == "process":
                stmt = _site_statement(site, cfg)
                env = facts.get(id(stmt), {}) if stmt is not None else {}
                payload = list(site.call.args[1:]) + [
                    kw.value for kw in site.call.keywords]
                evaluate = make_evaluate(rng_globals)
                for arg in payload:
                    tags = evaluate(arg, env)
                    if "rng" in tags:
                        yield Finding(
                            "parallel-safety", display, arg.lineno,
                            f"live RNG submitted across the process "
                            f"boundary in `{caller}`; send a seed and "
                            "construct the generator in the worker",
                        )
                    if "file" in tags:
                        yield Finding(
                            "parallel-safety", display, arg.lineno,
                            f"open file handle submitted across the "
                            f"process boundary in `{caller}`; pass the "
                            "path and open it in the worker",
                        )

    # (c) module-global mutation in worker-reachable code.
    worker_reach = program.worker_reachable()
    for qualname in sorted(worker_reach):
        info = program.functions.get(qualname)
        if info is None or not isinstance(
                info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        module = program.modules.get(info.module)
        if module is None:
            continue
        shared = mutable_global_names(module) | module.global_names
        bound = _bound_names(info.node)
        display = _display(program, info.module)
        for stmt in _statements_under(info.node.body):
            for finding in _global_mutations(stmt, shared, bound,
                                             display, qualname):
                yield finding


def _global_mutations(stmt: ast.stmt, shared: Set[str], bound: Set[str],
                      display: str, qualname: str) -> Iterator[Finding]:
    def base_name(expr: ast.AST) -> Optional[str]:
        while isinstance(expr, (ast.Subscript, ast.Attribute)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    declared_global: Set[str] = set()
    if isinstance(stmt, ast.Global):
        declared_global.update(stmt.names)
        for name in stmt.names:
            yield Finding(
                "parallel-safety", display, stmt.lineno,
                f"worker-reachable `{qualname}` rebinds module global "
                f"`{name}`; worker copies diverge from the parent "
                "silently",
            )
        return
    targets: List[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            name = base_name(target)
            if name is not None and name in shared and name not in bound:
                yield Finding(
                    "parallel-safety", display, stmt.lineno,
                    f"worker-reachable `{qualname}` mutates module "
                    f"global `{name}`; worker-side mutation is invisible "
                    "to the parent process",
                )
    for node in ast.walk(stmt):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and isinstance(node.func.value, ast.Name)):
            name = node.func.value.id
            if name in shared and name not in bound:
                yield Finding(
                    "parallel-safety", display, node.lineno,
                    f"worker-reachable `{qualname}` mutates module "
                    f"global `{name}` via .{node.func.attr}(); "
                    "worker-side mutation is invisible to the parent "
                    "process",
                )


# ----------------------------------------------------------------------
# 3. Artifact atomicity
# ----------------------------------------------------------------------
def _writes_artifact(call: ast.Call) -> Optional[str]:
    """Describe the artifact write this call performs, or None."""
    name = _dotted(call.func)
    leaf = name.rpartition(".")[2]
    if leaf in ("savez", "savez_compressed", "save") and \
            name.rpartition(".")[0] in ("np", "numpy"):
        return f"{name}()"
    if name in ("json.dump",):
        return "json.dump()"
    if name == "open" or leaf == "open":
        mode = ""
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            mode = str(call.args[1].value)
        for kw in call.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = str(kw.value.value)
        if "w" not in mode:
            return None
        for node in ast.walk(call):
            if isinstance(node, ast.Constant) and isinstance(node.value,
                                                             str):
                if node.value.endswith(_ARTIFACT_SUFFIXES):
                    return f"open(..., '{mode}')"
    if leaf == "write_text":
        return None   # suffix not visible at the call site
    return None


@program_rule(
    "artifact-atomicity",
    "run artifacts (*.json / *.jsonl / *.npz) must be written via the "
    "stage-then-os.replace pattern (atomic_savez / atomic helpers); a "
    "crash mid-write must not corrupt the artifact")
def _artifact_atomicity(program: Program) -> Iterator[Finding]:
    for qualname, info in program.functions.items():
        body: List[ast.stmt]
        if isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            body = info.node.body
        elif isinstance(info.node, ast.Module):
            body = [s for s in info.node.body
                    if not isinstance(s, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef))]
        else:
            continue
        calls = [node for stmt in _statements_under(body)
                 for node in ast.walk(stmt)
                 if isinstance(node, ast.Call)]
        atomic = False
        for call in calls:
            name = _dotted(call.func)
            leaf = name.rpartition(".")[2]
            if name == "os.replace" or leaf in ("atomic_savez",
                                                "atomic_write_json"):
                atomic = True
            if leaf == "replace" and isinstance(call.func, ast.Attribute) \
                    and len(call.args) == 1 and not call.keywords:
                atomic = True   # Path.replace(target)
        if atomic:
            continue
        for call in calls:
            what = _writes_artifact(call)
            if what is not None:
                yield Finding(
                    "artifact-atomicity",
                    _display(program, info.module), call.lineno,
                    f"{what} in `{qualname}` writes a run artifact "
                    "without the stage-then-os.replace pattern; route "
                    "it through the atomic helpers so a crash cannot "
                    "leave a torn file",
                )


# ----------------------------------------------------------------------
# 4. Trace/grad-mode safety
# ----------------------------------------------------------------------
def _is_data_write(stmt: ast.stmt) -> bool:
    def is_data_target(target: ast.AST) -> bool:
        if isinstance(target, ast.Attribute) and target.attr == "data":
            return True
        if isinstance(target, ast.Subscript):
            return is_data_target(target.value)
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(is_data_target(e) for e in target.elts)
        return False

    targets: List[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    return any(is_data_target(t) for t in targets)


def _whitelisted(module_name: str) -> bool:
    path = module_name.replace(".", "/") + ".py"
    return any(path.endswith(allowed) for allowed in TENSOR_DATA_WHITELIST)


def _with_leaf(stmt: ast.stmt, leaf: str) -> bool:
    if not isinstance(stmt, (ast.With, ast.AsyncWith)):
        return False
    for item in stmt.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call) and \
                _dotted(expr.func).rpartition(".")[2] == leaf:
            return True
    return False


@program_rule(
    "trace-safety",
    "no `.data` mutation reachable while a compile trace is recording, "
    "and no backward() under no_grad()")
def _trace_safety(program: Program) -> Iterator[Finding]:
    # Seeds: every call made lexically inside a `with trace():` body.
    seeds: List[str] = []
    trace_owners: Dict[str, str] = {}
    for qualname, info in program.functions.items():
        if not isinstance(info.node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
            continue
        module = program.modules.get(info.module)
        if module is None:
            continue
        for stmt in _statements_under(info.node.body):
            if _with_leaf(stmt, "trace"):
                for inner in _statements_under(stmt.body):
                    # Lexical `.data` writes inside the trace body.
                    if _is_data_write(inner) and not _whitelisted(
                            info.module):
                        yield Finding(
                            "trace-safety",
                            _display(program, info.module), inner.lineno,
                            f"`.data` write inside the `with trace():` "
                            f"body of `{qualname}` mutates a buffer the "
                            "trace has already recorded",
                        )
                    for node in ast.walk(inner):
                        if isinstance(node, ast.Call):
                            resolved = program.resolve_dotted(
                                module, node.func, info.class_name)
                            target = program._callable_qualname(resolved)
                            if target is not None and \
                                    target in program.functions:
                                seeds.append(target)
                                trace_owners.setdefault(target, qualname)
            # backward() under no_grad(): a contradiction anywhere.
            if _with_leaf(stmt, "no_grad"):
                for inner in _statements_under(stmt.body):
                    for node in ast.walk(inner):
                        if isinstance(node, ast.Call) and isinstance(
                                node.func, ast.Attribute) and \
                                node.func.attr == "backward":
                            yield Finding(
                                "trace-safety",
                                _display(program, info.module),
                                node.lineno,
                                f"backward() under no_grad() in "
                                f"`{qualname}`; gradients recorded "
                                "under no_grad are silently wrong",
                            )

    reachable = program.reachable(seeds)
    for qualname in sorted(reachable):
        info = program.functions.get(qualname)
        if info is None or _whitelisted(info.module):
            continue
        if not isinstance(info.node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
            continue
        for stmt in _statements_under(info.node.body):
            if _is_data_write(stmt):
                owner = trace_owners.get(qualname, "a trace context")
                yield Finding(
                    "trace-safety",
                    _display(program, info.module), stmt.lineno,
                    f"`.data` write in `{qualname}` is reachable from "
                    f"the compile trace opened in `{owner}`; the "
                    "recorded program will replay the stale buffer",
                )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_program_analyses(program: Program) -> List[Finding]:
    """Run every registered program rule over the parsed package."""
    findings: List[Finding] = []
    for entry in PROGRAM_RULES.values():
        findings.extend(entry.check(program))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
