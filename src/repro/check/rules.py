"""The pluggable lint-rule registry.

A rule is a function ``(FileContext) -> Iterable[Finding]`` registered
under a stable kebab-case name with :func:`rule`.  The driver in
:mod:`repro.check.lint` parses each file once and hands every rule the
same :class:`FileContext`; rules walk the AST and emit findings, which
the driver then filters against inline waivers.

Every rule here encodes an invariant this repo has been bitten by (or
is structurally exposed to), not general style — style is ruff's job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Tuple

#: Modules allowed to mutate ``Tensor.data`` in place.  Everything on
#: this list is *outside* the differentiable region or is an audited
#: hand-written kernel whose adjoint accounts for the mutation:
#:
#: - ``repro/nn/tensor.py``   — the Tensor constructor itself;
#: - ``repro/nn/optim.py``    — optimizer parameter updates (applied
#:   between steps, never inside a recorded graph);
#: - ``repro/model/gnn.py``   — the fused levelised sweep (in-place
#:   level buffers with a hand-written backward, gradcheck-audited);
#: - ``repro/train/fused.py`` — the fused cross-design batch (same
#:   audit).
#:
#: Any other site needs an inline waiver with a justification.
TENSOR_DATA_WHITELIST: Tuple[str, ...] = (
    "repro/nn/tensor.py",
    "repro/nn/optim.py",
    "repro/model/gnn.py",
    "repro/train/fused.py",
)

#: Legacy numpy global-state samplers (the pre-Generator API).  Calling
#: any of these either mutates hidden global state or draws from it.
_LEGACY_SAMPLERS = frozenset({
    "seed", "rand", "randn", "randint", "random_integers", "random",
    "random_sample", "ranf", "sample", "choice", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "exponential", "poisson",
    "binomial", "beta", "gamma", "RandomState", "get_state", "set_state",
})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict",
                            "OrderedDict", "Counter", "deque", "bytearray"})


@dataclass(frozen=True)
class Finding:
    """One lint/audit finding, pointing at a file line."""

    rule: str
    path: str
    line: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class FileContext:
    """Everything a rule needs about one parsed source file."""

    path: str          # display path (repo-relative where possible)
    module_path: str   # forward-slash path used for whitelist matching
    source: str
    lines: List[str]
    tree: ast.Module

    def finding(self, rule_name: str, node: ast.AST, message: str) -> Finding:
        return Finding(rule_name, self.path, getattr(node, "lineno", 1),
                       message)


@dataclass
class Rule:
    """A registered lint rule."""

    name: str
    description: str
    check: Callable[[FileContext], Iterable[Finding]] = field(repr=False)


#: Registry of all lint rules, in registration order.
RULES: Dict[str, Rule] = {}

#: Registry of whole-program analyses (``repro check --dataflow``).
#: A program rule is a function ``(Program) -> Iterable[Finding]``; it
#: sees the package-wide call graph instead of one file, so its
#: findings can connect facts across modules.  Registered separately
#: from :data:`RULES` because the driver invokes the two families at
#: different granularities, but the waiver machinery treats both name
#: spaces as one.
PROGRAM_RULES: Dict[str, Rule] = {}

#: Finding ids emitted by the driver itself (waiver bookkeeping,
#: unparseable files).  They are not waivable and carry no check
#: function, but ``--list-rules`` and waiver validation know them.
META_RULES: Dict[str, str] = {
    "syntax-error": "file could not be parsed",
    "waiver-missing-justification":
        "a repro-check waiver must explain itself after the rule name",
    "unused-waiver": "a waiver that suppresses nothing must be removed",
    "unknown-waiver-rule": "a waiver names a rule that does not exist",
}


def rule(name: str, description: str):
    """Decorator registering a rule function under ``name``."""

    def decorate(fn: Callable[[FileContext], Iterable[Finding]]) -> Rule:
        if name in RULES or name in META_RULES or name in PROGRAM_RULES:
            raise ValueError(f"duplicate rule name: {name}")
        entry = Rule(name, description, fn)
        RULES[name] = entry
        return entry

    return decorate


def program_rule(name: str, description: str):
    """Decorator registering a whole-program analysis under ``name``."""

    def decorate(fn: Callable[..., Iterable[Finding]]) -> Rule:
        if name in RULES or name in META_RULES or name in PROGRAM_RULES:
            raise ValueError(f"duplicate rule name: {name}")
        entry = Rule(name, description, fn)
        PROGRAM_RULES[name] = entry
        return entry

    return decorate


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for an attribute chain, '' when it is not a plain chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
@rule("builtin-hash",
      "builtin hash() is randomised per process (PYTHONHASHSEED); use a "
      "stable digest (zlib.crc32 / hashlib) for seeds and cache keys")
def _builtin_hash(ctx: FileContext) -> Iterator[Finding]:
    for call in _calls(ctx.tree):
        if isinstance(call.func, ast.Name) and call.func.id == "hash":
            yield ctx.finding(
                "builtin-hash", call,
                "builtin hash() is process-randomised; derive seeds and "
                "cache keys from a stable digest instead",
            )


@rule("unseeded-rng",
      "no global-state numpy RNG (np.random.seed / legacy samplers) and "
      "no default_rng() without an explicit seed argument")
def _unseeded_rng(ctx: FileContext) -> Iterator[Finding]:
    for call in _calls(ctx.tree):
        name = _dotted(call.func)
        if not name:
            continue
        head, _, leaf = name.rpartition(".")
        if head in ("np.random", "numpy.random") and leaf in _LEGACY_SAMPLERS:
            yield ctx.finding(
                "unseeded-rng", call,
                f"{name}() uses numpy's hidden global RNG state; pass an "
                "explicitly seeded np.random.Generator instead",
            )
        elif leaf == "default_rng" and head in ("", "np.random",
                                                "numpy.random"):
            seeded = bool(call.args) or any(
                kw.arg == "seed" for kw in call.keywords)
            if not seeded:
                yield ctx.finding(
                    "unseeded-rng", call,
                    "default_rng() without a seed is entropy-seeded and "
                    "unreproducible; make the seed an explicit argument",
                )


@rule("bare-except",
      "no bare `except:` and no blanket `except Exception/BaseException`; "
      "name the exceptions the code can actually handle")
def _bare_except(ctx: FileContext) -> Iterator[Finding]:
    def broad(expr: ast.AST) -> bool:
        return isinstance(expr, ast.Name) and expr.id in ("Exception",
                                                          "BaseException")

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield ctx.finding("bare-except", node,
                              "bare `except:` swallows every error, "
                              "including the silent-corruption ones this "
                              "repo worries about; catch specific types")
        elif broad(node.type) or (
                isinstance(node.type, ast.Tuple)
                and any(broad(e) for e in node.type.elts)):
            yield ctx.finding("bare-except", node,
                              "blanket `except Exception` hides numerics "
                              "bugs; catch the specific exceptions this "
                              "block can recover from")


@rule("mutable-default",
      "no mutable default arguments (list/dict/set literals or "
      "constructors); they are shared across calls")
def _mutable_default(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults
                                              if d is not None]:
            bad = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            )
            if bad:
                label = getattr(node, "name", "<lambda>")
                yield ctx.finding(
                    "mutable-default", default,
                    f"mutable default argument in `{label}` is shared "
                    "across calls; default to None and build inside",
                )


@rule("tensor-data-mutation",
      "no in-place mutation of `<x>.data` outside the audited whitelist; "
      "autograd records values at op creation, so later mutation silently "
      "corrupts gradients")
def _tensor_data_mutation(ctx: FileContext) -> Iterator[Finding]:
    if any(ctx.module_path.endswith(allowed)
           for allowed in TENSOR_DATA_WHITELIST):
        return

    def is_data_target(target: ast.AST) -> bool:
        if isinstance(target, ast.Attribute) and target.attr == "data":
            return True
        if isinstance(target, ast.Subscript):
            return is_data_target(target.value)
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(is_data_target(e) for e in target.elts)
        return False

    for node in ast.walk(ctx.tree):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if is_data_target(target):
                yield ctx.finding(
                    "tensor-data-mutation", node,
                    "in-place write to a `.data` buffer outside the "
                    "audited kernels; route the update through autograd "
                    "ops or waive with a justification",
                )
