"""File driver for the lint rules: parsing, waivers, aggregation.

Waiver syntax
-------------
A finding is suppressed by a comment on the offending line, or on a
comment-only line immediately above it::

    risky()  # repro-check: disable=<rule>[,<rule>...] -- <justification>

The justification is **required**: a waiver is a reviewed exception,
and the reason must survive next to the code.  A waiver without one
suppresses nothing and is itself reported
(``waiver-missing-justification``); a waiver that matches no finding is
reported too (``unused-waiver``), so stale waivers cannot accumulate.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

from .rules import META_RULES, RULES, FileContext, Finding

_WAIVER_RE = re.compile(
    r"repro-check:\s*disable=([A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
    r"\s*(.*)$"
)


@dataclass
class Waiver:
    """One parsed ``repro-check: disable=...`` comment."""

    line: int
    rules: List[str]
    justification: str
    own_line: bool           # the comment is alone on its line
    used: bool = field(default=False)

    @property
    def justified(self) -> bool:
        return len(self.justification) >= 3


def _comments_by_line(source: str) -> Dict[int, str]:
    """Map line number -> comment text, via the tokenizer.

    Using real COMMENT tokens (rather than scanning for ``#``) means a
    waiver-looking substring inside a string literal — e.g. the regex in
    this very module — is never mistaken for a waiver.
    """
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def _parse_waivers(source: str, lines: Sequence[str]) -> Dict[int, Waiver]:
    waivers: Dict[int, Waiver] = {}
    for lineno, comment in _comments_by_line(source).items():
        match = _WAIVER_RE.search(comment)
        if not match:
            continue
        names = [part.strip() for part in match.group(1).split(",")]
        justification = match.group(2).strip().lstrip("-—:# ").strip()
        own_line = lines[lineno - 1].lstrip().startswith("#")
        waivers[lineno] = Waiver(lineno, names, justification, own_line)
    return waivers


def _waiver_findings(path: str, waivers: Dict[int, Waiver]) -> List[Finding]:
    findings: List[Finding] = []
    known = set(RULES) | set(META_RULES)
    for waiver in waivers.values():
        for name in waiver.rules:
            if name not in known:
                findings.append(Finding(
                    "unknown-waiver-rule", path, waiver.line,
                    f"waiver names unknown rule '{name}' "
                    f"(see `repro check --list-rules`)",
                ))
        if not waiver.justified:
            findings.append(Finding(
                "waiver-missing-justification", path, waiver.line,
                "waiver has no justification; write `# repro-check: "
                "disable=<rule> -- <why this exception is safe>`",
            ))
        elif not waiver.used:
            findings.append(Finding(
                "unused-waiver", path, waiver.line,
                f"waiver for {','.join(waiver.rules)} suppresses nothing "
                "here; remove it",
            ))
    return findings


def lint_file(path: Path, display_path: str = None) -> List[Finding]:
    """Run every registered rule over one file, applying waivers."""
    display = display_path if display_path is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding("syntax-error", display, 1, f"unreadable: {exc}")]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding("syntax-error", display, exc.lineno or 1,
                        f"syntax error: {exc.msg}")]

    lines = source.splitlines()
    ctx = FileContext(path=display,
                      module_path=str(path).replace("\\", "/"),
                      source=source, lines=lines, tree=tree)
    waivers = _parse_waivers(source, lines)

    kept: List[Finding] = []
    for entry in RULES.values():
        for finding in entry.check(ctx):
            waiver = waivers.get(finding.line)
            above = waivers.get(finding.line - 1)
            if above is not None and not above.own_line:
                above = None  # trailing comment of the previous statement
            for candidate in (waiver, above):
                if (candidate is not None and candidate.justified
                        and finding.rule in candidate.rules):
                    candidate.used = True
                    break
            else:
                kept.append(finding)

    kept.extend(_waiver_findings(display, waivers))
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def _iter_py_files(target: Path) -> Iterable[Path]:
    if target.is_dir():
        yield from sorted(target.rglob("*.py"))
    elif target.suffix == ".py":
        yield target


def run_lint(paths: Sequence) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    cwd = Path.cwd()
    for target in paths:
        for file_path in _iter_py_files(Path(target)):
            try:
                display = str(file_path.resolve().relative_to(cwd))
            except ValueError:
                display = str(file_path)
            findings.extend(lint_file(file_path, display))
    return findings
