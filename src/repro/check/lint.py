"""File driver for the lint rules: parsing, waivers, aggregation.

Waiver syntax
-------------
A finding is suppressed by a comment on the offending line, or on a
comment-only line immediately above it::

    risky()  # repro-check: disable=<rule>[,<rule>...] -- <justification>

The justification is **required**: a waiver is a reviewed exception,
and the reason must survive next to the code.  A waiver without one
suppresses nothing and is itself reported
(``waiver-missing-justification``); a waiver that matches no finding is
reported too (``unused-waiver``), so stale waivers cannot accumulate.

The driver is split into a *collect* phase (run the rules, parse the
waivers, apply nothing) and an *apply* phase
(:func:`apply_waivers`), because waivers must be accounted against
every rule family that ran — a waiver naming a ``--dataflow`` program
rule is only "unused" when the dataflow analyses actually executed and
still produced nothing on that line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .rules import META_RULES, PROGRAM_RULES, RULES, FileContext, Finding

_WAIVER_RE = re.compile(
    r"repro-check:\s*disable=([A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
    r"\s*(.*)$"
)


@dataclass
class Waiver:
    """One parsed ``repro-check: disable=...`` comment."""

    line: int
    rules: List[str]
    justification: str
    own_line: bool           # the comment is alone on its line
    used: bool = field(default=False)

    @property
    def justified(self) -> bool:
        return len(self.justification) >= 3


def _comments_by_line(source: str) -> Dict[int, str]:
    """Map line number -> comment text, via the tokenizer.

    Using real COMMENT tokens (rather than scanning for ``#``) means a
    waiver-looking substring inside a string literal — e.g. the regex in
    this very module — is never mistaken for a waiver.
    """
    comments: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def _parse_waivers(source: str, lines: Sequence[str]) -> Dict[int, Waiver]:
    waivers: Dict[int, Waiver] = {}
    for lineno, comment in _comments_by_line(source).items():
        match = _WAIVER_RE.search(comment)
        if not match:
            continue
        names = [part.strip() for part in match.group(1).split(",")]
        justification = match.group(2).strip().lstrip("-—:# ").strip()
        own_line = lines[lineno - 1].lstrip().startswith("#")
        waivers[lineno] = Waiver(lineno, names, justification, own_line)
    return waivers


def waivers_for_source(source: str) -> Dict[int, Waiver]:
    """Parse waivers from source text (for files outside the lint set)."""
    return _parse_waivers(source, source.splitlines() or [""])


@dataclass
class FileLint:
    """The collect-phase result for one file: raw findings + waivers."""

    display: str
    findings: List[Finding]
    waivers: Dict[int, Waiver] = field(default_factory=dict)


def collect_file(path: Path, display_path: Optional[str] = None) -> FileLint:
    """Run every registered lint rule over one file; apply no waivers."""
    display = display_path if display_path is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return FileLint(display, [Finding("syntax-error", display, 1,
                                          f"unreadable: {exc}")])
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return FileLint(display, [Finding("syntax-error", display,
                                          exc.lineno or 1,
                                          f"syntax error: {exc.msg}")])

    lines = source.splitlines()
    ctx = FileContext(path=display,
                      module_path=str(path).replace("\\", "/"),
                      source=source, lines=lines, tree=tree)
    waivers = _parse_waivers(source, lines)

    findings: List[Finding] = []
    for entry in RULES.values():
        findings.extend(entry.check(ctx))
    return FileLint(display, findings, waivers)


def apply_waivers(findings: Iterable[Finding],
                  waivers_by_path: Dict[str, Dict[int, Waiver]],
                  active_rules: Set[str]) -> List[Finding]:
    """Filter findings through waivers and report waiver bookkeeping.

    ``active_rules`` is the set of rule names that actually executed in
    this run.  An unused waiver is only reported when *every* rule it
    names was active — a waiver for a dataflow rule must not be called
    stale by a lint-only invocation that never gave it the chance to
    suppress anything.
    """
    kept: List[Finding] = []
    for finding in findings:
        waivers = waivers_by_path.get(finding.path, {})
        waiver = waivers.get(finding.line)
        above = waivers.get(finding.line - 1)
        if above is not None and not above.own_line:
            above = None  # trailing comment of the previous statement
        for candidate in (waiver, above):
            if (candidate is not None and candidate.justified
                    and finding.rule in candidate.rules):
                candidate.used = True
                break
        else:
            kept.append(finding)

    # Program rules register when repro.check.analyses is imported; a
    # lint-only run must still recognise their names in waivers, so
    # force the registration before deciding what is "unknown".
    from . import analyses  # noqa: F401  (populates PROGRAM_RULES)

    known = (set(RULES) | set(META_RULES) | set(PROGRAM_RULES)
             | {"tensor-contract", "contract-coverage"})
    accountable = active_rules | set(META_RULES)
    for path, waivers in waivers_by_path.items():
        for waiver in waivers.values():
            for name in waiver.rules:
                if name not in known:
                    kept.append(Finding(
                        "unknown-waiver-rule", path, waiver.line,
                        f"waiver names unknown rule '{name}' "
                        f"(see `repro check --list-rules`)",
                    ))
            if not waiver.justified:
                kept.append(Finding(
                    "waiver-missing-justification", path, waiver.line,
                    "waiver has no justification; write `# repro-check: "
                    "disable=<rule> -- <why this exception is safe>`",
                ))
            elif not waiver.used and all(name in accountable
                                         for name in waiver.rules):
                kept.append(Finding(
                    "unused-waiver", path, waiver.line,
                    f"waiver for {','.join(waiver.rules)} suppresses "
                    "nothing here; remove it",
                ))
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def lint_file(path: Path, display_path: Optional[str] = None) -> List[Finding]:
    """Run every registered rule over one file, applying waivers."""
    collected = collect_file(path, display_path)
    return apply_waivers(collected.findings,
                         {collected.display: collected.waivers},
                         set(RULES))


def _iter_py_files(target: Path) -> Iterable[Path]:
    if target.is_dir():
        yield from sorted(target.rglob("*.py"))
    elif target.suffix == ".py":
        yield target


def collect_paths(paths: Sequence) -> List[FileLint]:
    """Collect-phase over every ``.py`` file under the given targets."""
    results: List[FileLint] = []
    cwd = Path.cwd()
    for target in paths:
        for file_path in _iter_py_files(Path(target)):
            try:
                display = str(file_path.resolve().relative_to(cwd))
            except ValueError:
                display = str(file_path)
            results.append(collect_file(file_path, display))
    return results


def run_lint(paths: Sequence) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    collected = collect_paths(paths)
    all_findings = [f for c in collected for f in c.findings]
    waivers_by_path = {c.display: c.waivers for c in collected}
    return apply_waivers(all_findings, waivers_by_path, set(RULES))
