"""`repro check` — static lint, whole-program analysis, autograd audit.

Exit status is 0 only when every requested pass is clean; any finding
(or an unjustified/stale waiver) makes the command fail, which is what
lets CI and ``tests/check/test_self_clean.py`` gate on it.

``--dataflow`` additionally runs the whole-program analyses
(:mod:`repro.check.analyses`) and the tensor-contract checker
(:mod:`repro.check.contracts`) over the full package.  Because a
whole-program pass can surface long-accepted findings, the command
supports a committed baseline (``check_baseline.json``):
``--write-baseline`` records the current findings, ``--diff-baseline``
fails only on findings *not* in the baseline.  Baseline entries are
keyed by (rule, package-relative path, message) — deliberately without
line numbers, so unrelated edits that shift code do not invalidate the
baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .gradcheck import CASES, run_gradcheck
from .lint import (FileLint, Waiver, apply_waivers, collect_paths,
                   waivers_for_source)
from .rules import META_RULES, PROGRAM_RULES, RULES, Finding


def package_root() -> Path:
    """The installed ``repro`` package source tree."""
    return Path(__file__).resolve().parent.parent


def default_lint_paths() -> List[Path]:
    return [package_root()]


def default_baseline_path() -> Path:
    """``check_baseline.json`` in the current working directory.

    CI and the self-clean gate run from the repository root, where the
    committed baseline lives; pass ``--baseline`` explicitly elsewhere.
    """
    return Path.cwd() / "check_baseline.json"


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _baseline_path_key(path: str) -> str:
    """Package-relative path for baseline keys (refactor-tolerant)."""
    normalized = path.replace("\\", "/")
    marker = "repro/"
    index = normalized.rfind(marker)
    return normalized[index:] if index >= 0 else normalized


def baseline_key(finding: Finding) -> Tuple[str, str, str]:
    """Identity of a finding for baseline diffing — no line numbers, so
    edits that merely shift code do not invalidate the baseline."""
    return (finding.rule, _baseline_path_key(finding.path),
            finding.message)


def load_baseline(path: Path) -> Set[Tuple[str, str, str]]:
    with path.open(encoding="utf-8") as handle:
        payload = json.load(handle)
    return {(e["rule"], e["path"], e["message"])
            for e in payload.get("findings", [])}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    entries = sorted({baseline_key(f) for f in findings})
    payload = {
        "comment": "Accepted findings of `repro check --dataflow`; "
                   "regenerate with --write-baseline after review.",
        "findings": [{"rule": rule, "path": p, "message": message}
                     for rule, p, message in entries],
    }
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _render_text(findings: Sequence[Finding], ran: Dict[str, bool],
                 elapsed: float, baselined: Optional[int],
                 emit: Callable[[str], None]) -> None:
    for finding in findings:
        emit(finding.format())
    passes = [name for name, on in ran.items() if on]
    suffix = f" [{', '.join(passes)}] ({elapsed:.1f}s)"
    if baselined:
        suffix += f" ({baselined} baselined finding(s) suppressed)"
    if findings:
        emit(f"repro check: {len(findings)} finding(s){suffix}")
    else:
        emit(f"repro check: clean{suffix}")


def _render_json(findings: Sequence[Finding], ran: Dict[str, bool],
                 elapsed: float, baselined: Optional[int],
                 emit: Callable[[str], None]) -> None:
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    summary = {
        "total": len(findings),
        "by_rule": by_rule,
        "ran": ran,
        "elapsed_seconds": round(elapsed, 3),
    }
    if baselined is not None:
        summary["baselined"] = baselined
    emit(json.dumps({
        "findings": [f.to_dict() for f in findings],
        "summary": summary,
    }, indent=2, sort_keys=True))


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _validate_paths(paths: Sequence, do_dataflow: bool,
                    emit: Callable[[str], None]) -> bool:
    """True when every explicit path is usable for the requested passes."""
    root = package_root()
    ok = True
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            emit(f"repro check: path does not exist: {raw}")
            ok = False
            continue
        if do_dataflow:
            resolved = path.resolve()
            if resolved != root and root not in resolved.parents:
                emit(f"repro check: {raw} is not part of the repro "
                     f"package (expected a path under {root}); the "
                     "whole-program analyses only run over the package "
                     "source tree")
                ok = False
    return ok


def run_check(paths: Optional[Sequence] = None, fmt: str = "text",
              do_lint: bool = True, do_gradcheck: bool = True,
              do_dataflow: bool = False, diff_baseline: bool = False,
              write_baseline_file: bool = False,
              baseline: Optional[Path] = None, list_rules: bool = False,
              emit: Callable[[str], None] = print) -> int:
    """Programmatic entry point; returns the process exit status."""
    if list_rules:
        for entry in RULES.values():
            emit(f"{entry.name}: {entry.description}")
        for entry in PROGRAM_RULES.values():
            emit(f"{entry.name}: {entry.description} (--dataflow)")
        for name, description in META_RULES.items():
            emit(f"{name}: {description} (driver-emitted)")
        emit(f"gradcheck: finite-difference + NaN/dtype + no-grad "
             f"graph audit over {len(CASES)} registered op cases")
        emit("tensor-contract: static shape/dtype/aliasing validation "
             "of recorded compile traces (--dataflow)")
        return 0

    if paths and not _validate_paths(paths, do_dataflow, emit):
        return 2

    start = time.perf_counter()
    ran = {"lint": do_lint, "gradcheck": do_gradcheck,
           "dataflow": do_dataflow}

    raw_findings: List[Finding] = []
    waivers_by_path: Dict[str, Dict[int, Waiver]] = {}
    active_rules: Set[str] = set()

    collected: List[FileLint] = []
    if do_lint:
        collected = collect_paths(list(paths) if paths
                                  else default_lint_paths())
        active_rules |= set(RULES)
        for item in collected:
            raw_findings.extend(item.findings)
            waivers_by_path[item.display] = item.waivers

    if do_dataflow:
        from .analyses import run_program_analyses
        from .callgraph import Program
        from .contracts import run_contract_checks

        program = Program.build(package_root(), "repro")
        raw_findings.extend(run_program_analyses(program))
        raw_findings.extend(run_contract_checks())
        active_rules |= set(PROGRAM_RULES) | {"tensor-contract",
                                              "contract-coverage"}
        # Program findings can land in files the lint pass never saw
        # (e.g. lint was scoped to a subdirectory) — parse their
        # waivers so inline suppressions still apply.
        for module in program.modules.values():
            if module.display not in waivers_by_path:
                try:
                    source = module.path.read_text(encoding="utf-8")
                except (OSError, UnicodeDecodeError):
                    continue
                waivers_by_path[module.display] = \
                    waivers_for_source(source)

    findings = apply_waivers(raw_findings, waivers_by_path, active_rules)

    if do_gradcheck:
        findings.extend(run_gradcheck())

    baselined: Optional[int] = None
    baseline_file = Path(baseline) if baseline is not None \
        else default_baseline_path()
    if write_baseline_file:
        write_baseline(baseline_file, findings)
        emit(f"repro check: wrote {len(findings)} finding(s) to "
             f"{baseline_file}")
        return 0
    if diff_baseline:
        try:
            known = load_baseline(baseline_file)
        except FileNotFoundError:
            known = set()
        before = len(findings)
        findings = [f for f in findings if baseline_key(f) not in known]
        baselined = before - len(findings)

    elapsed = time.perf_counter() - start
    if fmt == "json":
        _render_json(findings, ran, elapsed, baselined, emit)
    else:
        _render_text(findings, ran, elapsed, baselined, emit)
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="repo-specific static lint, whole-program dataflow "
                    "analysis, and autograd contract audit",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint "
                             "(default: the repro package source)")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text", help="output format")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the static linter")
    parser.add_argument("--no-gradcheck", action="store_true",
                        help="skip the autograd contract audit")
    parser.add_argument("--dataflow", action="store_true",
                        help="run the whole-program analyses and the "
                             "tensor-contract checker over the package")
    parser.add_argument("--diff-baseline", action="store_true",
                        help="fail only on findings not recorded in the "
                             "baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record the current findings as the "
                             "accepted baseline and exit 0")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file (default: "
                             "./check_baseline.json)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule with its description")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_check(paths=args.paths, fmt=args.format,
                     do_lint=not args.no_lint,
                     do_gradcheck=not args.no_gradcheck,
                     do_dataflow=args.dataflow,
                     diff_baseline=args.diff_baseline,
                     write_baseline_file=args.write_baseline,
                     baseline=args.baseline,
                     list_rules=args.list_rules)
