"""`repro check` — run the static linter and the autograd auditor.

Exit status is 0 only when both passes are clean; any finding (or an
unjustified/stale waiver) makes the command fail, which is what lets CI
and ``tests/check/test_self_clean.py`` gate on it.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from .gradcheck import CASES, run_gradcheck
from .lint import run_lint
from .rules import META_RULES, RULES, Finding


def default_lint_paths() -> List[Path]:
    """The installed ``repro`` package source tree."""
    return [Path(__file__).resolve().parent.parent]


def _render_text(findings: Sequence[Finding], checked_lint: bool,
                 checked_grad: bool, emit: Callable[[str], None]) -> None:
    for finding in findings:
        emit(finding.format())
    ran = [name for name, on in (("lint", checked_lint),
                                 ("gradcheck", checked_grad)) if on]
    if findings:
        emit(f"repro check: {len(findings)} finding(s) "
             f"[{', '.join(ran)}]")
    else:
        emit(f"repro check: clean [{', '.join(ran)}]")


def _render_json(findings: Sequence[Finding], checked_lint: bool,
                 checked_grad: bool, emit: Callable[[str], None]) -> None:
    by_rule = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    emit(json.dumps({
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "total": len(findings),
            "by_rule": by_rule,
            "ran": {"lint": checked_lint, "gradcheck": checked_grad},
        },
    }, indent=2, sort_keys=True))


def run_check(paths: Optional[Sequence] = None, fmt: str = "text",
              do_lint: bool = True, do_gradcheck: bool = True,
              list_rules: bool = False,
              emit: Callable[[str], None] = print) -> int:
    """Programmatic entry point; returns the process exit status."""
    if list_rules:
        for entry in RULES.values():
            emit(f"{entry.name}: {entry.description}")
        for name, description in META_RULES.items():
            emit(f"{name}: {description} (driver-emitted)")
        emit(f"gradcheck: finite-difference + NaN/dtype + no-grad "
             f"graph audit over {len(CASES)} registered op cases")
        return 0

    findings: List[Finding] = []
    if do_lint:
        findings.extend(run_lint(list(paths) if paths
                                 else default_lint_paths()))
    if do_gradcheck:
        findings.extend(run_gradcheck())

    if fmt == "json":
        _render_json(findings, do_lint, do_gradcheck, emit)
    else:
        _render_text(findings, do_lint, do_gradcheck, emit)
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="repo-specific static lint + autograd contract audit",
    )
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint "
                             "(default: the repro package source)")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text", help="output format")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the static linter")
    parser.add_argument("--no-gradcheck", action="store_true",
                        help="skip the autograd contract audit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule with its description")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_check(paths=args.paths, fmt=args.format,
                     do_lint=not args.no_lint,
                     do_gradcheck=not args.no_gradcheck,
                     list_rules=args.list_rules)
