"""Repo-specific correctness tooling: static lint + autograd audit.

Two numerics paths (the legacy per-design kernels and the fused
union-graph sweep) run over a hand-rolled autograd engine, where bugs
corrupt results silently instead of crashing.  This package makes the
checks that guard against that mechanical:

- :mod:`repro.check.rules` — the pluggable registry of AST lint rules
  enforcing repo invariants (stable digests instead of builtin
  ``hash()``, seeded RNGs, no broad excepts, no mutable defaults, no
  in-place ``Tensor.data`` mutation outside the audited whitelist);
- :mod:`repro.check.lint` — the file/waiver driver
  (``# repro-check: disable=<rule> -- justification``);
- :mod:`repro.check.gradcheck` — the autograd contract auditor: every
  op in :mod:`repro.nn.functional` plus the fused levelised-sweep node
  is finite-difference checked and screened for NaN/inf and dtype
  drift;
- :mod:`repro.check.dataflow` — per-function CFG construction and a
  generic forward dataflow engine over the AST;
- :mod:`repro.check.callgraph` — the package-wide import/call graph
  the whole-program analyses propagate facts across;
- :mod:`repro.check.analyses` — the shipped whole-program analyses
  (RNG-stream discipline, parallel-safety, artifact atomicity,
  trace-safety), run by ``repro check --dataflow``;
- :mod:`repro.check.contracts` — the static tensor-contract checker
  validating recorded compile traces (shapes, dtypes, aliasing)
  without executing a training step;
- :mod:`repro.check.cli` — ``repro check`` / ``python -m repro.check``.
"""

from .gradcheck import OpCase, check_case, run_gradcheck
from .lint import lint_file, run_lint
from .rules import (PROGRAM_RULES, RULES, Finding,
                    TENSOR_DATA_WHITELIST)

__all__ = [
    "Finding",
    "OpCase",
    "PROGRAM_RULES",
    "RULES",
    "TENSOR_DATA_WHITELIST",
    "check_case",
    "lint_file",
    "run_gradcheck",
    "run_lint",
]
