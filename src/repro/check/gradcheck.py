"""Autograd contract auditor for the numpy engine.

Generalises the one-off finite-difference harness in
``tests/nn/test_tensor.py`` into a registry-driven audit:

- every public op of :mod:`repro.nn.functional` must have at least one
  registered :class:`OpCase` (coverage is itself audited, so a new op
  that forgets to enroll fails ``repro check``);
- the fused levelised-sweep autograd node of :mod:`repro.model.gnn` is
  enrolled explicitly (it is the one hand-written kernel outside
  ``functional``);
- each case is checked for (1) analytic-vs-central-difference gradient
  agreement on **every** differentiable input, (2) NaN/inf-free
  forward values and gradients, and (3) dtype stability — the engine
  is float64 end to end, so any float32 (or other) drift in outputs or
  gradients is a silent-precision bug;
- each case is additionally run under :func:`repro.nn.no_grad`
  (:func:`check_no_grad`): the output must carry no parents and no
  backward closure — anything else is a graph leak on the serving
  path — and its values must be bit-identical to the grad-enabled
  forward, which is the contract that licenses inference-only fast
  paths such as the slice-maximum pooling kernel.

Cases must be deterministic: anything stochastic (dropout) recreates
its own seeded Generator on every call so the finite-difference
re-evaluations see the same noise.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..nn import Tensor, no_grad
from ..nn import functional as F
from ..util import legacy_mode
from .rules import Finding

#: Ops audited in addition to the ``repro.nn.functional`` surface.
REQUIRED_EXTRA_OPS: Tuple[str, ...] = (
    "levelized_sweep", "node_contrastive_loss_multi", "cmd_loss_multi")

Builder = Callable[[], Tuple[Callable[..., Tensor], Dict[str, np.ndarray]]]


@dataclass(frozen=True)
class OpCase:
    """One audited configuration of one autograd op.

    ``build()`` returns ``(fn, inputs)``: calling ``fn`` with each
    input wrapped as a :class:`Tensor` keyword argument must return a
    Tensor, and the gradient w.r.t. *every* input is checked.  Inputs
    an op must not differentiate (targets, masks) are closed over
    inside ``fn`` rather than listed.
    """

    op: str
    label: str
    build: Builder
    atol: float = 1e-5
    eps: float = 1e-6


CASES: List[OpCase] = []


def case(op: str, label: str, atol: float = 1e-5,
         eps: float = 1e-6) -> Callable[[Builder], Builder]:
    """Decorator enrolling a builder function as an :class:`OpCase`."""

    def decorate(build: Builder) -> Builder:
        CASES.append(OpCase(op, label, build, atol=atol, eps=eps))
        return build

    return decorate


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _numeric_grad(value_fn: Callable[[], float], array: np.ndarray,
                  eps: float) -> np.ndarray:
    """Central-difference gradient of ``value_fn`` w.r.t. ``array``.

    ``value_fn`` must read ``array`` afresh on every call (the arrays
    handed to it are mutated in place element by element).
    """
    grad = np.zeros_like(array)
    flat, gflat = array.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = value_fn()
        flat[i] = original - eps
        lo = value_fn()
        flat[i] = original
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad


def check_case(op_case: OpCase) -> List[str]:
    """Audit one case; returns a list of human-readable problems."""
    problems: List[str] = []
    fn, inputs = op_case.build()
    arrays = {name: np.asarray(value, dtype=np.float64).copy()
              for name, value in inputs.items()}

    # Forward with gradients enabled.
    tensors = {name: Tensor(value.copy(), requires_grad=True)
               for name, value in arrays.items()}
    out = fn(**tensors)
    if not isinstance(out, Tensor):
        return [f"returned {type(out).__name__}, expected Tensor"]
    if out.data.dtype != np.float64:
        problems.append(
            f"output dtype drifted to {out.data.dtype} (engine contract "
            "is float64 end to end)")
    if not np.all(np.isfinite(out.data)):
        problems.append("forward value contains NaN/inf")
        return problems

    # Scalarise with fixed non-uniform coefficients so transposed or
    # permuted gradients cannot cancel to the right value by symmetry.
    coeff = (np.arange(out.data.size, dtype=np.float64)
             .reshape(out.data.shape) * 0.17 + 0.3)
    loss = (out * Tensor(coeff)).sum()
    loss.backward()

    def value_fn() -> float:
        re_out = fn(**{name: Tensor(value)
                       for name, value in arrays.items()})
        return float((re_out.data * coeff).sum())

    for name, tensor in tensors.items():
        if tensor.grad is None:
            problems.append(f"no gradient reached input '{name}'")
            continue
        if tensor.grad.dtype != np.float64:
            problems.append(f"gradient of '{name}' has dtype "
                            f"{tensor.grad.dtype}, expected float64")
        if tensor.grad.shape != arrays[name].shape:
            problems.append(
                f"gradient of '{name}' has shape {tensor.grad.shape}, "
                f"expected {arrays[name].shape}")
            continue
        if not np.all(np.isfinite(tensor.grad)):
            problems.append(f"gradient of '{name}' contains NaN/inf")
            continue
        numeric = _numeric_grad(value_fn, arrays[name], op_case.eps)
        error = float(np.max(np.abs(tensor.grad - numeric)))
        if error > op_case.atol:
            problems.append(
                f"gradient mismatch on '{name}': max |analytic - "
                f"numeric| = {error:.3e} (atol {op_case.atol:.0e})")
    return problems


def check_no_grad(op_case: OpCase) -> List[str]:
    """Audit one case's inference contract under :func:`no_grad`.

    With gradients disabled the op must build no graph — no parent
    references, no backward closure, ``requires_grad`` off — or every
    serving-path forward would pin its intermediates (a memory leak
    ``backward()`` never releases).  The values must also match the
    grad-enabled forward bit for bit: that equality is what licenses
    inference-only fast paths (e.g. the slice-maximum pooling kernel)
    to diverge in *implementation* from the autograd op.
    """
    problems: List[str] = []
    fn, inputs = op_case.build()
    arrays = {name: np.asarray(value, dtype=np.float64)
              for name, value in inputs.items()}
    reference = fn(**{name: Tensor(value.copy(), requires_grad=True)
                      for name, value in arrays.items()})
    if not isinstance(reference, Tensor):
        return []  # check_case already reports the wrong return type
    with no_grad():
        out = fn(**{name: Tensor(value.copy(), requires_grad=True)
                    for name, value in arrays.items()})
    if not isinstance(out, Tensor):
        return [f"no_grad forward returned {type(out).__name__}, "
                "expected Tensor"]
    if out.requires_grad:
        problems.append("output has requires_grad=True under no_grad()")
    if out._parents:
        problems.append(
            f"output retains {len(out._parents)} parent reference(s) "
            "under no_grad() (graph leak on the serving path)")
    if out._backward is not None:
        problems.append("output carries a backward closure under "
                        "no_grad()")
    if not np.array_equal(reference.data, out.data):
        diff = float(np.max(np.abs(reference.data - out.data)))
        problems.append(
            f"no_grad forward deviates from the autograd forward "
            f"(max |diff| = {diff:.3e}); fast paths must be "
            "bit-identical")
    return problems


def check_compiled(op_case: OpCase) -> List[str]:
    """Audit one case's trace/compile/replay contract.

    The compiled execution engine (:mod:`repro.nn.compile`) promises
    **bit-for-bit** equivalence with eager execution in float64: every
    case is traced, compiled, and replayed twice — once on the traced
    values and once after mutating every input in place (the way the
    optimizer mutates parameters between steps) — and both the forward
    values and every input gradient must equal the eager run exactly.
    Cases whose op legitimately poisons the tape (stochastic ops such
    as dropout) are skipped; any other compile failure is a finding.
    """
    from ..nn import compile as nc

    problems: List[str] = []
    fn, inputs = op_case.build()
    arrays = {name: np.asarray(value, dtype=np.float64).copy()
              for name, value in inputs.items()}
    tensors = {name: Tensor(value.copy(), requires_grad=True)
               for name, value in arrays.items()}
    try:
        with nc.trace() as tape:
            out = fn(**tensors)
            if not isinstance(out, Tensor):
                return []  # check_case already reports this
            coeff = (np.arange(out.data.size, dtype=np.float64)
                     .reshape(out.data.shape) * 0.17 + 0.3)
            loss = (out * Tensor(coeff)).sum()
        program = nc.CompiledStep(tape, loss,
                                  outputs={"out": out, "loss": loss})
    except nc.CompileError as exc:
        if tape.poison_reason is not None:
            return []  # legitimately untraceable (e.g. dropout)
        return [f"trace does not compile: {exc}"]

    rng = np.random.default_rng(99)
    for replay in range(2):
        if replay:
            # Second pass: overwrite every input in place, exactly the
            # way Adam rewrites parameters between replays.
            for name, tensor in tensors.items():
                # repro-check: disable=tensor-data-mutation -- audit harness perturbs leaves between replays
                tensor.data[...] = arrays[name] \
                    + 0.05 * rng.standard_normal(arrays[name].shape)
        # Eager reference on the current values.
        ref_in = {name: Tensor(tensor.data.copy(), requires_grad=True)
                  for name, tensor in tensors.items()}
        ref_out = fn(**ref_in)
        ((ref_out * Tensor(coeff)).sum()).backward()
        for tensor in tensors.values():
            tensor.grad = None
        result = program.replay()
        tag = "replay" if replay == 0 else "post-mutation replay"
        if not np.array_equal(result["out"], ref_out.data):
            diff = float(np.max(np.abs(result["out"] - ref_out.data)))
            problems.append(
                f"{tag} forward deviates from eager (max |diff| = "
                f"{diff:.3e}); compiled execution must be bit-exact")
        for name, tensor in tensors.items():
            ref_grad = ref_in[name].grad
            if ref_grad is None:
                continue
            if tensor.grad is None:
                problems.append(
                    f"{tag} produced no gradient for input '{name}'")
            elif not np.array_equal(tensor.grad, ref_grad):
                diff = float(np.max(np.abs(tensor.grad - ref_grad)))
                problems.append(
                    f"{tag} gradient of '{name}' deviates from eager "
                    f"(max |diff| = {diff:.3e}); compiled execution "
                    "must be bit-exact")
    return problems


def functional_ops() -> List[str]:
    """Public autograd ops defined by :mod:`repro.nn.functional`."""
    ops = []
    for name in dir(F):
        if name.startswith("_"):
            continue
        obj = getattr(F, name)
        if inspect.isfunction(obj) and obj.__module__ == F.__name__:
            ops.append(name)
    return sorted(ops)


def audit_coverage() -> List[Finding]:
    """Every discovered op (plus the required extras) needs a case."""
    covered = {c.op for c in CASES}
    findings = []
    for name in list(functional_ops()) + list(REQUIRED_EXTRA_OPS):
        if name not in covered:
            findings.append(Finding(
                "gradcheck-coverage", f"repro.nn.functional.{name}", 0,
                f"op '{name}' has no registered gradcheck case; add one "
                "with @repro.check.gradcheck.case",
            ))
    return findings


def audit_compile_coverage() -> List[Finding]:
    """Every op must be classified by the compiled execution engine.

    Each public :mod:`repro.nn.functional` op (plus the required
    extras) has to appear in exactly one of the compile layer's
    registries: ``PRIMITIVE_OPS`` (it has an ``out=``-capable compiled
    kernel), ``COMPOSITE_OPS`` (it traces through primitives), or
    ``UNTRACEABLE_OPS`` (it legitimately poisons a trace).  An op in
    none of them would silently drop every training step that uses it
    back to eager execution — this audit makes that a ``repro check``
    failure instead.
    """
    from ..nn import compile as nc

    classified = (nc.PRIMITIVE_OPS | nc.COMPOSITE_OPS
                  | nc.UNTRACEABLE_OPS)
    findings = []
    for name in list(functional_ops()) + list(REQUIRED_EXTRA_OPS):
        if name not in classified:
            findings.append(Finding(
                "compile-coverage", f"repro.nn.functional.{name}", 0,
                f"op '{name}' is not enrolled with the compiled "
                "execution engine: register an out= kernel in "
                "repro.nn.compile.KERNELS, or classify it in "
                "COMPOSITE_OPS / UNTRACEABLE_OPS",
            ))
    return findings


def run_gradcheck() -> List[Finding]:
    """Audit coverage and every registered case; empty list = clean."""
    findings = audit_coverage() + audit_compile_coverage()
    for op_case in CASES:
        for problem in check_case(op_case):
            findings.append(Finding(
                "gradcheck", f"{op_case.op}:{op_case.label}", 0, problem))
        for problem in check_no_grad(op_case):
            findings.append(Finding(
                "gradcheck-no-grad", f"{op_case.op}:{op_case.label}", 0,
                problem))
        for problem in check_compiled(op_case):
            findings.append(Finding(
                "gradcheck-compiled", f"{op_case.op}:{op_case.label}", 0,
                problem))
    return findings


# ----------------------------------------------------------------------
# Case registry: repro.nn.functional
# ----------------------------------------------------------------------
@case("log_softmax", "2d-axis-1")
def _log_softmax_case():
    rng = np.random.default_rng(10)
    return (lambda x: F.log_softmax(x, axis=-1),
            {"x": rng.standard_normal((3, 5))})


@case("softmax", "2d-axis-0")
def _softmax_case():
    rng = np.random.default_rng(11)
    return (lambda x: F.softmax(x, axis=0),
            {"x": rng.standard_normal((4, 3))})


@case("mse_loss", "vector")
def _mse_case():
    rng = np.random.default_rng(12)
    target = rng.standard_normal((6, 1))
    return (lambda prediction: F.mse_loss(prediction, Tensor(target)),
            {"prediction": rng.standard_normal((6, 1))})


@case("mae_loss", "vector-no-kink")
def _mae_case():
    rng = np.random.default_rng(13)
    target = np.zeros((5, 1))
    # Keep |prediction - target| well away from the |.|-kink at zero.
    prediction = rng.standard_normal((5, 1))
    prediction += np.where(prediction >= 0, 0.5, -0.5)
    return (lambda prediction: F.mae_loss(prediction, Tensor(target)),
            {"prediction": prediction})


@case("huber_loss", "straddles-delta")
def _huber_case():
    # Values on both sides of delta=1, none within 1e-3 of the switch.
    prediction = np.array([-2.2, -0.6, -0.15, 0.3, 0.7, 1.8])
    return (lambda prediction: F.huber_loss(prediction,
                                            Tensor(np.zeros(6)), delta=1.0),
            {"prediction": prediction})


@case("gaussian_nll", "joint-mu-logvar")
def _gaussian_nll_case():
    rng = np.random.default_rng(14)
    target = rng.standard_normal((4, 1))
    return (lambda prediction, log_var:
            F.gaussian_nll(prediction, Tensor(target), log_var),
            {"prediction": rng.standard_normal((4, 1)),
             "log_var": rng.standard_normal((4, 1)) * 0.5})


def _conv_inputs(seed: int):
    rng = np.random.default_rng(seed)
    return {"x": rng.standard_normal((2, 2, 5, 5)),
            "weight": rng.standard_normal((3, 2, 3, 3)) * 0.4,
            "bias": rng.standard_normal(3)}


@case("conv2d", "blas-stride2-pad1")
def _conv2d_fused_case():
    return (lambda x, weight, bias:
            F.conv2d(x, weight, bias, stride=2, padding=1),
            _conv_inputs(15))


@case("conv2d", "legacy-einsum")
def _conv2d_legacy_case():
    def fn(x, weight, bias):
        with legacy_mode():
            return F.conv2d(x, weight, bias, stride=1, padding=1)

    return fn, _conv_inputs(16)


def _pool_input(seed: int, shape=(2, 2, 4, 4)) -> np.ndarray:
    """Pooling input with all pairwise gaps > 1e-4 (argmax-stable)."""
    rng = np.random.default_rng(seed)
    flat = np.arange(int(np.prod(shape)), dtype=np.float64)
    rng.shuffle(flat)
    return (flat * 1e-2).reshape(shape)


@case("max_pool2d", "non-overlapping-fused")
def _max_pool_fused_case():
    return (lambda x: F.max_pool2d(x, kernel=2, stride=2),
            {"x": _pool_input(17)})


@case("max_pool2d", "overlapping-stride1")
def _max_pool_overlap_case():
    return (lambda x: F.max_pool2d(x, kernel=2, stride=1),
            {"x": _pool_input(18)})


@case("max_pool2d", "legacy-scatter")
def _max_pool_legacy_case():
    def fn(x):
        with legacy_mode():
            return F.max_pool2d(x, kernel=2, stride=2)

    return fn, {"x": _pool_input(19)}


@case("avg_pool2d", "kernel2")
def _avg_pool_case():
    rng = np.random.default_rng(20)
    return (lambda x: F.avg_pool2d(x, kernel=2),
            {"x": rng.standard_normal((2, 2, 4, 4))})


@case("global_avg_pool2d", "nchw")
def _global_avg_pool_case():
    rng = np.random.default_rng(21)
    return (lambda x: F.global_avg_pool2d(x),
            {"x": rng.standard_normal((2, 3, 4, 4))})


@case("dropout", "deterministic-mask")
def _dropout_case():
    rng = np.random.default_rng(22)
    # The mask Generator is recreated per call, so the same mask is
    # drawn during every finite-difference re-evaluation.
    return (lambda x: F.dropout(x, 0.4, np.random.default_rng(7)),
            {"x": rng.standard_normal((4, 6))})


# ----------------------------------------------------------------------
# Case registry: the fused levelised-sweep node (repro.model.gnn)
# ----------------------------------------------------------------------
def make_sweep_fixture(hidden: int = 3, seed: int = 23):
    """A small 3-level graph plus inputs for the fused sweep kernel.

    Shared with ``tests/nn`` so the fused/reference comparison tests
    drive the exact graph the auditor certifies.
    """
    from ..features import PinGraph
    from ..model.gnn import _plan_for

    rng = np.random.default_rng(seed)
    graph = PinGraph(
        features=np.zeros((8, 1)),
        net_edges=np.array([[0, 1, 3, 4], [3, 4, 6, 7]], dtype=np.int64),
        cell_edges=np.array([[2, 0, 3, 4], [4, 5, 6, 7]], dtype=np.int64),
        levels=[np.array([0, 1, 2]), np.array([3, 4, 5]),
                np.array([6, 7])],
        row_of_pin={},
        endpoint_rows=np.array([6, 7]),
        endpoint_names=["ep0", "ep1"],
    )
    inputs = {
        # Bias pre-activations away from the ReLU kink at zero so the
        # finite-difference probe never crosses it.
        "s": rng.standard_normal((8, hidden)) + 0.4,
        "w_net": rng.standard_normal((hidden, hidden)) * 0.5,
        "w_cell": rng.standard_normal((hidden, hidden)) * 0.5,
    }
    return graph, _plan_for(graph), inputs


@case("levelized_sweep", "fused-union-kernel", atol=1e-4)
def _levelized_sweep_case():
    from ..model.gnn import levelized_sweep

    graph, plan, inputs = make_sweep_fixture()

    def fn(s, w_net, w_cell):
        return levelized_sweep(s, w_net, w_cell, plan, graph.levels[0],
                               graph.features.shape[0])

    return fn, inputs


@case("node_contrastive_loss_multi", "three-node-chain", atol=1e-4)
def _contrastive_multi_case():
    from ..model.losses import node_contrastive_loss_multi

    rng = np.random.default_rng(7)
    inputs = {
        "g0": rng.standard_normal((3, 5)),
        "g1": rng.standard_normal((4, 5)),
        "g2": rng.standard_normal((2, 5)),
    }

    def fn(g0, g1, g2):
        return node_contrastive_loss_multi((g0, g1, g2),
                                           temperature=0.7)

    return fn, inputs


@case("node_contrastive_loss_multi", "two-node-pair-form", atol=1e-4)
def _contrastive_pair_case():
    from ..model.losses import node_contrastive_loss

    rng = np.random.default_rng(11)
    inputs = {
        "u_source": rng.standard_normal((4, 6)),
        "u_target": rng.standard_normal((3, 6)),
    }

    def fn(u_source, u_target):
        return node_contrastive_loss(u_source, u_target,
                                     temperature=0.5)

    return fn, inputs


@case("cmd_loss_multi", "vs-target-three-nodes")
def _cmd_multi_vs_target_case():
    from ..model.losses import cmd_loss_multi

    rng = np.random.default_rng(8)
    inputs = {
        "g0": np.tanh(rng.standard_normal((4, 3))) * 0.9,
        "g1": np.tanh(rng.standard_normal((3, 3))) * 0.9,
        "g2": np.tanh(rng.standard_normal((5, 3))) * 0.9,
    }

    def fn(g0, g1, g2):
        return cmd_loss_multi((g0, g1, g2), max_order=3)

    return fn, inputs


@case("cmd_loss_multi", "pairwise-three-nodes")
def _cmd_multi_pairwise_case():
    from ..model.losses import cmd_loss_multi

    rng = np.random.default_rng(9)
    inputs = {
        "g0": np.tanh(rng.standard_normal((3, 4))) * 0.9,
        "g1": np.tanh(rng.standard_normal((4, 4))) * 0.9,
        "g2": np.tanh(rng.standard_normal((2, 4))) * 0.9,
    }

    def fn(g0, g1, g2):
        return cmd_loss_multi((g0, g1, g2), max_order=3,
                              mode="pairwise")

    return fn, inputs
