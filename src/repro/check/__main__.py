"""``python -m repro.check`` — same surface as ``repro check``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
