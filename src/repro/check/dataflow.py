"""Per-function control-flow graphs + a generic forward dataflow engine.

The per-file rules in :mod:`repro.check.rules` see one statement at a
time; the whole-program analyses in :mod:`repro.check.analyses` need to
know what a *variable* holds at a *point* — is ``rng`` still the seeded
Generator from line 12 when line 40 draws from it inside a worker
callback?  That question is a forward dataflow problem, and this module
provides the two generic halves of its answer:

- :class:`CFG` — a per-function control-flow graph over raw AST
  statements.  Blocks hold statement lists; edges encode the possible
  successors, including loop back edges, ``break``/``continue`` exits,
  exception edges from a ``try`` body into its handlers, and the
  implicit loops of comprehensions.
- :class:`ForwardAnalysis` — a worklist fixed-point engine.  Subclasses
  supply the lattice (``initial``/``join``) and a per-statement
  ``transfer`` function; the engine iterates block facts to convergence
  (monotone transfers over a finite lattice terminate) and can then
  replay transfers to report the fact *in force at every statement*.

The engine is deliberately lattice-agnostic: the bundled
:class:`TagEnv` environment (variable -> set of abstract tags, joined
pointwise by union) is what the shipped analyses use, but the synthetic
lattices in ``tests/check/test_dataflow.py`` drive the same engine.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional

__all__ = ["Block", "CFG", "ForwardAnalysis", "TagEnv", "cfg_for_function",
           "cfg_for_comprehension"]


class Block:
    """One straight-line run of statements with explicit successors."""

    __slots__ = ("bid", "label", "statements", "successors")

    def __init__(self, bid: int, label: str = "") -> None:
        self.bid = bid
        self.label = label
        self.statements: List[ast.stmt] = []
        self.successors: List["Block"] = []

    def add_edge(self, other: "Block") -> None:
        if other not in self.successors:
            self.successors.append(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Block({self.bid}, {self.label!r}, "
                f"{len(self.statements)} stmts, "
                f"-> {[s.bid for s in self.successors]})")


class CFG:
    """Control-flow graph of one function (or comprehension) body."""

    def __init__(self, entry: Block, exit_block: Block,
                 blocks: List[Block]) -> None:
        self.entry = entry
        self.exit = exit_block
        self.blocks = blocks

    def predecessors(self) -> Dict[int, List[Block]]:
        preds: Dict[int, List[Block]] = {b.bid: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ.bid].append(block)
        return preds


class _Builder:
    """Structured-statement -> CFG lowering."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []

    def new_block(self, label: str = "") -> Block:
        block = Block(len(self.blocks), label)
        self.blocks.append(block)
        return block

    # ------------------------------------------------------------------
    def build(self, body: List[ast.stmt]) -> CFG:
        entry = self.new_block("entry")
        exit_block = self.new_block("exit")
        end = self._sequence(body, entry, [], exit_block)
        if end is not None:
            end.add_edge(exit_block)
        return CFG(entry, exit_block, self.blocks)

    def _sequence(self, stmts: Iterable[ast.stmt], current: Optional[Block],
                  loops: List[Dict[str, Block]],
                  exit_block: Block) -> Optional[Block]:
        """Thread ``stmts`` through ``current``; None = flow ended."""
        for stmt in stmts:
            if current is None:
                # Unreachable code after return/raise/break: give it a
                # disconnected block so its statements still exist in
                # the graph (facts never reach them).
                current = self.new_block("unreachable")
            current = self._statement(stmt, current, loops, exit_block)
        return current

    def _statement(self, stmt: ast.stmt, current: Block,
                   loops: List[Dict[str, Block]],
                   exit_block: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._branch(stmt, current, loops, exit_block)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current, loops, exit_block)
        if isinstance(stmt, ast.Try) or (hasattr(ast, "TryStar")
                                         and isinstance(stmt,
                                                        ast.TryStar)):
            return self._try(stmt, current, loops, exit_block)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # The context expressions evaluate in the current block;
            # the body is linear (exceptional exits are approximated
            # away, like any non-try statement).
            current.statements.append(stmt)
            return self._sequence(stmt.body, current, loops, exit_block)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.statements.append(stmt)
            current.add_edge(exit_block)
            return None
        if isinstance(stmt, ast.Break):
            current.statements.append(stmt)
            if loops:
                current.add_edge(loops[-1]["after"])
            return None
        if isinstance(stmt, ast.Continue):
            current.statements.append(stmt)
            if loops:
                current.add_edge(loops[-1]["header"])
            return None
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._match(stmt, current, loops, exit_block)
        # Plain statement (assignments, expressions, nested defs, ...).
        current.statements.append(stmt)
        return current

    def _branch(self, stmt: ast.If, current: Block,
                loops: List[Dict[str, Block]],
                exit_block: Block) -> Optional[Block]:
        current.statements.append(stmt)   # the test expression
        after = self.new_block("if-join")
        then_entry = self.new_block("if-then")
        current.add_edge(then_entry)
        then_end = self._sequence(stmt.body, then_entry, loops, exit_block)
        if then_end is not None:
            then_end.add_edge(after)
        if stmt.orelse:
            else_entry = self.new_block("if-else")
            current.add_edge(else_entry)
            else_end = self._sequence(stmt.orelse, else_entry, loops,
                                      exit_block)
            if else_end is not None:
                else_end.add_edge(after)
        else:
            current.add_edge(after)
        return after

    def _loop(self, stmt: ast.stmt, current: Block,
              loops: List[Dict[str, Block]],
              exit_block: Block) -> Optional[Block]:
        header = self.new_block("loop-header")
        after = self.new_block("loop-after")
        current.add_edge(header)
        # The header holds the loop statement itself: a transfer sees
        # the iterable / test and (for For) the target binding.
        header.statements.append(stmt)
        body_entry = self.new_block("loop-body")
        header.add_edge(body_entry)
        loops.append({"header": header, "after": after})
        body_end = self._sequence(stmt.body, body_entry, loops, exit_block)
        loops.pop()
        if body_end is not None:
            body_end.add_edge(header)   # back edge
        orelse = getattr(stmt, "orelse", None)
        if orelse:
            else_entry = self.new_block("loop-else")
            header.add_edge(else_entry)
            else_end = self._sequence(orelse, else_entry, loops, exit_block)
            if else_end is not None:
                else_end.add_edge(after)
        else:
            header.add_edge(after)
        return after

    def _try(self, stmt: ast.stmt, current: Block,
             loops: List[Dict[str, Block]],
             exit_block: Block) -> Optional[Block]:
        body_entry = self.new_block("try-body")
        current.add_edge(body_entry)
        body_end = self._sequence(stmt.body, body_entry, loops, exit_block)

        handler_ends: List[Optional[Block]] = []
        handler_entries: List[Block] = []
        for handler in stmt.handlers:
            h_entry = self.new_block("except")
            h_entry.statements.append(handler)   # the `except X as e:`
            handler_entries.append(h_entry)
            handler_ends.append(
                self._sequence(handler.body, h_entry, loops, exit_block))
        # An exception can fire anywhere inside the body, so a handler
        # may observe the facts of the body's entry *or* its end: edge
        # from both (standard may-analysis approximation).
        for h_entry in handler_entries:
            body_entry.add_edge(h_entry)
            if body_end is not None:
                body_end.add_edge(h_entry)

        if stmt.orelse:
            else_entry = self.new_block("try-else")
            if body_end is not None:
                body_end.add_edge(else_entry)
            body_end = self._sequence(stmt.orelse, else_entry, loops,
                                      exit_block)

        tails = [body_end] + handler_ends
        if stmt.finalbody:
            fin_entry = self.new_block("finally")
            for tail in tails:
                if tail is not None:
                    tail.add_edge(fin_entry)
            if all(tail is None for tail in tails):
                # Every path raised/returned; finally still runs.
                body_entry.add_edge(fin_entry)
            return self._sequence(stmt.finalbody, fin_entry, loops,
                                  exit_block)
        after = self.new_block("try-join")
        joined = False
        for tail in tails:
            if tail is not None:
                tail.add_edge(after)
                joined = True
        return after if joined else None

    def _match(self, stmt: "ast.Match", current: Block,
               loops: List[Dict[str, Block]],
               exit_block: Block) -> Optional[Block]:
        current.statements.append(stmt)
        after = self.new_block("match-join")
        for case in stmt.cases:
            case_entry = self.new_block("match-case")
            current.add_edge(case_entry)
            case_end = self._sequence(case.body, case_entry, loops,
                                      exit_block)
            if case_end is not None:
                case_end.add_edge(after)
        current.add_edge(after)   # no case may match
        return after


def cfg_for_function(node: ast.AST) -> CFG:
    """The CFG of a ``FunctionDef`` / ``AsyncFunctionDef`` / ``Lambda``."""
    if isinstance(node, ast.Lambda):
        body: List[ast.stmt] = [ast.Expr(value=node.body)]
    else:
        body = list(node.body)
    return _Builder().build(body)


def cfg_for_comprehension(node: ast.AST) -> CFG:
    """The CFG of a comprehension's implicit nested loops.

    ``[f(x) for x in xs if p(x)]`` lowers to the loop structure it
    desugars to: one loop header per ``for`` clause (holding a
    synthesized ``For`` over the clause's iterable and target), one
    condition block per ``if``, and an innermost body evaluating the
    element (and, for dict comprehensions, the value) expression.
    """
    builder = _Builder()
    entry = builder.new_block("entry")
    exit_block = builder.new_block("exit")
    current = entry
    afters: List[Block] = []
    for comp in node.generators:
        header = builder.new_block("comp-for")
        after = builder.new_block("comp-after")
        synthetic = ast.For(target=comp.target, iter=comp.iter,
                            body=[], orelse=[])
        ast.copy_location(synthetic, comp.iter)
        header.statements.append(synthetic)
        current.add_edge(header)
        header.add_edge(after)
        afters.append(after)
        body = builder.new_block("comp-body")
        header.add_edge(body)
        current = body
        for test in comp.ifs:
            cond = builder.new_block("comp-if")
            stmt = ast.Expr(value=test)
            ast.copy_location(stmt, test)
            current.statements.append(stmt)
            current.add_edge(cond)
            current.add_edge(header)   # condition false: next item
            current = cond
    elements = [node.elt] if not isinstance(node, ast.DictComp) \
        else [node.key, node.value]
    for expr in elements:
        stmt = ast.Expr(value=expr)
        ast.copy_location(stmt, expr)
        current.statements.append(stmt)
    # Innermost body loops back to the innermost header.
    innermost_header = [b for b in builder.blocks
                        if b.label == "comp-for"][-1]
    current.add_edge(innermost_header)
    # Chain the after-blocks outward: inner loop exhausted -> next
    # outer iteration; outermost exhausted -> exit.
    headers = [b for b in builder.blocks if b.label == "comp-for"]
    for i, after in enumerate(afters):
        if i == 0:
            after.add_edge(exit_block)
        else:
            after.add_edge(headers[i - 1])
    return CFG(entry, exit_block, builder.blocks)


# ----------------------------------------------------------------------
# The fixed-point engine
# ----------------------------------------------------------------------
class ForwardAnalysis:
    """A forward may-analysis: subclass and supply the lattice.

    Subclasses implement:

    - ``initial()`` — the fact at the function entry;
    - ``join(a, b)`` — least upper bound of two facts (must be
      monotone; ``None`` marks an unreached block and joins as
      identity);
    - ``transfer(stmt, fact)`` — the fact after one statement.  Must
      not mutate ``fact``; return a new value (or ``fact`` itself when
      nothing changed).

    ``run`` iterates to a fixed point and returns per-block entry
    facts; ``statement_facts`` additionally replays the converged
    transfers to report the fact in force *immediately before* every
    statement, keyed by ``id(stmt)``.
    """

    max_iterations = 1000

    def initial(self) -> Any:
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def transfer(self, stmt: ast.stmt, fact: Any) -> Any:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _block_out(self, block: Block, fact: Any) -> Any:
        for stmt in block.statements:
            fact = self.transfer(stmt, fact)
        return fact

    def run(self, cfg: CFG) -> Dict[int, Any]:
        entry_facts: Dict[int, Any] = {b.bid: None for b in cfg.blocks}
        entry_facts[cfg.entry.bid] = self.initial()
        worklist: List[Block] = [cfg.entry]
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > self.max_iterations * max(1, len(cfg.blocks)):
                raise RuntimeError(
                    "dataflow engine failed to converge (non-monotone "
                    "transfer or unbounded lattice?)")
            block = worklist.pop(0)
            fact_in = entry_facts[block.bid]
            if fact_in is None:
                continue
            fact_out = self._block_out(block, fact_in)
            for succ in block.successors:
                current = entry_facts[succ.bid]
                merged = fact_out if current is None \
                    else self.join(current, fact_out)
                if merged != current:
                    entry_facts[succ.bid] = merged
                    if succ not in worklist:
                        worklist.append(succ)
        return entry_facts

    def statement_facts(self, cfg: CFG) -> Dict[int, Any]:
        """``id(stmt) -> fact`` immediately before each statement."""
        entry_facts = self.run(cfg)
        at: Dict[int, Any] = {}
        for block in cfg.blocks:
            fact = entry_facts[block.bid]
            if fact is None:
                continue
            for stmt in block.statements:
                at[id(stmt)] = fact
                fact = self.transfer(stmt, fact)
        return at


class TagEnv(ForwardAnalysis):
    """Variable -> frozenset-of-tags environment analysis.

    The workhorse fact domain of the shipped analyses: each variable
    maps to the set of abstract tags it *may* carry (``{"rng"}``,
    ``{"set"}``, ``{"process-pool"}``, ...).  ``evaluate`` assigns tags
    to an expression; assignments bind them, joins union them.  Tags
    are purely additive within a statement, and rebinding a variable
    replaces its tags — exactly the strong update a single-target
    assignment licenses.
    """

    def __init__(self, evaluate: Callable[[ast.AST, Dict[str, FrozenSet[str]]],
                                          FrozenSet[str]]) -> None:
        self.evaluate = evaluate

    def initial(self) -> Dict[str, FrozenSet[str]]:
        return {}

    def join(self, a: Dict[str, FrozenSet[str]],
             b: Dict[str, FrozenSet[str]]) -> Dict[str, FrozenSet[str]]:
        if a == b:
            return a
        merged = dict(a)
        for name, tags in b.items():
            merged[name] = merged.get(name, frozenset()) | tags
        return merged

    def _bind(self, env: Dict[str, FrozenSet[str]], target: ast.AST,
              tags: FrozenSet[str]) -> Dict[str, FrozenSet[str]]:
        if isinstance(target, ast.Name):
            env = dict(env)
            if tags:
                env[target.id] = tags
            else:
                env.pop(target.id, None)
            return env
        if isinstance(target, (ast.Tuple, ast.List)):
            # A tuple unpack spreads the (possibly empty) tags to every
            # element — imprecise but sound for may-facts.
            for element in target.elts:
                env = self._bind(env, element, tags)
        return env

    def transfer(self, stmt: ast.stmt,
                 fact: Dict[str, FrozenSet[str]]
                 ) -> Dict[str, FrozenSet[str]]:
        if isinstance(stmt, ast.Assign):
            tags = self.evaluate(stmt.value, fact)
            for target in stmt.targets:
                fact = self._bind(fact, target, tags)
            return fact
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            return self._bind(fact, stmt.target,
                              self.evaluate(stmt.value, fact))
        if isinstance(stmt, ast.AugAssign):
            tags = self.evaluate(stmt.value, fact)
            if isinstance(stmt.target, ast.Name):
                existing = fact.get(stmt.target.id, frozenset())
                return self._bind(fact, stmt.target, existing | tags)
            return fact
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Loop target binds the *element* of the iterable; element
            # tags are the iterable's tags minus container markers.
            tags = self.evaluate(stmt.iter, fact) - {"set", "list",
                                                     "dict"}
            return self._bind(fact, stmt.target, tags)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    fact = self._bind(fact, item.optional_vars,
                                      self.evaluate(item.context_expr,
                                                    fact))
            return fact
        return fact
