"""Static and dynamic power estimation.

Leakage comes straight from the library's per-cell leakage numbers;
dynamic power uses the standard ``P = a * C * V^2 * f`` model with
switching activities propagated structurally (primary inputs toggle at a
given rate; each gate's output activity is a damped function of its
input activities — a cheap stand-in for full activity propagation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..netlist import Netlist
from ..route.estimator import ParasiticsProvider

#: Nominal supply voltage per node family (V) — synthetic but ordered
#: correctly: older nodes run hotter and higher-voltage.
SUPPLY_BY_NODE = {130.0: 1.2, 7.0: 0.7}

#: How strongly a gate attenuates switching activity (0 = blocks all,
#: 1 = passes all).  Real activity depends on the boolean function; a
#: single damping constant is the classic quick estimate.
ACTIVITY_DAMPING = 0.8


@dataclass
class PowerReport:
    """Per-design power breakdown (arbitrary-but-consistent units)."""

    leakage: float
    dynamic: float
    clock_tree: float
    by_function: Dict[str, float]

    @property
    def total(self) -> float:
        return self.leakage + self.dynamic + self.clock_tree

    def format(self) -> str:
        lines = [
            f"total power: {self.total:.4g} "
            f"(leakage {self.leakage:.4g}, dynamic {self.dynamic:.4g}, "
            f"clock {self.clock_tree:.4g})",
            "by function:",
        ]
        for fn, value in sorted(self.by_function.items(),
                                key=lambda kv: -kv[1]):
            lines.append(f"  {fn:>8}: {value:.4g}")
        return "\n".join(lines)


def estimate_power(netlist: Netlist, parasitics: ParasiticsProvider,
                   clock_period: Optional[float] = None,
                   input_activity: float = 0.2) -> PowerReport:
    """Estimate leakage + dynamic power of a placed design.

    Parameters
    ----------
    netlist:
        Placed design (parasitics need pin locations).
    parasitics:
        Interconnect model supplying per-net capacitance.
    clock_period:
        Clock period in ns; defaults to the library's default.
    input_activity:
        Toggle probability per cycle at primary inputs.
    """
    lib = netlist.library
    period = clock_period or lib.default_clock_period
    freq = 1.0 / period  # GHz when period is in ns
    vdd = SUPPLY_BY_NODE.get(lib.node_nm, 1.0)

    # Structural activity propagation in topological order of nets.
    activity: Dict[str, float] = {}
    for pin in netlist.primary_inputs:
        if pin.net is not None:
            activity[pin.net.name] = input_activity
    for cell in netlist.sequential_cells:
        if cell.output_pin.net is not None:
            activity[cell.output_pin.net.name] = 0.5 * input_activity

    from collections import deque

    dependents: Dict[str, list] = {}
    indegree: Dict[str, int] = {}
    for cell in netlist.combinational_cells:
        count = 0
        for in_pin in cell.input_pins:
            net = in_pin.net
            if net is None or net.driver is None or net.is_clock:
                continue
            drv = net.driver
            if drv.cell is not None and not drv.cell.is_sequential:
                count += 1
                dependents.setdefault(drv.cell.name, []).append(cell)
        indegree[cell.name] = count
    queue = deque(c for c in netlist.combinational_cells
                  if indegree[c.name] == 0)
    while queue:
        cell = queue.popleft()
        in_acts = []
        for p in cell.input_pins:
            if p.net is not None:
                in_acts.append(activity.get(p.net.name, input_activity))
        out_act = ACTIVITY_DAMPING * float(np.mean(in_acts)) \
            if in_acts else 0.0
        if cell.output_pin.net is not None:
            activity[cell.output_pin.net.name] = out_act
        for dep in dependents.get(cell.name, []):
            indegree[dep.name] -= 1
            if indegree[dep.name] == 0:
                queue.append(dep)

    leakage = 0.0
    dynamic = 0.0
    clock_tree = 0.0
    by_function: Dict[str, float] = {}
    for cell in netlist.cells.values():
        leakage += cell.ref.leakage
        contribution = cell.ref.leakage
        net = cell.output_pin.net
        if net is not None and not net.is_clock:
            act = activity.get(net.name, 0.0)
            cap = parasitics.net_load(net)
            p_dyn = act * cap * vdd * vdd * freq
            dynamic += p_dyn
            contribution += p_dyn
        if cell.is_sequential:
            # CK pin switches every cycle (activity 1).
            clock_tree += cell.ref.input_cap("CK") * vdd * vdd * freq
        by_function[cell.ref.function] = \
            by_function.get(cell.ref.function, 0.0) + contribution
    return PowerReport(leakage=leakage, dynamic=dynamic,
                       clock_tree=clock_tree, by_function=by_function)
