"""Design and prediction analysis: summaries, histograms, diagnostics."""

from .accuracy import (
    AccuracyProfile,
    accuracy_profile,
    compare_models,
    elmore_baseline_profile,
    top_k_overlap,
)
from .power import PowerReport, estimate_power
from .reports import (
    DesignSummary,
    congestion_summary,
    design_summary,
    full_report,
    slack_histogram,
    timing_summary,
)

__all__ = [
    "AccuracyProfile",
    "DesignSummary",
    "PowerReport",
    "estimate_power",
    "accuracy_profile",
    "compare_models",
    "congestion_summary",
    "design_summary",
    "elmore_baseline_profile",
    "full_report",
    "slack_histogram",
    "timing_summary",
    "top_k_overlap",
]
