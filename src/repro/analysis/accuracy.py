"""Prediction-accuracy analysis beyond scalar R^2.

Tools for dissecting *where* a timing predictor errs: per-depth error
profiles, critical-endpoint ranking quality (does the model find the
same worst paths signoff does?), and pessimism/optimism balance.  These
matter to a user more than aggregate R^2: a pre-route predictor's job is
to point optimization at the right endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from ..flow import DesignData


@dataclass
class AccuracyProfile:
    """Error diagnostics of one model on one design."""

    design: str
    r2: float
    mae: float
    optimism_rate: float
    top_k_overlap: Dict[int, float]
    rank_correlation: float

    def format(self) -> str:
        overlaps = ", ".join(f"top{k}: {v:.0%}"
                             for k, v in self.top_k_overlap.items())
        return (f"{self.design}: R^2={self.r2:.3f} MAE={self.mae:.4f}ns "
                f"optimistic on {self.optimism_rate:.0%} of endpoints, "
                f"rank-corr={self.rank_correlation:.3f} ({overlaps})")


def _rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation without scipy.stats tie-handling."""
    ar = np.argsort(np.argsort(a)).astype(float)
    br = np.argsort(np.argsort(b)).astype(float)
    if ar.std() < 1e-12 or br.std() < 1e-12:
        return 0.0
    return float(np.corrcoef(ar, br)[0, 1])


def top_k_overlap(truth: np.ndarray, pred: np.ndarray, k: int) -> float:
    """Fraction of the true k most-critical endpoints the model finds."""
    k = min(k, len(truth))
    if k == 0:
        return 0.0
    true_top = set(np.argsort(-truth)[:k].tolist())
    pred_top = set(np.argsort(-pred)[:k].tolist())
    return len(true_top & pred_top) / k


def accuracy_profile(design: DesignData,
                     predict: Callable[[DesignData], np.ndarray],
                     ks: Sequence[int] = (5, 10)) -> AccuracyProfile:
    """Full accuracy diagnostics of ``predict`` on ``design``."""
    from ..train.metrics import mae as mae_fn
    from ..train.metrics import r2_score

    pred = predict(design)
    truth = design.labels
    return AccuracyProfile(
        design=design.name,
        r2=r2_score(truth, pred),
        mae=mae_fn(truth, pred),
        optimism_rate=float((pred < truth).mean()),
        top_k_overlap={k: top_k_overlap(truth, pred, k) for k in ks},
        rank_correlation=_rank_correlation(truth, pred),
    )


def compare_models(designs: Sequence[DesignData],
                   predictors: Dict[str, Callable[[DesignData],
                                                  np.ndarray]],
                   ks: Sequence[int] = (5, 10)) -> str:
    """Render accuracy profiles of several models side by side."""
    lines = []
    for name, predict in predictors.items():
        lines.append(f"== {name} ==")
        for design in designs:
            lines.append("  " + accuracy_profile(design, predict,
                                                 ks).format())
    return "\n".join(lines)


def elmore_baseline_profile(design: DesignData,
                            ks: Sequence[int] = (5, 10)
                            ) -> AccuracyProfile:
    """Profile of the traditional pre-route linear-RC STA estimate.

    The paper's introduction motivates ML prediction by the inaccuracy of
    Elmore-style pre-route analysis; this measures that baseline on our
    substrate using the flow's stored ``pre_route_at``.
    """
    return accuracy_profile(design, lambda d: d.pre_route_at, ks)
