"""Design analysis reports (the tool-style summaries the CLI prints).

Three report families, all plain-text renderable:

- :func:`design_summary` — cell/net/area/utilization statistics, the
  gate mix, and drive-strength histogram.
- :func:`timing_summary` — slack histogram and per-endpoint-class stats
  from a :class:`~repro.sta.engine.TimingReport`.
- :func:`congestion_summary` — routing-demand hot spots from a
  :class:`~repro.route.router.GlobalRouter`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..netlist import Netlist
from ..place import Floorplan
from ..route.router import GlobalRouter
from ..sta import TimingReport


@dataclass
class DesignSummary:
    """Structural snapshot of a mapped, placed design."""

    name: str
    library: str
    cells: int
    nets: int
    sequential: int
    total_area: float
    utilization: float
    gate_mix: Dict[str, int]
    drive_histogram: Dict[float, int]

    def format(self) -> str:
        lines = [
            f"Design {self.name} ({self.library})",
            f"  cells: {self.cells} ({self.sequential} sequential), "
            f"nets: {self.nets}",
            f"  cell area: {self.total_area:.2f} um^2, "
            f"utilization: {self.utilization:.1%}",
            "  gate mix:",
        ]
        for fn, count in sorted(self.gate_mix.items(),
                                key=lambda kv: -kv[1]):
            lines.append(f"    {fn:>8}: {count}")
        lines.append("  drive strengths:")
        for drive, count in sorted(self.drive_histogram.items()):
            lines.append(f"    x{drive:g}: {count}")
        return "\n".join(lines)


def design_summary(netlist: Netlist,
                   floorplan: Optional[Floorplan] = None) -> DesignSummary:
    """Build a :class:`DesignSummary` for a mapped design."""
    gate_mix: Dict[str, int] = {}
    drive_hist: Dict[float, int] = {}
    for cell in netlist.cells.values():
        gate_mix[cell.ref.function] = gate_mix.get(cell.ref.function,
                                                   0) + 1
        drive_hist[cell.ref.drive_strength] = \
            drive_hist.get(cell.ref.drive_strength, 0) + 1
    area = netlist.total_cell_area()
    utilization = 0.0
    if floorplan is not None and floorplan.core_area > 0:
        utilization = area / floorplan.core_area
    return DesignSummary(
        name=netlist.name,
        library=netlist.library.name,
        cells=len(netlist.cells),
        nets=len(netlist.nets),
        sequential=len(netlist.sequential_cells),
        total_area=area,
        utilization=utilization,
        gate_mix=gate_mix,
        drive_histogram=drive_hist,
    )


def slack_histogram(report: TimingReport, bins: int = 8
                    ) -> List[Tuple[float, float, int]]:
    """Histogram of endpoint slacks as (low, high, count) triples."""
    slacks = np.array(list(report.slack.values()))
    if slacks.size == 0:
        return []
    lo, hi = float(slacks.min()), float(slacks.max())
    if hi - lo < 1e-12:
        return [(lo, hi, int(slacks.size))]
    counts, edges = np.histogram(slacks, bins=bins, range=(lo, hi))
    return [(float(edges[i]), float(edges[i + 1]), int(counts[i]))
            for i in range(bins)]


def timing_summary(report: TimingReport, bins: int = 8) -> str:
    """Render a slack histogram plus WNS/TNS headline."""
    lines = [
        f"clock period: {report.clock.period:.4f} ns",
        f"WNS: {report.wns:+.4f} ns   TNS: {report.tns:+.4f} ns   "
        f"endpoints: {len(report.slack)}",
        "slack histogram:",
    ]
    rows = slack_histogram(report, bins)
    peak = max((c for _, _, c in rows), default=1) or 1
    for lo, hi, count in rows:
        bar = "#" * max(1, int(24 * count / peak)) if count else ""
        lines.append(f"  [{lo:+8.3f}, {hi:+8.3f}) {count:>5} {bar}")
    return "\n".join(lines)


def congestion_summary(router: GlobalRouter, top: int = 5) -> str:
    """Render the most congested routing bins."""
    grid = router.grid
    util = grid.demand / grid.capacity
    flat = [(float(util[i, j]), i, j)
            for i in range(util.shape[0])
            for j in range(util.shape[1])
            if util[i, j] > 0]
    flat.sort(reverse=True)
    lines = [
        f"congestion grid {grid.bins}x{grid.bins}, "
        f"peak {grid.max_utilization:.2f}, "
        f"mean {float(util.mean()):.3f}",
        f"top {min(top, len(flat))} hot spots:",
    ]
    for value, i, j in flat[:top]:
        lines.append(f"  bin ({i:>2},{j:>2}): {value:.2f}")
    total_wl = sum(router.routed_length.values())
    lines.append(f"total routed wirelength: {total_wl:.1f} um over "
                 f"{len(router.routed_length)} nets")
    return "\n".join(lines)


def full_report(netlist: Netlist, floorplan: Floorplan,
                report: TimingReport,
                router: Optional[GlobalRouter] = None) -> str:
    """All sections concatenated — what ``repro.cli flow -v`` would show."""
    parts = [design_summary(netlist, floorplan).format(),
             timing_summary(report)]
    if router is not None:
        parts.append(congestion_summary(router))
    return "\n\n".join(parts)
