"""Reproduction of "Disentangle, Align and Generalize: Learning A Timing
Predictor from Different Technology Nodes" (DAC 2024).

Package map
-----------
- :mod:`repro.nn` -- numpy autograd + layers (PyTorch substitute)
- :mod:`repro.techlib` -- synthetic 130nm / 7nm standard-cell libraries
- :mod:`repro.netlist` -- logic graphs, benchmarks, gate-level netlists,
  technology mapping
- :mod:`repro.place` / :mod:`repro.route` / :mod:`repro.sta` /
  :mod:`repro.opt` -- the physical-design flow producing the dataset
- :mod:`repro.features` -- layout images, fanin cones, pin-graph encoding
- :mod:`repro.flow` -- end-to-end data generation (Table 1)
- :mod:`repro.model` -- the paper's model (GNN+CNN extractor,
  disentanglement, alignment losses, Bayesian readout) and the DAC23
  baseline
- :mod:`repro.train` -- trainers, baseline strategies, metrics
- :mod:`repro.experiments` -- drivers for every table and figure
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
