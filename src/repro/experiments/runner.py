"""One-stop experiment driver: regenerate every table and figure.

``python -m repro.experiments.runner`` reruns the full evaluation
(Tables 1-3, Figures 1/6/8) and prints paper-style renderings.  The
same entry points back the pytest benchmarks in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from .datasets import build_dataset
from .extensions import (
    format_calibration,
    format_reverse_transfer,
    run_reverse_transfer,
    run_uncertainty_calibration,
)
from .fig1 import format_fig1, run_fig1
from .fig6 import format_fig6, run_fig6
from .fig8 import format_fig8, run_fig8
from .table1 import format_table1, run_table1
from .table2 import format_table2, run_table2
from .table3 import format_table3, run_table3

EXPERIMENTS = {
    "table1": (run_table1, format_table1, False),
    "table2": (run_table2, format_table2, True),
    "table3": (run_table3, format_table3, True),
    "fig1": (run_fig1, format_fig1, True),
    "fig6": (run_fig6, format_fig6, False),
    "fig8": (run_fig8, format_fig8, True),
    "calibration": (run_uncertainty_calibration, format_calibration, True),
}


def run_all(names=None, seed: int = 0, steps: Optional[int] = None,
            stream=None, workers: int = 1,
            use_cache: bool = True) -> None:
    """Run the named experiments (all by default) and print results."""
    stream = stream or sys.stdout
    names = names or list(EXPERIMENTS) + ["reverse"]
    dataset = build_dataset(workers=workers, use_cache=use_cache)
    for name in names:
        t0 = time.perf_counter()
        if name == "reverse":
            result = run_reverse_transfer(
                seed=seed, **({"steps": steps} if steps else {})
            )
            fmt = format_reverse_transfer
        else:
            run, fmt, trains = EXPERIMENTS[name]
            kwargs = {"dataset": dataset}
            if trains:
                kwargs["seed"] = seed
                if steps is not None:
                    kwargs["steps"] = steps
            result = run(**kwargs)
        elapsed = time.perf_counter() - t0
        print(f"\n=== {name} ({elapsed:.1f}s) ===", file=stream)
        print(fmt(result), file=stream)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument("experiments", nargs="*",
                        choices=list(EXPERIMENTS) + ["reverse"],
                        help="subset to run (default: all)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--steps", type=int, default=None,
                        help="override training steps (faster, rougher)")
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for cold dataset builds")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk design cache")
    args = parser.parse_args(argv)
    run_all(args.experiments or None, seed=args.seed, steps=args.steps,
            workers=args.workers, use_cache=not args.no_cache)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
