"""Experiment: Figure 6 — kernel density estimation of arrival times.

The paper's Figure 6 shows the arrival-time distributions of the 130nm
training set, the 7nm training set, and the 7nm test set, highlighting
the order-of-magnitude scale gap that breaks naive data merging.  We
compute Gaussian KDEs (scipy) over each population and report both the
curves and summary statistics.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from scipy import stats as sstats

from .datasets import ExperimentDataset, build_dataset


def run_fig6(dataset: Optional[ExperimentDataset] = None,
             grid_points: int = 200) -> Dict[str, Dict[str, np.ndarray]]:
    """KDE curves + summary stats for the three arrival-time populations.

    Returns ``{population: {"grid": x, "density": f(x), "mean": ...,
    "median": ..., "max": ...}}`` with populations ``"130nm train"``,
    ``"7nm train"``, ``"7nm test"``.
    """
    dataset = dataset or build_dataset()
    populations = {
        "130nm train": np.concatenate(
            [d.labels for d in dataset.train_source]
        ),
        "7nm train": np.concatenate(
            [d.labels for d in dataset.train_target]
        ),
        "7nm test": np.concatenate([d.labels for d in dataset.test]),
    }
    out: Dict[str, Dict[str, np.ndarray]] = {}
    for name, values in populations.items():
        kde = sstats.gaussian_kde(values)
        grid = np.linspace(0.0, float(values.max()) * 1.1, grid_points)
        out[name] = {
            "grid": grid,
            "density": kde(grid),
            "mean": float(values.mean()),
            "median": float(np.median(values)),
            "max": float(values.max()),
            "count": int(values.size),
        }
    return out


def scale_gap(fig6_result: Dict[str, Dict[str, np.ndarray]]) -> float:
    """Ratio of 130nm to 7nm mean arrival time (the Figure 6 headline)."""
    return (fig6_result["130nm train"]["mean"]
            / fig6_result["7nm train"]["mean"])


def format_fig6(fig6_result: Dict[str, Dict[str, np.ndarray]]) -> str:
    """ASCII rendering: one density sparkline per population."""
    blocks = " .:-=+*#%@"
    lines = []
    for name, data in fig6_result.items():
        dens = data["density"]
        peak = dens.max() or 1.0
        spark = "".join(
            blocks[min(int(v / peak * (len(blocks) - 1)), len(blocks) - 1)]
            for v in dens[::4]
        )
        lines.append(
            f"{name:>12} | {spark} | mean={data['mean']:.3f}ns "
            f"median={data['median']:.3f}ns n={data['count']}"
        )
    lines.append(f"scale gap (130nm/7nm means): {scale_gap(fig6_result):.1f}x")
    return "\n".join(lines)
