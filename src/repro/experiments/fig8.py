"""Experiment: Figure 8 — module ablation.

Trains three variants of the paper's model — disentangle/align only
(DA only), Bayesian readout only, and the full model — and compares
per-design R^2 on the 7nm test set.  The paper's shape: removing either
module costs accuracy, and which single module wins varies by design.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..train import TrainConfig, r2_score, train_ours
from .datasets import ExperimentDataset, build_dataset
from .table2 import OURS_CONFIG

VARIANTS = ("DA only", "Bayesian only", "Full")


def run_fig8(dataset: Optional[ExperimentDataset] = None, seed: int = 0,
             steps: Optional[int] = None) -> List[Dict[str, object]]:
    """One row per variant: per-test-design R^2 plus the average."""
    dataset = dataset or build_dataset()
    kwargs = dict(OURS_CONFIG)
    if steps is not None:
        kwargs["steps"] = steps
    flag_sets = {
        "DA only": dict(use_disentangle_align=True, use_bayesian=False),
        "Bayesian only": dict(use_disentangle_align=False,
                              use_bayesian=True),
        "Full": dict(use_disentangle_align=True, use_bayesian=True),
    }
    rows: List[Dict[str, object]] = []
    for variant in VARIANTS:
        model = train_ours(dataset.train, dataset.in_features,
                           TrainConfig(seed=seed, **kwargs),
                           model_seed=seed, **flag_sets[variant])
        row: Dict[str, object] = {"variant": variant}
        scores = []
        for design in dataset.test:
            r2 = r2_score(design.labels, model.predict(design))
            row[design.name] = r2
            scores.append(r2)
        row["average"] = float(np.mean(scores))
        rows.append(row)
    return rows


def format_fig8(rows: List[Dict[str, object]]) -> str:
    designs = [k for k in rows[0] if k not in ("variant", "average")]
    header = f"{'variant':>14} | " + " | ".join(
        f"{d:>8}" for d in designs
    ) + " | average"
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " | ".join(f"{row[d]:>8.3f}" for d in designs)
        lines.append(f"{row['variant']:>14} | {cells} | "
                     f"{row['average']:>7.3f}")
    return "\n".join(lines)
