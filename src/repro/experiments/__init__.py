"""Experiment drivers regenerating every table and figure of the paper."""

from .datasets import (
    DATASET_SCALE,
    ExperimentDataset,
    LadderDataset,
    build_dataset,
    build_ladder_dataset,
    ladder_split,
    make_libraries,
)
from .extensions import (
    format_calibration,
    format_reverse_transfer,
    run_reverse_transfer,
    run_uncertainty_calibration,
)
from .fig1 import format_fig1, run_fig1
from .ladder import format_ladder_study, run_ladder_study
from .fig6 import format_fig6, run_fig6, scale_gap
from .fig8 import format_fig8, run_fig8
from .table1 import format_table1, run_table1
from .table2 import (
    Table2Row,
    format_table2,
    run_table2,
    summarize,
    train_all_strategies,
)
from .table3 import SUBSETS, format_table3, run_table3

__all__ = [
    "DATASET_SCALE",
    "ExperimentDataset",
    "LadderDataset",
    "SUBSETS",
    "Table2Row",
    "build_dataset",
    "build_ladder_dataset",
    "format_calibration",
    "format_fig1",
    "format_ladder_study",
    "ladder_split",
    "format_fig6",
    "format_fig8",
    "format_table1",
    "format_table2",
    "format_reverse_transfer",
    "format_table3",
    "make_libraries",
    "run_fig1",
    "run_ladder_study",
    "run_reverse_transfer",
    "run_uncertainty_calibration",
    "run_fig6",
    "run_fig8",
    "run_table1",
    "run_table2",
    "run_table3",
    "scale_gap",
    "summarize",
    "train_all_strategies",
]
