"""Dataset construction for the paper's experiments (Table 1).

Builds the exact train/test split of the paper — four 130nm designs plus
smallboom at 7nm for training, five 7nm designs for testing — through the
full synthetic PnR flow, with joint feature normalisation fitted on the
training graphs only.

Because flow runs are deterministic but not free, each built design is
cached on disk (``~/.cache/repro-dac24`` by default, see
:mod:`repro.flow.cache`) keyed by name/node/scale/resolution/seed plus
a code-version salt; cold builds can fan out over worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..features import apply_normalization, normalize_features
from ..flow import DesignData, build_designs
from ..netlist import TEST_SPLIT, TRAIN_SPLIT
from ..techlib import NodeLadder, make_asap7_library, make_sky130_library

#: Default experiment scale knobs (see DESIGN.md section 5).
DATASET_SCALE = {
    "scale": 1.0,
    "resolution": 32,
    "seed": 0,
}


@dataclass
class ExperimentDataset:
    """The paper's dataset: train designs (two nodes) + 7nm test designs."""

    train: List[DesignData]
    test: List[DesignData]
    in_features: int
    norm_params: Dict[str, np.ndarray]

    @property
    def train_source(self) -> List[DesignData]:
        return [d for d in self.train if d.node == "130nm"]

    @property
    def train_target(self) -> List[DesignData]:
        return [d for d in self.train if d.node == "7nm"]

    def by_name(self, name: str) -> DesignData:
        for d in self.train + self.test:
            if d.name == name:
                return d
        raise KeyError(name)

    def subset_train(self, source_names: Sequence[str]
                     ) -> List[DesignData]:
        """Target designs plus the named 130nm designs (Table 3 rows)."""
        keep = set(source_names)
        return self.train_target + [d for d in self.train_source
                                    if d.name in keep]


def make_libraries():
    """The two synthetic nodes keyed the way the dataset expects."""
    return {"130nm": make_sky130_library(), "7nm": make_asap7_library()}


def build_dataset(scale: float = None, resolution: int = None,
                  seed: int = None, use_cache: bool = True,
                  workers: int = 1,
                  cache_dir: Union[str, Path, None] = None
                  ) -> ExperimentDataset:
    """Build (or load from cache) the full Table-1 dataset.

    Normalisation is fitted on the training graphs and applied to the
    test graphs; the returned dataset is ready for training.  Designs
    are cached individually (see :class:`repro.flow.FlowCache`); cold
    builds run in ``workers`` processes when ``workers > 1``.
    """
    scale = DATASET_SCALE["scale"] if scale is None else scale
    resolution = DATASET_SCALE["resolution"] if resolution is None \
        else resolution
    seed = DATASET_SCALE["seed"] if seed is None else seed

    names = list(TRAIN_SPLIT.items()) + [(n, "7nm") for n in TEST_SPLIT]
    designs = build_designs(names, scale=scale, resolution=resolution,
                            seed=seed, workers=workers,
                            use_cache=use_cache, cache_dir=cache_dir)

    train = designs[: len(TRAIN_SPLIT)]
    test = designs[len(TRAIN_SPLIT):]
    params = normalize_features([d.graph for d in train])
    for d in test:
        apply_normalization(d.graph, params)
    return ExperimentDataset(
        train=train,
        test=test,
        in_features=train[0].graph.features.shape[1],
        norm_params=params,
    )


@dataclass
class LadderDataset(ExperimentDataset):
    """A K-node dataset built against a :class:`NodeLadder`'s chain."""

    ladder: Optional[NodeLadder] = None
    target_label: str = "7nm"

    @property
    def node_labels(self) -> List[str]:
        return self.ladder.node_labels

    @property
    def train_source(self) -> List[DesignData]:
        return [d for d in self.train if d.node != self.target_label]

    @property
    def train_target(self) -> List[DesignData]:
        return [d for d in self.train if d.node == self.target_label]

    def by_node(self, label: str) -> List[DesignData]:
        return [d for d in self.train if d.node == label]


def ladder_split(ladder: NodeLadder,
                 target_label: Optional[str] = None
                 ) -> Tuple[List[Tuple[str, str]], List[Tuple[str, str]]]:
    """Map the paper's split onto a ladder's nodes.

    Target-role designs (TRAIN_SPLIT's 7nm entries and every test
    design) go to ``target_label`` — by default the ladder's smallest
    node; pass a large node for reverse transfer.  Source-role designs
    round-robin across the remaining nodes in chain order, so every
    source node contributes data.  On the two-anchor ladder this
    reproduces :func:`build_dataset`'s split exactly.
    """
    target = ladder.target_label if target_label is None else target_label
    if target not in ladder.node_labels:
        raise ValueError(
            f"target {target!r} is not one of the ladder's nodes "
            f"{ladder.node_labels}")
    sources = [label for label in ladder.node_labels if label != target]
    train: List[Tuple[str, str]] = []
    i = 0
    for name, role in TRAIN_SPLIT.items():
        if role == "7nm":
            train.append((name, target))
        else:
            train.append((name, sources[i % len(sources)]))
            i += 1
    test = [(name, target) for name in TEST_SPLIT]
    return train, test


def build_ladder_dataset(ladder: Optional[NodeLadder] = None,
                         target_label: Optional[str] = None,
                         scale: float = None, resolution: int = None,
                         seed: int = None, use_cache: bool = True,
                         workers: int = 1,
                         cache_dir: Union[str, Path, None] = None
                         ) -> LadderDataset:
    """Build the Table-1 split against a K-node ladder.

    With the default two-anchor ladder this produces byte-identical
    designs to :func:`build_dataset` (the anchors are the real
    libraries, so even the flow cache entries are shared).
    """
    ladder = ladder if ladder is not None \
        else NodeLadder(node_nms=(130.0, 7.0))
    scale = DATASET_SCALE["scale"] if scale is None else scale
    resolution = DATASET_SCALE["resolution"] if resolution is None \
        else resolution
    seed = DATASET_SCALE["seed"] if seed is None else seed

    train_names, test_names = ladder_split(ladder, target_label)
    designs = build_designs(train_names + test_names, scale=scale,
                            resolution=resolution, seed=seed,
                            workers=workers, use_cache=use_cache,
                            cache_dir=cache_dir, ladder=ladder)
    train = designs[: len(train_names)]
    test = designs[len(train_names):]
    params = normalize_features([d.graph for d in train])
    for d in test:
        apply_normalization(d.graph, params)
    return LadderDataset(
        train=train,
        test=test,
        in_features=train[0].graph.features.shape[1],
        norm_params=params,
        ladder=ladder,
        target_label=target_label if target_label is not None
        else ladder.target_label,
    )
