"""Experiment: Table 2 — main results.

Trains the four DAC23 baseline strategies and the paper's model on the
Table-1 training set and evaluates R^2 + inference runtime on the five
7nm test designs, reproducing the shape of the paper's Table 2:
SimpleMerge collapses (negative R^2), ParamShare and PT-FT transfer
partially, and ours transfers best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ..model import TimingPredictor
from ..train import (
    BASELINE_STRATEGIES,
    OursTrainer,
    TrainConfig,
    measure_inference_runtime,
    predict_head_for_node,
    r2_score,
)
from .datasets import ExperimentDataset, build_dataset

#: Training configuration used by the Table-2 experiments.  gamma1/gamma2
#: are the paper's 10/100 rescaled for this reproduction's feature width
#: (see EXPERIMENTS.md, "Hyper-parameter translation").
OURS_CONFIG = dict(steps=150, lr=2e-3, gamma1=1.0, gamma2=30.0,
                   kl_weight=1.0)
BASELINE_CONFIG = dict(steps=150, lr=2e-3)

STRATEGY_ORDER = (
    "DAC23-AdvOnly",
    "DAC23-SimpleMerge",
    "DAC23-ParamShare",
    "DAC23-PT-FT",
    "Ours",
)


@dataclass
class Table2Row:
    """One (strategy, design) cell pair of Table 2."""

    strategy: str
    design: str
    r2: float
    runtime: float


def train_all_strategies(dataset: ExperimentDataset, seed: int = 0,
                         steps: Optional[int] = None
                         ) -> Dict[str, Callable]:
    """Train every Table-2 model; returns ``{strategy: predict_fn}``."""
    base_kwargs = dict(BASELINE_CONFIG)
    ours_kwargs = dict(OURS_CONFIG)
    if steps is not None:
        base_kwargs["steps"] = steps
        ours_kwargs["steps"] = steps
    predictors: Dict[str, Callable] = {}
    for name, train_fn in BASELINE_STRATEGIES.items():
        cfg = TrainConfig(seed=seed, **base_kwargs)
        model = train_fn(dataset.train, dataset.in_features, cfg,
                         model_seed=seed)
        predictors[name] = (
            lambda d, m=model: predict_head_for_node(m, d)
        )
    ours = TimingPredictor(dataset.in_features, seed=seed)
    OursTrainer(ours, dataset.train,
                TrainConfig(seed=seed, **ours_kwargs)).fit()
    predictors["Ours"] = lambda d, m=ours: m.predict(d)
    return predictors


def run_table2(dataset: Optional[ExperimentDataset] = None, seed: int = 0,
               steps: Optional[int] = None) -> List[Table2Row]:
    """Full Table 2: R^2 and runtime per strategy per test design."""
    dataset = dataset or build_dataset()
    predictors = train_all_strategies(dataset, seed=seed, steps=steps)
    rows: List[Table2Row] = []
    for strategy in STRATEGY_ORDER:
        predict = predictors[strategy]
        for design in dataset.test:
            runtime = measure_inference_runtime(predict, design)
            rows.append(Table2Row(
                strategy=strategy,
                design=design.name,
                r2=r2_score(design.labels, predict(design)),
                runtime=runtime,
            ))
    return rows


def summarize(rows: List[Table2Row]) -> Dict[str, Dict[str, float]]:
    """Per-strategy average R^2 and runtime."""
    out: Dict[str, Dict[str, float]] = {}
    for strategy in {r.strategy for r in rows}:
        mine = [r for r in rows if r.strategy == strategy]
        out[strategy] = {
            "r2": float(np.mean([r.r2 for r in mine])),
            "runtime": float(np.mean([r.runtime for r in mine])),
        }
    return out


def format_table2(rows: List[Table2Row]) -> str:
    """Render in the paper's layout: designs as rows, strategies as cols."""
    designs = sorted({r.design for r in rows})
    cell = {(r.strategy, r.design): r for r in rows}
    header = f"{'design':>10} | " + " | ".join(
        f"{s.replace('DAC23-', ''):>13}" for s in STRATEGY_ORDER
    )
    lines = [header, "-" * len(header)]
    for design in designs:
        parts = []
        for strategy in STRATEGY_ORDER:
            row = cell[(strategy, design)]
            parts.append(f"{row.r2:>6.3f}/{row.runtime * 1e3:>5.1f}ms")
        lines.append(f"{design:>10} | " + " | ".join(parts))
    summary = summarize(rows)
    lines.append("-" * len(header))
    parts = [f"{summary[s]['r2']:>6.3f}/{summary[s]['runtime'] * 1e3:>5.1f}ms"
             for s in STRATEGY_ORDER]
    lines.append(f"{'average':>10} | " + " | ".join(parts))
    return "\n".join(lines)
