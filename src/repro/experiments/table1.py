"""Experiment: Table 1 — dataset statistics.

Regenerates the paper's dataset-statistics table: per design, the
technology node, pin count, endpoint count, and net/cell edge counts,
plus train/test averages.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .datasets import ExperimentDataset, build_dataset

COLUMNS = ("benchmark", "split", "tech node", "#pin", "#edp", "#e_n", "#e_c")


def run_table1(dataset: Optional[ExperimentDataset] = None
               ) -> List[Dict[str, object]]:
    """Compute Table 1 rows (one per design, then the two averages)."""
    dataset = dataset or build_dataset()
    rows: List[Dict[str, object]] = []
    for split, designs in (("train", dataset.train), ("test", dataset.test)):
        for d in designs:
            row = {"benchmark": d.name, "split": split}
            row.update(d.stats())
            rows.append(row)
    for split, designs in (("train", dataset.train), ("test", dataset.test)):
        stats = [d.stats() for d in designs]
        rows.append({
            "benchmark": f"Avg {split}",
            "split": split,
            "tech node": "7nm&130nm" if split == "train" else "7nm",
            "#pin": int(np.mean([s["#pin"] for s in stats])),
            "#edp": int(np.mean([s["#edp"] for s in stats])),
            "#e_n": int(np.mean([s["#e_n"] for s in stats])),
            "#e_c": int(np.mean([s["#e_c"] for s in stats])),
        })
    return rows


def format_table1(rows: List[Dict[str, object]]) -> str:
    """Render rows the way the paper prints Table 1."""
    header = " | ".join(f"{c:>10}" for c in COLUMNS)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(" | ".join(f"{str(row[c]):>10}" for c in COLUMNS))
    return "\n".join(lines)
