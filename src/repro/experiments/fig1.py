"""Experiment: Figure 1 — prediction scatter, AdvOnly vs transfer.

Figure 1 motivates the paper: a model trained only on limited 7nm data
scatters far from the ground-truth diagonal (a), while the transfer
model hugs it (b).  This experiment produces the two scatter datasets
(ground truth vs prediction, pooled over the 7nm test designs) together
with their R^2.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..model import TimingPredictor
from ..train import OursTrainer, TrainConfig, r2_score, train_adv_only
from .datasets import ExperimentDataset, build_dataset
from .table2 import BASELINE_CONFIG, OURS_CONFIG


def run_fig1(dataset: Optional[ExperimentDataset] = None, seed: int = 0,
             steps: Optional[int] = None) -> Dict[str, Dict[str, np.ndarray]]:
    """Scatter data for panels (a) AdvOnly and (b) Ours.

    Returns ``{panel: {"truth": y, "pred": y_hat, "r2": ...}}``.
    """
    dataset = dataset or build_dataset()
    base_kwargs = dict(BASELINE_CONFIG)
    ours_kwargs = dict(OURS_CONFIG)
    if steps is not None:
        base_kwargs["steps"] = steps
        ours_kwargs["steps"] = steps

    adv = train_adv_only(dataset.train, dataset.in_features,
                         TrainConfig(seed=seed, **base_kwargs),
                         model_seed=seed)
    ours = TimingPredictor(dataset.in_features, seed=seed)
    OursTrainer(ours, dataset.train,
                TrainConfig(seed=seed, **ours_kwargs)).fit()

    panels: Dict[str, Dict[str, np.ndarray]] = {}
    for panel, predict in (("(a) 7nm only", adv.predict),
                           ("(b) 7nm + 130nm transfer", ours.predict)):
        truth = np.concatenate([d.labels for d in dataset.test])
        pred = np.concatenate([predict(d) for d in dataset.test])
        panels[panel] = {
            "truth": truth,
            "pred": pred,
            "r2": r2_score(truth, pred),
        }
    return panels


def format_fig1(panels: Dict[str, Dict[str, np.ndarray]],
                bins: int = 18) -> str:
    """ASCII scatter of prediction vs truth for both panels."""
    lines = []
    for name, data in panels.items():
        truth, pred = data["truth"], data["pred"]
        hi = max(truth.max(), np.percentile(pred, 99)) * 1.02
        lo = 0.0
        grid = [[" "] * bins for _ in range(bins)]
        for t, p in zip(truth, pred):
            i = min(bins - 1, max(0, int((p - lo) / (hi - lo) * bins)))
            j = min(bins - 1, max(0, int((t - lo) / (hi - lo) * bins)))
            grid[bins - 1 - i][j] = "o"
        for k in range(bins):  # the y = x diagonal
            row, col = bins - 1 - k, k
            if grid[row][col] == " ":
                grid[row][col] = "."
        lines.append(f"{name}  (pooled R^2 = {data['r2']:.3f})")
        lines.extend("  |" + "".join(r) + "|" for r in grid)
        lines.append("")
    return "\n".join(lines)
