"""Extension experiments beyond the paper (DESIGN.md section 6).

- :func:`run_reverse_transfer` — swap the node roles (abundant 7nm,
  scarce 130nm) and check the framework still transfers; the paper only
  evaluates 130nm -> 7nm.
- :func:`run_uncertainty_calibration` — the Bayesian head yields a
  predictive distribution the paper never examines; measure whether its
  standard deviation correlates with the actual error.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..features import GateVocabulary, normalize_features
from ..flow import PnRFlow
from ..model import TimingPredictor
from ..train import OursTrainer, TrainConfig, r2_score
from .datasets import ExperimentDataset, build_dataset, make_libraries
from .table2 import OURS_CONFIG

#: The reverse split: many 7nm designs, one 130nm design, 130nm tests.
REVERSE_TRAIN = {
    "smallboom": "130nm",
    "jpeg": "7nm",
    "linkruncca": "7nm",
    "spiMaster": "7nm",
    "usbf_device": "7nm",
}
REVERSE_TEST = ("arm9", "chacha", "sha3")


def run_reverse_transfer(seed: int = 0, steps: Optional[int] = None,
                         resolution: int = 32) -> Dict[str, float]:
    """Train 7nm -> 130nm and report per-design R^2 on 130nm tests."""
    kwargs = dict(OURS_CONFIG)
    if steps is not None:
        kwargs["steps"] = steps
    libraries = make_libraries()
    vocab = GateVocabulary(list(libraries.values()))
    flow = PnRFlow(libraries, vocab=vocab, resolution=resolution,
                   seed=seed)
    train = [flow.run(name, node) for name, node in REVERSE_TRAIN.items()]
    test = [flow.run(name, "130nm") for name in REVERSE_TEST]
    params = normalize_features([d.graph for d in train])
    from ..features import apply_normalization

    for d in test:
        apply_normalization(d.graph, params)

    model = TimingPredictor(train[0].graph.features.shape[1], seed=seed)
    OursTrainer(model, train, TrainConfig(seed=seed, **kwargs)).fit()
    results = {d.name: r2_score(d.labels, model.predict(d)) for d in test}
    results["average"] = float(np.mean(list(results.values())))
    return results


def run_uncertainty_calibration(dataset: Optional[ExperimentDataset] = None,
                                seed: int = 0,
                                steps: Optional[int] = None,
                                mc_samples: int = 32
                                ) -> List[Dict[str, float]]:
    """Per-design uncertainty quality of the Bayesian head.

    Reports, per test design, the correlation between predictive sigma
    and absolute error, and the error ratio between the most- and
    least-confident prediction halves (a sharpness measure: > 1 means
    low-sigma predictions really are more accurate).
    """
    dataset = dataset or build_dataset()
    kwargs = dict(OURS_CONFIG)
    if steps is not None:
        kwargs["steps"] = steps
    model = TimingPredictor(dataset.in_features, seed=seed)
    OursTrainer(model, dataset.train,
                TrainConfig(seed=seed, **kwargs)).fit()

    rows = []
    for design in dataset.test:
        mean, std = model.predict_with_uncertainty(design,
                                                   mc_samples=mc_samples)
        err = np.abs(mean - design.labels)
        corr = float(np.corrcoef(std, err)[0, 1]) if std.std() > 1e-12 \
            else 0.0
        order = np.argsort(std)
        half = len(order) // 2
        confident = err[order[:half]].mean() if half else float("nan")
        uncertain = err[order[half:]].mean() if half else float("nan")
        rows.append({
            "design": design.name,
            "corr_sigma_error": corr,
            "mean_sigma": float(std.mean()),
            "mean_abs_error": float(err.mean()),
            "uncertain_over_confident_error":
                float(uncertain / confident) if half and confident > 0
                else float("nan"),
        })
    return rows


def format_reverse_transfer(results: Dict[str, float]) -> str:
    lines = ["Reverse transfer (7nm -> 130nm), ours R^2:"]
    for name, r2 in results.items():
        lines.append(f"  {name:>10}: {r2:.3f}")
    return "\n".join(lines)


def format_calibration(rows: List[Dict[str, float]]) -> str:
    header = (f"{'design':>10} | {'corr(s,|e|)':>11} | {'mean s':>8} | "
              f"{'mean |e|':>8} | {'unc/conf':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['design']:>10} | {row['corr_sigma_error']:>11.3f} | "
            f"{row['mean_sigma']:>8.4f} | {row['mean_abs_error']:>8.4f} | "
            f"{row['uncertain_over_confident_error']:>8.2f}"
        )
    return "\n".join(lines)
