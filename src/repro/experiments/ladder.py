"""K-node transfer studies over a :class:`~repro.techlib.NodeLadder`.

The paper evaluates exactly one transfer (130nm -> 7nm); this harness
generalizes the experiment to a chain of K nodes:

- **K-source -> 1-target**: train on every source node of the ladder
  jointly, evaluate on the target node's held-out designs.
- **Leave-one-node-out**: retrain with each source node removed and
  measure how much the target R^2 moves — the marginal value of each
  node's data.
- **Reverse transfer**: flip the roles (target at the large end of the
  chain) and check the alignment still transfers downhill-to-uphill.

Per-node metrics land in the run manifest (``per_node``) and summary
via the supplied :class:`~repro.obs.RunLogger`, so ``repro.cli
report-run`` and the CI schema validator see them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..model import TimingPredictor
from ..obs import NullRunLogger
from ..techlib import DEFAULT_LADDER_NMS, NodeLadder
from ..train import OursTrainer, TrainConfig, r2_score
from .datasets import LadderDataset, build_ladder_dataset
from .table2 import OURS_CONFIG

__all__ = ["format_ladder_study", "run_ladder_study"]


def _train_and_score(dataset: LadderDataset, nodes: List[str],
                     target: str, seed: int,
                     config_kwargs: Dict[str, object]
                     ) -> Dict[str, float]:
    """Train on the given node subset, return per-test-design R^2."""
    keep = set(nodes)
    train = [d for d in dataset.train if d.node in keep]
    model = TimingPredictor(dataset.in_features, seed=seed)
    config = TrainConfig(seed=seed, nodes=list(nodes),
                         target_node=target, **config_kwargs)
    OursTrainer(model, train, config).fit()
    results = {d.name: float(r2_score(d.labels, model.predict(d)))
               for d in dataset.test}
    results["average"] = float(np.mean(list(results.values())))
    return results


def run_ladder_study(ladder: Optional[NodeLadder] = None,
                     dataset: Optional[LadderDataset] = None,
                     steps: Optional[int] = None, seed: int = 0,
                     resolution: Optional[int] = None,
                     workers: int = 1, use_cache: bool = True,
                     cache_dir=None, include_loo: bool = True,
                     include_reverse: bool = False,
                     logger=None) -> Dict[str, object]:
    """Run the K-source -> 1-target study on a ladder.

    Parameters
    ----------
    ladder:
        Node chain to study (default: the 130/45/28/14/7 chain).
        Ignored when ``dataset`` is given.
    dataset:
        Pre-built :class:`LadderDataset` (tests inject tiny ones).
    steps / seed / resolution / workers / use_cache / cache_dir:
        Training length override and dataset build knobs.
    include_loo:
        Also retrain with each source node left out.
    include_reverse:
        Also train toward the chain's *largest* node (needs a second
        dataset build, since the test designs move nodes).
    logger:
        A :class:`~repro.obs.RunLogger`; per-node metrics are merged
        into its manifest and summary.  Defaults to a no-op logger.
    """
    logger = logger if logger is not None else NullRunLogger()
    config_kwargs = dict(OURS_CONFIG)
    if steps is not None:
        config_kwargs["steps"] = steps

    if dataset is None:
        ladder = ladder if ladder is not None \
            else NodeLadder(DEFAULT_LADDER_NMS)
        dataset = build_ladder_dataset(
            ladder, resolution=resolution, use_cache=use_cache,
            workers=workers, cache_dir=cache_dir)
    ladder = dataset.ladder
    nodes = ladder.node_labels
    target = dataset.target_label

    main = _train_and_score(dataset, nodes, target, seed, config_kwargs)

    per_node: Dict[str, Dict[str, object]] = {}
    for record in ladder.describe():
        label = record["label"]
        per_node[label] = {
            **record,
            "role": "target" if label == target else "source",
            "num_train_designs": len(dataset.by_node(label)),
        }

    loo: Dict[str, Dict[str, float]] = {}
    if include_loo:
        for label in nodes:
            if label == target:
                continue
            remaining = [n for n in nodes if n != label]
            if len(remaining) < 2:
                continue  # nothing left to align against
            scores = _train_and_score(dataset, remaining, target, seed,
                                      config_kwargs)
            loo[label] = scores
            per_node[label]["loo_average_r2"] = scores["average"]
            per_node[label]["loo_delta_r2"] = \
                main["average"] - scores["average"]

    reverse: Optional[Dict[str, float]] = None
    if include_reverse:
        big = nodes[0]
        rev_dataset = build_ladder_dataset(
            ladder, target_label=big, resolution=resolution,
            use_cache=use_cache, workers=workers, cache_dir=cache_dir)
        reverse = _train_and_score(rev_dataset, nodes, big, seed,
                                   config_kwargs)

    results: Dict[str, object] = {
        "nodes": list(nodes),
        "target": target,
        "main": main,
        "per_node": per_node,
        "leave_one_out": loo,
    }
    if reverse is not None:
        results["reverse"] = {"target": nodes[0], **reverse}

    logger.annotate_manifest(nodes=list(nodes), target_node=target,
                             per_node=per_node)
    logger.log_summary(
        per_design={name: {"r2": value}
                    for name, value in main.items()
                    if name != "average"},
        per_node=per_node,
        ladder={"nodes": list(nodes), "target": target,
                "average_r2": main["average"],
                "leave_one_out": {k: v["average"]
                                  for k, v in loo.items()}},
    )
    return results


def format_ladder_study(results: Dict[str, object]) -> str:
    nodes = " -> ".join(results["nodes"])
    lines = [f"Ladder study: {nodes} (target {results['target']})",
             f"  K-source R^2 (avg): {results['main']['average']:.3f}"]
    for name, value in results["main"].items():
        if name != "average":
            lines.append(f"    {name:>12}: {value:.3f}")
    if results["leave_one_out"]:
        lines.append("  Leave-one-node-out (avg R^2 without node):")
        for label, scores in results["leave_one_out"].items():
            delta = results["per_node"][label]["loo_delta_r2"]
            lines.append(f"    -{label:>8}: {scores['average']:.3f} "
                         f"(delta {delta:+.3f})")
    if "reverse" in results:
        rev = results["reverse"]
        lines.append(f"  Reverse transfer -> {rev['target']}: "
                     f"{rev['average']:.3f}")
    return "\n".join(lines)
