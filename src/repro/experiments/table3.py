"""Experiment: Table 3 — ablation on the number of 130nm designs.

Trains the paper's model with nested subsets of the 130nm training
designs (J, JL, JLS, JLSU = jpeg, +linkruncca, +spiMaster, +usbf_device)
and reports per-test-design R^2.  The paper's shape: performance
improves as more 130nm designs participate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model import TimingPredictor
from ..train import OursTrainer, TrainConfig, r2_score
from .datasets import ExperimentDataset, build_dataset
from .table2 import OURS_CONFIG

#: Nested 130nm subsets, in the paper's row order.
SUBSETS: Tuple[Tuple[str, ...], ...] = (
    ("jpeg",),
    ("jpeg", "linkruncca"),
    ("jpeg", "linkruncca", "spiMaster"),
    ("jpeg", "linkruncca", "spiMaster", "usbf_device"),
)


def run_table3(dataset: Optional[ExperimentDataset] = None, seed: int = 0,
               steps: Optional[int] = None
               ) -> List[Dict[str, object]]:
    """One row per 130nm subset: ``{"subset": ..., <design>: r2, ...}``."""
    dataset = dataset or build_dataset()
    kwargs = dict(OURS_CONFIG)
    if steps is not None:
        kwargs["steps"] = steps
    rows: List[Dict[str, object]] = []
    for subset in SUBSETS:
        train = dataset.subset_train(subset)
        model = TimingPredictor(dataset.in_features, seed=seed)
        OursTrainer(model, train, TrainConfig(seed=seed, **kwargs)).fit()
        row: Dict[str, object] = {"subset": subset}
        scores = []
        for design in dataset.test:
            r2 = r2_score(design.labels, model.predict(design))
            row[design.name] = r2
            scores.append(r2)
        row["average"] = float(np.mean(scores))
        rows.append(row)
    return rows


def format_table3(rows: List[Dict[str, object]]) -> str:
    """Render rows with the paper's J/L/S/U checkmark columns."""
    initials = {"jpeg": "J", "linkruncca": "L", "spiMaster": "S",
                "usbf_device": "U"}
    designs = [k for k in rows[0] if k not in ("subset", "average")]
    header = ("J L S U | "
              + " | ".join(f"{d:>8}" for d in designs) + " | average")
    lines = [header, "-" * len(header)]
    for row in rows:
        marks = " ".join(
            "x" if name in row["subset"] else " "
            for name in initials
        )
        cells = " | ".join(f"{row[d]:>8.3f}" for d in designs)
        lines.append(f"{marks} | {cells} | {row['average']:>7.3f}")
    return "\n".join(lines)
