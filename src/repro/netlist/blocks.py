"""Parameterised functional blocks for building benchmark logic graphs.

Each block appends gates to a :class:`~repro.netlist.logic.LogicGraph` and
returns the indices of its output nodes.  The named benchmarks in
:mod:`repro.netlist.designs` are compositions of these blocks, so every
benchmark has a recognisable functional identity (datapath vs control vs
crypto) while remaining fully synthetic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .logic import LogicGraph


def full_adder(g: LogicGraph, a: int, b: int, cin: int) -> tuple:
    """One-bit full adder; returns (sum, carry)."""
    axb = g.add_gate("XOR2", (a, b))
    s = g.add_gate("XOR2", (axb, cin))
    ab = g.add_gate("AND2", (a, b))
    cin_axb = g.add_gate("AND2", (axb, cin))
    cout = g.add_gate("OR2", (ab, cin_axb))
    return s, cout


def ripple_adder(g: LogicGraph, a: Sequence[int], b: Sequence[int],
                 cin: Optional[int] = None) -> List[int]:
    """Ripple-carry adder; returns sum bits then the final carry."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    if cin is None:
        # Constant-0 carry-in folds to a half adder on the first bit.
        s0 = g.add_gate("XOR2", (a[0], b[0]))
        carry = g.add_gate("AND2", (a[0], b[0]))
        sums = [s0]
        rest = zip(a[1:], b[1:])
    else:
        carry = cin
        sums = []
        rest = zip(a, b)
    for bit_a, bit_b in rest:
        s, carry = full_adder(g, bit_a, bit_b, carry)
        sums.append(s)
    sums.append(carry)
    return sums


def array_multiplier(g: LogicGraph, a: Sequence[int],
                     b: Sequence[int]) -> List[int]:
    """Array multiplier: AND partial products accumulated row by row.

    Returns the product bits, LSB first (width ``len(a) + len(b)`` minus
    any untouched top bit).
    """
    acc = [g.add_gate("AND2", (ai, b[0])) for ai in a]
    for j in range(1, len(b)):
        row = [g.add_gate("AND2", (ai, b[j])) for ai in a]
        carry = None
        for i, pp in enumerate(row):
            pos = j + i
            if pos < len(acc):
                if carry is None:
                    s = g.add_gate("XOR2", (acc[pos], pp))
                    carry = g.add_gate("AND2", (acc[pos], pp))
                else:
                    s, carry = full_adder(g, acc[pos], pp, carry)
                acc[pos] = s
            elif carry is None:
                acc.append(pp)
            else:
                s = g.add_gate("XOR2", (pp, carry))
                carry = g.add_gate("AND2", (pp, carry))
                acc.append(s)
        pos = j + len(row)
        while carry is not None:
            if pos < len(acc):
                s = g.add_gate("XOR2", (acc[pos], carry))
                carry = g.add_gate("AND2", (acc[pos], carry))
                acc[pos] = s
                pos += 1
            else:
                acc.append(carry)
                carry = None
    return acc


def xor_reduce(g: LogicGraph, bits: Sequence[int]) -> int:
    """Balanced XOR tree (parity); returns the root node."""
    level = list(bits)
    if not level:
        raise ValueError("xor_reduce needs at least one bit")
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(g.add_gate("XOR2", (level[i], level[i + 1])))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def and_reduce(g: LogicGraph, bits: Sequence[int]) -> int:
    """Balanced AND tree; returns the root node."""
    level = list(bits)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(g.add_gate("AND2", (level[i], level[i + 1])))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def or_reduce(g: LogicGraph, bits: Sequence[int]) -> int:
    """Balanced OR tree; returns the root node."""
    level = list(bits)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(g.add_gate("OR2", (level[i], level[i + 1])))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def mux_word(g: LogicGraph, select: int, a: Sequence[int],
             b: Sequence[int]) -> List[int]:
    """Word-wide 2:1 mux: out = select ? a : b."""
    return [g.add_gate("MUX2", (select, x, y)) for x, y in zip(a, b)]


def barrel_rotate(g: LogicGraph, word: Sequence[int], amount: int) -> List[int]:
    """Static left-rotation of ``word`` by ``amount`` (pure rewiring)."""
    n = len(word)
    amount %= n
    return list(word[-amount:]) + list(word[:-amount]) if amount else list(word)


def barrel_shifter(g: LogicGraph, word: Sequence[int],
                   shift_sel: Sequence[int]) -> List[int]:
    """Dynamic barrel rotator: one mux level per select bit."""
    current = list(word)
    for level, sel in enumerate(shift_sel):
        rotated = barrel_rotate(g, current, 1 << level)
        current = mux_word(g, sel, rotated, current)
    return current


def decoder(g: LogicGraph, select: Sequence[int]) -> List[int]:
    """n-to-2^n one-hot decoder."""
    inverted = [g.add_gate("INV", (s,)) for s in select]
    outputs = []
    for code in range(1 << len(select)):
        terms = [select[i] if (code >> i) & 1 else inverted[i]
                 for i in range(len(select))]
        outputs.append(and_reduce(g, terms))
    return outputs


def equality_comparator(g: LogicGraph, a: Sequence[int],
                        b: Sequence[int]) -> int:
    """Single-bit ``a == b``."""
    diffs = [g.add_gate("XNOR2", (x, y)) for x, y in zip(a, b)]
    return and_reduce(g, diffs)


def random_logic_cone(g: LogicGraph, inputs: Sequence[int], n_gates: int,
                      rng: np.random.Generator,
                      ops: Sequence[str] = ("NAND2", "NOR2", "XOR2", "AND2",
                                            "OR2", "AOI21", "OAI21", "MUX2",
                                            "INV")) -> List[int]:
    """Grow a random combinational DAG over ``inputs``.

    Later gates prefer recent gates as fanin, giving realistic logarithmic
    depth growth.  Returns the gate nodes with zero internal fanout (the
    cone tips).
    """
    from .logic import OP_ARITY

    pool = list(inputs)
    created = []
    used = set()
    for _ in range(n_gates):
        op = ops[rng.integers(len(ops))]
        arity = OP_ARITY[op]
        # Bias toward the most recently created nodes.
        weights = np.arange(1, len(pool) + 1, dtype=float)
        weights /= weights.sum()
        fanin = rng.choice(len(pool), size=arity, replace=False if
                           arity <= len(pool) else True, p=weights)
        nodes = [pool[i] for i in np.atleast_1d(fanin)]
        node = g.add_gate(op, nodes)
        created.append(node)
        used.update(nodes)
        pool.append(node)
    return [n for n in created if n not in used] or created[-1:]


def register_word(g: LogicGraph, word: Sequence[int]) -> List[int]:
    """Register every bit of ``word`` (one pipeline stage)."""
    return [g.add_register(bit) for bit in word]


def lfsr(g: LogicGraph, seed_bits: Sequence[int],
         taps: Sequence[int]) -> List[int]:
    """One unrolled LFSR step: shift left, feed back XOR of taps.

    ``seed_bits`` is the current state (combinational nodes); returns the
    next state *registered*.
    """
    feedback = xor_reduce(g, [seed_bits[t] for t in taps])
    next_state = [feedback] + list(seed_bits[:-1])
    return register_word(g, next_state)


def crc_step(g: LogicGraph, state: Sequence[int],
             data_bit: int, taps: Sequence[int]) -> List[int]:
    """One CRC shift step with a serial data input (combinational)."""
    feedback = g.add_gate("XOR2", (state[-1], data_bit))
    next_state = [feedback]
    for i in range(len(state) - 1):
        if (i + 1) in taps:
            next_state.append(g.add_gate("XOR2", (state[i], feedback)))
        else:
            next_state.append(state[i])
    return next_state


def fsm(g: LogicGraph, state_bits: int, inputs: Sequence[int],
        rng: np.random.Generator) -> List[int]:
    """A random Moore FSM with true state feedback.

    State registers are declared as placeholders, the next-state logic is
    grown over the current state and the inputs, and the feedback loop is
    then closed.  Returns the state register nodes.
    """
    state = [g.add_register_placeholder() for _ in range(state_bits)]
    cone_inputs = list(state) + list(inputs)
    for reg in state:
        tips = random_logic_cone(g, cone_inputs, int(rng.integers(3, 8)), rng)
        g.connect_register(reg, tips[0])
    return state


def shift_register(g: LogicGraph, data_in: Sequence[int],
                   load: int) -> List[int]:
    """A parallel-load shift register with real feedback.

    ``out[i]`` shifts from ``out[i-1]`` (serial path) unless ``load`` is
    asserted, in which case ``data_in`` is loaded.  Returns the register
    nodes, LSB first.
    """
    regs = [g.add_register_placeholder() for _ in data_in]
    prev = regs[-1]
    for i, reg in enumerate(regs):
        nxt = g.add_gate("MUX2", (load, data_in[i], prev))
        g.connect_register(reg, nxt)
        prev = reg
    return regs


def counter(g: LogicGraph, width: int, enable: int) -> List[int]:
    """A binary up-counter with feedback: state += enable each cycle."""
    regs = [g.add_register_placeholder() for _ in range(width)]
    carry = enable
    for reg in regs:
        s = g.add_gate("XOR2", (reg, carry))
        carry = g.add_gate("AND2", (reg, carry))
        g.connect_register(reg, s)
    return regs
