"""Gate-level netlist data structures.

A :class:`Netlist` is the technology-mapped form of a design: instances of
library :class:`~repro.techlib.StandardCell`s connected by nets.  It is the
object every downstream stage operates on — placement annotates cell
locations, optimization restructures it, routing attaches parasitics, and
STA walks its pin graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..techlib import StandardCell, TechLibrary

#: Pin directions.
INPUT, OUTPUT = "input", "output"


@dataclass
class Pin:
    """A pin: either a cell pin or a top-level port.

    ``cell`` is None for ports.  ``x``/``y`` are filled in by placement
    (ports get locations at floorplanning).
    """

    index: int
    name: str
    direction: str
    cell: Optional["CellInst"] = None
    net: Optional["Net"] = None
    x: float = 0.0
    y: float = 0.0

    @property
    def is_port(self) -> bool:
        return self.cell is None

    @property
    def full_name(self) -> str:
        if self.cell is None:
            return self.name
        return f"{self.cell.name}/{self.name}"

    @property
    def cap(self) -> float:
        """Input capacitance presented by this pin (0 for outputs/ports)."""
        if self.cell is None or self.direction == OUTPUT:
            return 0.0
        return self.cell.ref.input_cap(self.name)

    def __repr__(self) -> str:
        return f"Pin({self.full_name})"


@dataclass
class Net:
    """A net: one driver pin and any number of sink pins."""

    index: int
    name: str
    driver: Optional[Pin] = None
    sinks: List[Pin] = field(default_factory=list)
    is_clock: bool = False

    @property
    def pins(self) -> List[Pin]:
        return ([self.driver] if self.driver else []) + self.sinks

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def total_sink_cap(self) -> float:
        """Sum of sink pin capacitances (pF)."""
        return sum(p.cap for p in self.sinks)

    def __repr__(self) -> str:
        return f"Net({self.name}, fanout={self.fanout})"


class CellInst:
    """An instance of a standard cell in a netlist."""

    __slots__ = ("name", "ref", "pins", "x", "y", "index")

    def __init__(self, index: int, name: str, ref: StandardCell) -> None:
        self.index = index
        self.name = name
        self.ref = ref
        self.pins: Dict[str, Pin] = {}
        self.x = 0.0
        self.y = 0.0

    @property
    def is_sequential(self) -> bool:
        return self.ref.is_sequential

    @property
    def area(self) -> float:
        return self.ref.area

    @property
    def output_pin(self) -> Pin:
        return self.pins[self.ref.output_pin]

    @property
    def input_pins(self) -> List[Pin]:
        return [self.pins[n] for n in self.ref.input_pins if n in self.pins]

    def __repr__(self) -> str:
        return f"CellInst({self.name}:{self.ref.name})"


class Netlist:
    """A mapped gate-level netlist bound to a technology library.

    The netlist keeps pins in a flat indexed list so that later stages
    (feature encoding, STA) can use numpy arrays keyed by pin index.
    Structure-mutating helpers (:meth:`add_cell`, :meth:`connect`,
    :meth:`disconnect`) keep driver/sink bookkeeping consistent.
    """

    def __init__(self, name: str, library: TechLibrary) -> None:
        self.name = name
        self.library = library
        self.cells: Dict[str, CellInst] = {}
        self.nets: Dict[str, Net] = {}
        self.pins: List[Pin] = []
        self.ports: Dict[str, Pin] = {}
        self._uid = 0
        # Monotonic counters: indexes stay unique across removals.
        self._next_net_index = 0
        self._next_cell_index = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _fresh_name(self, prefix: str) -> str:
        self._uid += 1
        return f"{prefix}_{self._uid}"

    def _new_pin(self, name: str, direction: str,
                 cell: Optional[CellInst] = None) -> Pin:
        pin = Pin(len(self.pins), name, direction, cell)
        self.pins.append(pin)
        return pin

    def add_port(self, name: str, direction: str) -> Pin:
        """Add a top-level port.

        An ``input`` port *drives* logic, so its pin direction is OUTPUT
        from the netlist-graph point of view; we keep the user-facing
        direction in the port table and flip it internally.
        """
        if name in self.ports:
            raise ValueError(f"duplicate port {name}")
        pin_dir = OUTPUT if direction == INPUT else INPUT
        pin = self._new_pin(name, pin_dir)
        self.ports[name] = pin
        return pin

    def add_cell(self, ref: StandardCell, name: Optional[str] = None) -> CellInst:
        """Instantiate ``ref``; all pins are created unconnected."""
        name = name or self._fresh_name(ref.function.lower())
        if name in self.cells:
            raise ValueError(f"duplicate cell {name}")
        inst = CellInst(self._next_cell_index, name, ref)
        self._next_cell_index += 1
        for pin_name in ref.input_pins:
            inst.pins[pin_name] = self._new_pin(pin_name, INPUT, inst)
        inst.pins[ref.output_pin] = self._new_pin(ref.output_pin, OUTPUT, inst)
        self.cells[name] = inst
        return inst

    def add_net(self, name: Optional[str] = None, is_clock: bool = False) -> Net:
        name = name or self._fresh_name("net")
        if name in self.nets:
            raise ValueError(f"duplicate net {name}")
        net = Net(self._next_net_index, name, is_clock=is_clock)
        self._next_net_index += 1
        self.nets[name] = net
        return net

    def connect(self, net: Net, pin: Pin) -> None:
        """Attach ``pin`` to ``net`` as driver or sink by direction."""
        if pin.net is not None:
            raise ValueError(f"{pin.full_name} already connected to {pin.net.name}")
        if pin.direction == OUTPUT:
            if net.driver is not None:
                raise ValueError(f"net {net.name} already has a driver")
            net.driver = pin
        else:
            net.sinks.append(pin)
        pin.net = net

    def disconnect(self, pin: Pin) -> None:
        """Detach ``pin`` from its net (no-op if unconnected)."""
        net = pin.net
        if net is None:
            return
        if net.driver is pin:
            net.driver = None
        else:
            net.sinks.remove(pin)
        pin.net = None

    def remove_cell(self, inst: CellInst) -> None:
        """Delete a cell instance, disconnecting all its pins."""
        for pin in list(inst.pins.values()):
            self.disconnect(pin)
        del self.cells[inst.name]

    def remove_net(self, net: Net) -> None:
        """Delete a net; it must have no remaining connections."""
        if net.driver is not None or net.sinks:
            raise ValueError(f"net {net.name} still has connections")
        del self.nets[net.name]

    def remove_port(self, name: str) -> None:
        """Delete a top-level port, disconnecting it first."""
        pin = self.ports.pop(name)
        self.disconnect(pin)

    def sweep_dangling(self) -> int:
        """Remove logic whose output drives nothing (dead-code sweep).

        Mapping and optimization can truncate arithmetic or bypass gates,
        leaving cells whose output nets have no sinks.  Synthesis tools
        sweep these; so do we.  Returns the number of cells removed.
        """
        removed = 0
        changed = True
        while changed:
            changed = False
            for net in list(self.nets.values()):
                if net.is_clock or net.sinks:
                    continue
                driver = net.driver
                if driver is None:
                    self.remove_net(net)
                    changed = True
                    continue
                if driver.is_port:
                    # Unused primary input: drop the port and its net.
                    self.remove_port(driver.name)
                    self.remove_net(net)
                else:
                    self.remove_cell(driver.cell)
                    removed += 1
                    self.remove_net(net)
                changed = True
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def primary_inputs(self) -> List[Pin]:
        """Port pins that drive logic (netlist inputs), clock excluded."""
        return [p for p in self.ports.values()
                if p.direction == OUTPUT
                and not (p.net is not None and p.net.is_clock)]

    @property
    def primary_outputs(self) -> List[Pin]:
        """Port pins that sink logic (netlist outputs)."""
        return [p for p in self.ports.values() if p.direction == INPUT]

    @property
    def sequential_cells(self) -> List[CellInst]:
        return [c for c in self.cells.values() if c.is_sequential]

    @property
    def combinational_cells(self) -> List[CellInst]:
        return [c for c in self.cells.values() if not c.is_sequential]

    def timing_endpoints(self) -> List[Pin]:
        """Endpoints of timing paths: flop D pins plus primary outputs.

        The paper predicts arrival time at these pins; they are stable
        under timing optimization (restructuring never removes them).
        """
        endpoints = [c.pins["D"] for c in self.sequential_cells
                     if "D" in c.pins]
        endpoints.extend(self.primary_outputs)
        return endpoints

    def timing_startpoints(self) -> List[Pin]:
        """Startpoints: primary inputs plus flop Q pins."""
        starts = list(self.primary_inputs)
        starts.extend(c.output_pin for c in self.sequential_cells)
        return starts

    def net_edges(self) -> Iterator[Tuple[Pin, Pin]]:
        """Yield (driver, sink) pairs for every net (paper's net edges)."""
        for net in self.nets.values():
            if net.driver is None or net.is_clock:
                continue
            for sink in net.sinks:
                yield net.driver, sink

    def cell_edges(self) -> Iterator[Tuple[Pin, Pin]]:
        """Yield (input pin, output pin) pairs through combinational cells.

        Sequential cells contribute no cell edge: their D pin is a timing
        endpoint and their Q pin a startpoint, so the timing graph (and the
        GNN that mimics it) does not traverse them.
        """
        for cell in self.cells.values():
            if cell.is_sequential:
                continue
            out = cell.output_pin
            for pin in cell.input_pins:
                yield pin, out

    def total_cell_area(self) -> float:
        return sum(c.area for c in self.cells.values())

    def stats(self) -> Dict[str, int]:
        """Table-1 style statistics for this netlist."""
        return {
            "pins": len([p for p in self.pins if p.net is not None]),
            "endpoints": len(self.timing_endpoints()),
            "net_edges": sum(1 for _ in self.net_edges()),
            "cell_edges": sum(1 for _ in self.cell_edges()),
            "cells": len(self.cells),
            "nets": len(self.nets),
        }

    def validate(self) -> None:
        """Raise ``ValueError`` on dangling connectivity.

        Every net must have a driver and at least one sink; every cell
        input pin must be connected.
        """
        for net in self.nets.values():
            if net.driver is None:
                raise ValueError(f"net {net.name} has no driver")
            if not net.sinks:
                raise ValueError(f"net {net.name} has no sinks")
        for cell in self.cells.values():
            for pin in cell.input_pins:
                if pin.net is None:
                    raise ValueError(f"{pin.full_name} is unconnected")

    def __repr__(self) -> str:
        return (f"Netlist({self.name}@{self.library.name}, "
                f"{len(self.cells)} cells, {len(self.nets)} nets)")
