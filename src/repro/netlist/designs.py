"""Synthetic versions of the paper's benchmark designs (Table 1).

The real benchmarks come from Freecores and Chipyard RTL that we cannot
synthesise offline.  Each generator below builds a logic graph with the
same *functional character* as its namesake (CPU datapath, JPEG-style DCT
arithmetic, crypto rounds, serial protocol FSMs, ...) at a scale that a
numpy training stack can handle.  Relative sizes follow Table 1: jpeg is
the largest training design, hwacha/or1200 are the largest test designs,
usbf_device/spiMaster are small.

Every generator accepts a ``scale`` multiplier so experiments can grow or
shrink the whole dataset coherently, and a seed so graphs are reproducible.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from . import blocks
from .logic import LogicGraph


def _word(g: LogicGraph, name: str, width: int) -> List[int]:
    return [g.add_input(f"{name}[{i}]") for i in range(width)]


def _mark_word(g: LogicGraph, nodes: List[int], name: str) -> None:
    for i, node in enumerate(nodes):
        g.mark_output(node, f"{name}[{i}]")


def _scaled(base: int, scale: float, minimum: int = 2) -> int:
    return max(minimum, int(round(base * scale)))


def make_arm9(scale: float = 1.0, seed: int = 9) -> LogicGraph:
    """A small in-order CPU slice: decode, ALU, shifter, writeback regs."""
    rng = np.random.default_rng(seed)
    g = LogicGraph("arm9")
    width = _scaled(8, scale)
    op_a = _word(g, "ra", width)
    op_b = _word(g, "rb", width)
    opcode = _word(g, "opcode", 3)
    shamt = _word(g, "shamt", 3)

    # Decode: one-hot operation select.
    onehot = blocks.decoder(g, opcode)
    # ALU lanes.
    add = blocks.ripple_adder(g, op_a, op_b)[:width]
    logic_and = [g.add_gate("AND2", (x, y)) for x, y in zip(op_a, op_b)]
    logic_xor = [g.add_gate("XOR2", (x, y)) for x, y in zip(op_a, op_b)]
    shifted = blocks.barrel_shifter(g, op_a, shamt)
    # Result mux chain driven by decoded selects.
    result = blocks.mux_word(g, onehot[0], add, logic_and)
    result = blocks.mux_word(g, onehot[1], logic_xor, result)
    result = blocks.mux_word(g, onehot[2], shifted, result)
    # Flags.
    zero = g.add_gate("INV", (blocks.or_reduce(g, result),))
    parity = blocks.xor_reduce(g, result)
    # Writeback pipeline: two register stages.
    stage1 = blocks.register_word(g, result + [zero, parity])
    stage2 = blocks.register_word(g, stage1)
    _mark_word(g, stage2, "wb")
    # Control FSM.
    state = blocks.fsm(g, _scaled(4, scale), opcode + [zero], rng)
    _mark_word(g, state, "ctrl")
    g.validate()
    return g


def make_chacha(scale: float = 1.0, seed: int = 20) -> LogicGraph:
    """ChaCha-like quarter-round datapath: add/xor/rotate lanes."""
    g = LogicGraph("chacha")
    width = _scaled(8, scale)
    a = _word(g, "a", width)
    b = _word(g, "b", width)
    c = _word(g, "c", width)
    d = _word(g, "d", width)

    def quarter(a, b, c, d, r1, r2):
        a = blocks.ripple_adder(g, a, b)[:len(a)]
        d = [g.add_gate("XOR2", (x, y)) for x, y in zip(d, a)]
        d = blocks.barrel_rotate(g, d, r1)
        c = blocks.ripple_adder(g, c, d)[:len(c)]
        b = [g.add_gate("XOR2", (x, y)) for x, y in zip(b, c)]
        b = blocks.barrel_rotate(g, b, r2)
        return a, b, c, d

    a, b, c, d = quarter(a, b, c, d, 3, 2)
    a, b, c, d = quarter(a, b, c, d, 5, 1)
    # Register the state between double rounds, as hardware does.
    a = blocks.register_word(g, a)
    b = blocks.register_word(g, b)
    c = blocks.register_word(g, c)
    d = blocks.register_word(g, d)
    a, b, c, d = quarter(a, b, c, d, 4, 3)
    out = blocks.register_word(g, a + b + c + d)
    _mark_word(g, out, "state")
    g.validate()
    return g


def make_hwacha(scale: float = 1.0, seed: int = 30) -> LogicGraph:
    """Vector-unit-like design: several MAC lanes plus a reduction tree."""
    g = LogicGraph("hwacha")
    width = _scaled(6, scale)
    lanes = _scaled(4, scale)
    lane_outputs = []
    for lane in range(lanes):
        x = _word(g, f"x{lane}", width)
        y = _word(g, f"y{lane}", width)
        acc = _word(g, f"acc{lane}", 2 * width)
        prod = blocks.array_multiplier(g, x, y)[:2 * width]
        mac = blocks.ripple_adder(g, prod, acc)[:2 * width]
        lane_outputs.append(blocks.register_word(g, mac))
    # Cross-lane reduction.
    total = lane_outputs[0]
    for lane_out in lane_outputs[1:]:
        total = blocks.ripple_adder(g, total, lane_out)[:len(total)]
    out = blocks.register_word(g, total)
    _mark_word(g, out, "sum")
    for lane, lane_out in enumerate(lane_outputs):
        _mark_word(g, lane_out[:2], f"lane{lane}")
    g.validate()
    return g


def make_or1200(scale: float = 1.0, seed: int = 40) -> LogicGraph:
    """OR1200-like CPU: wide register state, ALU, compare, random control.

    This is the endpoint-heaviest benchmark, matching Table 1 where
    or1200 has by far the most endpoints relative to its pin count.
    """
    rng = np.random.default_rng(seed)
    g = LogicGraph("or1200")
    width = _scaled(8, scale)
    n_regs = _scaled(24, scale)
    a = _word(g, "opa", width)
    b = _word(g, "opb", width)
    sel = _word(g, "sel", 3)

    add = blocks.ripple_adder(g, a, b)[:width]
    sub_b = [g.add_gate("INV", (x,)) for x in b]
    sub = blocks.ripple_adder(g, a, sub_b)[:width]
    eq = blocks.equality_comparator(g, a, b)
    onehot = blocks.decoder(g, sel)
    result = blocks.mux_word(g, onehot[0], add, sub)
    # A big architectural register file: each register is an endpoint-rich
    # word that loads either the ALU result or holds via a feedback mux.
    reg_words = []
    for r in range(n_regs):
        hold = blocks.mux_word(g, onehot[r % len(onehot)], result,
                               blocks.barrel_rotate(g, result, r % width))
        reg_words.append(blocks.register_word(g, hold))
    # Forwarding network reads two random registers back into a cone.
    picks = rng.choice(n_regs, size=2, replace=False)
    fwd = [g.add_gate("XOR2", (x, y)) for x, y in
           zip(reg_words[picks[0]], reg_words[picks[1]])]
    flags = blocks.register_word(g, [eq, blocks.xor_reduce(g, fwd)])
    _mark_word(g, flags, "flags")
    # The whole architectural register file is observable, which makes
    # or1200 the endpoint-heaviest benchmark (as in Table 1).
    for r, word in enumerate(reg_words):
        _mark_word(g, word, f"r{r}")
    g.validate()
    return g


def make_sha3(scale: float = 1.0, seed: int = 50) -> LogicGraph:
    """Keccak-like round slice: theta parity, rho rotations, chi nonlinear."""
    g = LogicGraph("sha3")
    lanes = 5
    width = _scaled(12, scale)
    state = [_word(g, f"lane{i}", width) for i in range(lanes)]
    # Theta: parity of all lanes, mixed back into each lane.
    parity = [blocks.xor_reduce(g, [state[i][k] for i in range(lanes)])
              for k in range(width)]
    theta = []
    for i in range(lanes):
        mixed = [g.add_gate("XOR2", (state[i][k],
                                     parity[(k + 1) % width]))
                 for k in range(width)]
        theta.append(mixed)
    # Rho: per-lane rotation.
    rho = [blocks.barrel_rotate(g, theta[i], (i * 3) % width)
           for i in range(lanes)]
    # Chi: lane[i] ^= ~lane[i+1] & lane[i+2].
    chi = []
    for i in range(lanes):
        nxt = rho[(i + 1) % lanes]
        nxt2 = rho[(i + 2) % lanes]
        lane = []
        for k in range(width):
            inv = g.add_gate("INV", (nxt[k],))
            andg = g.add_gate("AND2", (inv, nxt2[k]))
            lane.append(g.add_gate("XOR2", (rho[i][k], andg)))
        chi.append(lane)
    regs = [blocks.register_word(g, lane) for lane in chi]
    # Second round on registered state keeps depth interesting.
    parity2 = [blocks.xor_reduce(g, [regs[i][k] for i in range(lanes)])
               for k in range(width)]
    out = blocks.register_word(g, parity2)
    _mark_word(g, out, "digest")
    for i in range(lanes):
        _mark_word(g, regs[i][:1], f"s{i}")
    g.validate()
    return g


def make_smallboom(scale: float = 1.0, seed: int = 60) -> LogicGraph:
    """BOOM-like out-of-order slice: issue select, ALUs, ROB, bypass.

    This is the only 7nm *training* design; in the paper's Table 1 it is
    among the largest benchmarks (61k endpoints), anchoring the target
    node's arrival-time scale.  We keep that proportion: a reorder
    buffer of architecturally visible registers makes it the
    endpoint-richest training design.
    """
    rng = np.random.default_rng(seed)
    g = LogicGraph("smallboom")
    width = _scaled(8, scale)
    rob_entries = _scaled(7, scale)
    a0 = _word(g, "a0", width)
    b0 = _word(g, "b0", width)
    a1 = _word(g, "a1", width)
    b1 = _word(g, "b1", width)
    grant = _word(g, "grant", 2)
    wsel = _word(g, "wsel", 3)

    alu0 = blocks.ripple_adder(g, a0, b0)[:width]
    alu1 = [g.add_gate("XOR2", (x, y)) for x, y in zip(a1, b1)]
    sub_b = [g.add_gate("INV", (x,)) for x in b1]
    alu2 = blocks.ripple_adder(g, a1, sub_b)[:width]
    # Issue select: grant picks which result goes to the bypass network.
    sel0 = blocks.mux_word(g, grant[0], alu0, alu1)
    sel1 = blocks.mux_word(g, grant[1], alu2, sel0)
    bypass = [g.add_gate("XOR2", (x, y)) for x, y in zip(sel1, alu2)]
    # In-flight instruction tags: random control cones per issue slot
    # (speculation/recovery logic — BOOM-flavoured, not a register file).
    tag_regs = []
    for entry in range(rob_entries):
        tips = blocks.random_logic_cone(
            g, sel1 + wsel + grant, int(rng.integers(6, 14)), rng
        )
        word = blocks.register_word(g, tips[:1] + bypass[: width // 2])
        tag_regs.append(word)
        _mark_word(g, word, f"slot{entry}")
    # Commit pipeline.
    s1 = blocks.register_word(g, sel1 + bypass)
    s2 = blocks.register_word(g, s1[:width])
    _mark_word(g, s2, "commit")
    state = blocks.fsm(g, _scaled(5, scale), grant + [s1[0]], rng)
    _mark_word(g, state, "rob_state")
    g.validate()
    return g


def make_jpeg(scale: float = 1.0, seed: int = 70) -> LogicGraph:
    """JPEG-encoder-like datapath: DCT butterfly MACs and quantiser muxes.

    The largest training design (as in Table 1).
    """
    g = LogicGraph("jpeg")
    width = _scaled(6, scale)
    taps = _scaled(4, scale)
    pixel_words = [_word(g, f"px{i}", width) for i in range(taps)]
    coef_words = [_word(g, f"co{i}", width) for i in range(taps)]
    # DCT-ish MAC array: multiply each pixel by a coefficient and reduce.
    products = []
    for px, co in zip(pixel_words, coef_words):
        products.append(blocks.array_multiplier(g, px, co)[:2 * width])
    total = products[0]
    for p in products[1:]:
        total = blocks.ripple_adder(g, total, p)[:2 * width]
    dct = blocks.register_word(g, total)
    # Butterfly second stage: sums and differences of rotated copies.
    rot = blocks.barrel_rotate(g, dct, 3)
    sums = blocks.ripple_adder(g, dct, rot)[:2 * width]
    inv_rot = [g.add_gate("INV", (x,)) for x in rot]
    diff = blocks.ripple_adder(g, dct, inv_rot)[:2 * width]
    # Quantiser: pick sums or diffs by comparator.
    bigger = blocks.equality_comparator(g, sums[:width], diff[:width])
    quant = blocks.mux_word(g, bigger, sums, diff)
    stage = blocks.register_word(g, quant)
    # Zig-zag/entropy stub: parity trees as a compression proxy.
    entropy = [blocks.xor_reduce(g, stage[i::4]) for i in range(4)]
    out = blocks.register_word(g, entropy)
    _mark_word(g, out, "bits")
    _mark_word(g, stage[:4], "q")
    g.validate()
    return g


def make_linkruncca(scale: float = 1.0, seed: int = 80) -> LogicGraph:
    """Connected-component-analysis-like design: comparators and mux merge."""
    g = LogicGraph("linkruncca")
    width = _scaled(7, scale)
    n_labels = _scaled(4, scale)
    labels = [_word(g, f"label{i}", width) for i in range(n_labels)]
    pixel = _word(g, "pixel", width)
    # Merge network: compare each label against the pixel, keep the match.
    current = labels[0]
    for i in range(1, n_labels):
        eq = blocks.equality_comparator(g, labels[i], pixel)
        current = blocks.mux_word(g, eq, labels[i], current)
    merged = blocks.register_word(g, current)
    # Run-length counter: increment-by-one adder on the registered value.
    one_hot_lsb = [g.add_gate("XNOR2", (merged[0], merged[0]))]  # const-1 proxy
    inc_b = one_hot_lsb + [g.add_gate("XOR2", (merged[0], merged[0]))
                           for _ in range(width - 1)]  # const-0 proxies
    count = blocks.ripple_adder(g, merged, inc_b)[:width]
    out = blocks.register_word(g, count)
    _mark_word(g, out, "run")
    _mark_word(g, merged[:2], "label_out")
    g.validate()
    return g


def make_spi_master(scale: float = 1.0, seed: int = 90) -> LogicGraph:
    """SPI-master-like serial controller: FSM + shift register + divider."""
    rng = np.random.default_rng(seed)
    g = LogicGraph("spiMaster")
    width = _scaled(12, scale)
    data = _word(g, "tx_data", width)
    ctrl = _word(g, "ctrl", 3)
    # Serialiser: a real parallel-load shift register with feedback.
    load = ctrl[0]
    shreg = blocks.shift_register(g, data, load)
    # Clock divider: a feedback up-counter gated by the enable control.
    div_regs = blocks.counter(g, _scaled(6, scale), ctrl[1])
    baud = blocks.and_reduce(g, div_regs)
    # Protocol FSM.
    state = blocks.fsm(g, _scaled(4, scale), ctrl + [shreg[0], baud], rng)
    _mark_word(g, [shreg[-1]], "mosi")
    _mark_word(g, [baud], "sclk")
    _mark_word(g, shreg, "tx_shadow")
    _mark_word(g, state, "spi_state")
    g.validate()
    return g


def make_usbf_device(scale: float = 1.0, seed: int = 100) -> LogicGraph:
    """USB-function-like design: CRC5/CRC16 datapath + protocol FSM."""
    rng = np.random.default_rng(seed)
    g = LogicGraph("usbf_device")
    data = _word(g, "rx", 8)
    ctrl = _word(g, "pid", 2)
    # CRC16 over the byte, unrolled bit-serially.
    state = list(data) + [g.add_gate("INV", (d,)) for d in data]
    for bit in range(_scaled(8, scale)):
        state = blocks.crc_step(g, state, data[bit % 8], taps=(5, 12))
    crc_regs = blocks.register_word(g, state[:8])
    # Token decode + handshake FSM.
    onehot = blocks.decoder(g, ctrl)
    token = blocks.mux_word(g, onehot[0], crc_regs, data)
    fsm_state = blocks.fsm(g, _scaled(3, scale), ctrl + [token[0]], rng)
    _mark_word(g, crc_regs[:2], "crc")
    _mark_word(g, fsm_state, "usb_state")
    g.validate()
    return g


#: Registry of all benchmark generators, keyed by the paper's design names.
DESIGN_GENERATORS: Dict[str, Callable[..., LogicGraph]] = {
    "arm9": make_arm9,
    "chacha": make_chacha,
    "hwacha": make_hwacha,
    "or1200": make_or1200,
    "sha3": make_sha3,
    "smallboom": make_smallboom,
    "jpeg": make_jpeg,
    "linkruncca": make_linkruncca,
    "spiMaster": make_spi_master,
    "usbf_device": make_usbf_device,
}

#: The paper's dataset split (Table 1): design name -> technology node.
TRAIN_SPLIT = {
    "smallboom": "7nm",
    "jpeg": "130nm",
    "linkruncca": "130nm",
    "spiMaster": "130nm",
    "usbf_device": "130nm",
}
TEST_SPLIT = {
    "arm9": "7nm",
    "chacha": "7nm",
    "hwacha": "7nm",
    "or1200": "7nm",
    "sha3": "7nm",
}


def make_design(name: str, scale: float = 1.0) -> LogicGraph:
    """Build a named benchmark logic graph."""
    try:
        generator = DESIGN_GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown design {name!r}; choose from "
            f"{sorted(DESIGN_GENERATORS)}"
        ) from None
    return generator(scale=scale)
