"""Cycle-accurate boolean simulation of logic graphs and netlists.

Used to *verify the technology mapper*: a design mapped onto two
different libraries (with different decompositions) must behave
identically to its generic logic graph on every input sequence.  The
test suite runs randomised multi-cycle equivalence checks on exactly
that property.

Semantics of the generic operators (and the library cells implementing
them, pin order A, B, C):

- ``MUX2(s, a, b)`` = ``a if s else b``
- ``AOI21(a, b, c)`` = ``not ((a and b) or c)``
- ``OAI21(a, b, c)`` = ``not ((a or b) and c)``

Registers update synchronously: all flops sample their D inputs, then
present the new value on Q for the next cycle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from .core import Netlist
from .logic import LogicGraph

_OPS: Dict[str, Callable[..., bool]] = {
    "INV": lambda a: not a,
    "BUF": lambda a: a,
    "NAND2": lambda a, b: not (a and b),
    "NAND3": lambda a, b, c: not (a and b and c),
    "NOR2": lambda a, b: not (a or b),
    "NOR3": lambda a, b, c: not (a or b or c),
    "AND2": lambda a, b: a and b,
    "OR2": lambda a, b: a or b,
    "XOR2": lambda a, b: a != b,
    "XNOR2": lambda a, b: a == b,
    "MUX2": lambda s, a, b: a if s else b,
    "AOI21": lambda a, b, c: not ((a and b) or c),
    "OAI21": lambda a, b, c: not ((a or b) and c),
}


class GraphSimulator:
    """Simulates a :class:`LogicGraph` cycle by cycle."""

    def __init__(self, graph: LogicGraph) -> None:
        graph.validate()
        self.graph = graph
        self.state: Dict[int, bool] = {
            idx: False for idx in graph.registers
        }

    def step(self, inputs: Dict[str, bool]) -> Dict[str, bool]:
        """Advance one clock cycle; returns the primary output values."""
        graph = self.graph
        values: Dict[int, bool] = {}
        for node in graph.nodes:
            if node.is_input:
                values[node.index] = bool(inputs[node.name])
            elif node.is_register:
                values[node.index] = self.state[node.index]
        for node in graph.nodes:
            if node.is_input or node.is_register:
                continue
            args = [values[f] for f in node.fanin]
            values[node.index] = bool(_OPS[node.op](*args))
        # Synchronous register update.
        next_state = {}
        for idx in graph.registers:
            next_state[idx] = values[graph.nodes[idx].fanin[0]]
        self.state = next_state
        return {name: values[node] for node, name in graph.outputs}


class NetlistSimulator:
    """Simulates a mapped :class:`Netlist` cycle by cycle.

    Cell functions are evaluated via :data:`_OPS` keyed by the cell's
    generic ``function``; pin argument order follows the cell's declared
    input-pin order (A, B, C ...), which both the mapper and the library
    builders use consistently.
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self.state: Dict[str, bool] = {
            cell.name: False for cell in netlist.sequential_cells
        }
        self._order = self._levelize()

    def _levelize(self) -> List:
        from collections import deque

        dependents: Dict[str, List] = {}
        indegree: Dict[str, int] = {}
        for cell in self.netlist.combinational_cells:
            count = 0
            for in_pin in cell.input_pins:
                net = in_pin.net
                if net is None or net.driver is None or net.is_clock:
                    continue
                drv = net.driver
                if drv.cell is not None and not drv.cell.is_sequential:
                    count += 1
                    dependents.setdefault(drv.cell.name, []).append(cell)
            indegree[cell.name] = count
        queue = deque(c for c in self.netlist.combinational_cells
                      if indegree[c.name] == 0)
        order = []
        while queue:
            cell = queue.popleft()
            order.append(cell)
            for dep in dependents.get(cell.name, []):
                indegree[dep.name] -= 1
                if indegree[dep.name] == 0:
                    queue.append(dep)
        if len(order) != len(self.netlist.combinational_cells):
            raise ValueError("combinational loop in netlist")
        return order

    def step(self, inputs: Dict[str, bool]) -> Dict[str, bool]:
        """Advance one clock cycle; returns the primary output values."""
        net_value: Dict[str, bool] = {}
        for pin in self.netlist.primary_inputs:
            if pin.net is not None:
                net_value[pin.net.name] = bool(inputs[pin.name])
        for cell in self.netlist.sequential_cells:
            q_net = cell.output_pin.net
            if q_net is not None:
                net_value[q_net.name] = self.state[cell.name]

        for cell in self._order:
            fn = _OPS[cell.ref.function]
            args = [net_value[p.net.name] for p in cell.input_pins]
            out_net = cell.output_pin.net
            if out_net is not None:
                net_value[out_net.name] = bool(fn(*args))

        next_state = {}
        for cell in self.netlist.sequential_cells:
            d_net = cell.pins["D"].net
            next_state[cell.name] = net_value[d_net.name]
        self.state = next_state

        outputs = {}
        for pin in self.netlist.primary_outputs:
            if pin.net is not None:
                outputs[pin.name] = net_value[pin.net.name]
        return outputs


def equivalent_behaviour(graph: LogicGraph, netlists: Sequence[Netlist],
                         input_sequences: Sequence[Dict[str, bool]]
                         ) -> bool:
    """True if every netlist matches the graph over the input sequence.

    ``input_sequences`` is a list of per-cycle input assignments (keyed
    by primary-input name).  Outputs that the netlist lost to dead-logic
    sweeping are skipped (they are unobservable by construction).
    """
    graph_sim = GraphSimulator(graph)
    net_sims = [NetlistSimulator(nl) for nl in netlists]
    for cycle_inputs in input_sequences:
        expected = graph_sim.step(cycle_inputs)
        for sim in net_sims:
            got = sim.step(cycle_inputs)
            for name, value in got.items():
                if name in expected and expected[name] != value:
                    return False
    return True
